//! # timecache
//!
//! Umbrella crate for the TimeCache reproduction (Ojha & Dwarkadas,
//! *TimeCache: Using Time to Eliminate Cache Side Channels when Sharing
//! Software*, ISCA 2021).
//!
//! This crate re-exports the workspace's component crates under stable
//! module names so applications can depend on a single crate:
//!
//! * [`core`] — the TimeCache hardware mechanism (s-bits, timestamps,
//!   transpose array, bit-serial comparator, snapshots).
//! * [`sim`] — the execution-driven multi-level cache-hierarchy simulator.
//! * [`os`] — processes, scheduler, and the full-system runner.
//! * [`workloads`] — synthetic SPEC/PARSEC-like workloads and the RSA
//!   (square-and-multiply) victim.
//! * [`attacks`] — reuse/contention attack programs and analysis.
//! * [`telemetry`] — zero-dependency metrics registry, event tracing, and
//!   per-phase cycle profiling shared by every layer above.
//!
//! See the repository `README.md` for a guided tour and `examples/` for
//! runnable scenarios.

pub use timecache_attacks as attacks;
pub use timecache_core as core;
pub use timecache_os as os;
pub use timecache_sim as sim;
pub use timecache_telemetry as telemetry;
pub use timecache_workloads as workloads;
