//! Structured event tracing: a bounded ring buffer of typed simulator
//! events with monotonic sequence numbers and JSONL export.
//!
//! Events are `Copy` and carry only scalars and `&'static str` names, so
//! recording one is a couple of stores into a preallocated ring — no heap
//! allocation on the hot path. The sequence number survives ring overwrite
//! (dropped events leave a visible gap), which keeps exported traces
//! record/replay-friendly: a consumer can detect truncation and two runs of
//! a deterministic simulation produce identical JSONL byte-for-byte.

use crate::encode;
use std::cell::RefCell;
use std::rc::Rc;

/// The memory operation kind, mirrored from the simulator (the telemetry
/// crate sits below `timecache-sim` in the dependency graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOp {
    /// Instruction fetch.
    IFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessOp {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            AccessOp::IFetch => "ifetch",
            AccessOp::Load => "load",
            AccessOp::Store => "store",
        }
    }
}

/// Which component serviced (or bounded the latency of) an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The core's private L1.
    L1,
    /// The shared last-level cache.
    Llc,
    /// A remote core's private cache.
    RemoteL1,
    /// Main memory.
    Memory,
}

impl ServedBy {
    /// Stable lowercase name used in exports and as a histogram label.
    pub fn as_str(self) -> &'static str {
        match self {
            ServedBy::L1 => "l1",
            ServedBy::Llc => "llc",
            ServedBy::RemoteL1 => "remote_l1",
            ServedBy::Memory => "memory",
        }
    }
}

/// One typed simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// One memory access completed, with its outcome per level.
    /// `FirstAccess` outcomes are visible as the `first_access_*` flags —
    /// the paper's new miss class.
    Access {
        /// Core performing the access.
        core: u32,
        /// SMT thread within the core.
        thread: u32,
        /// Fetch/load/store.
        op: AccessOp,
        /// Component that determined the latency.
        served_by: ServedBy,
        /// Observed latency in cycles.
        latency: u64,
        /// Whether the L1 had a tag hit.
        l1_tag_hit: bool,
        /// First-access miss charged at the L1 (tag hit, s-bit clear).
        first_access_l1: bool,
        /// First-access miss charged at the LLC.
        first_access_llc: bool,
        /// The accessed line address.
        line: u64,
    },
    /// A line was evicted by replacement.
    Eviction {
        /// Cache name ("L1I", "L1D", "LLC").
        cache: &'static str,
        /// The displaced line address.
        line: u64,
        /// Whether the victim held modified data.
        dirty: bool,
    },
    /// A line was invalidated (coherence, back-invalidation, `clflush`).
    Invalidation {
        /// Cache name.
        cache: &'static str,
        /// The invalidated line address.
        line: u64,
        /// Whether the line was dirty.
        dirty: bool,
    },
    /// A dirty line was written back.
    Writeback {
        /// Cache name.
        cache: &'static str,
        /// The written-back line address.
        line: u64,
    },
    /// A process's caching context was saved at a context switch.
    SwitchSave {
        /// Core of the hardware context.
        core: u32,
        /// SMT thread of the hardware context.
        thread: u32,
        /// Process whose context was saved.
        pid: u32,
    },
    /// A process's caching context was restored at a context switch,
    /// including the comparator sweep and the s-bit snapshot DMA (priced at
    /// the paper's constant 1.08 µs charge under the default cost model).
    SwitchRestore {
        /// Core of the hardware context.
        core: u32,
        /// SMT thread of the hardware context.
        thread: u32,
        /// Incoming process.
        pid: u32,
        /// Bit-serial comparator cycles (max across levels).
        comparator_cycles: u64,
        /// 64-byte snapshot transfers summed across levels.
        transfer_lines: u64,
        /// Total cycles charged for the switch (base + DMA + comparator).
        charged_cycles: u64,
        /// s-bits reset by the comparator sweep.
        sbits_reset: u64,
    },
    /// Timestamp rollover was detected during a restore: every s-bit of
    /// the affected context is conservatively reset.
    RolloverReset {
        /// Core of the hardware context.
        core: u32,
        /// SMT thread of the hardware context.
        thread: u32,
        /// Incoming process.
        pid: u32,
    },
    /// An attacker probe measurement (reload/time step of an attack
    /// program), feeding threshold calibration.
    Probe {
        /// Attack name ("flush_reload", "evict_time", ...).
        attack: &'static str,
        /// Measured latency in cycles.
        latency: u64,
        /// Whether the attacker classified it as a hit.
        hit: bool,
    },
    /// The fault injector struck. `detected` records whether the defense
    /// explicitly caught the fault (checksum / redundancy / software
    /// rollover cross-check) rather than being conservative by construction.
    FaultInjected {
        /// Fault kind name ("drop_snapshot", "flip_comparator", ...).
        kind: &'static str,
        /// Trigger point name ("save", "restore", "compare", "rollover").
        trigger: &'static str,
        /// Whether the defense explicitly detected the fault.
        detected: bool,
    },
    /// The security-invariant checker caught a process observing a
    /// hit-latency access to a line it has not itself paid a first-access
    /// miss for since its `Ts` — a defense failure.
    InvariantViolation {
        /// The observing process.
        pid: u32,
        /// The line address (line-granular, not byte).
        line: u64,
        /// The observed (too fast) latency in cycles.
        latency: u64,
        /// The component that serviced the access.
        served_by: ServedBy,
    },
}

impl TraceEvent {
    /// Stable event-type name used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Access { .. } => "access",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::Invalidation { .. } => "invalidation",
            TraceEvent::Writeback { .. } => "writeback",
            TraceEvent::SwitchSave { .. } => "switch_save",
            TraceEvent::SwitchRestore { .. } => "switch_restore",
            TraceEvent::RolloverReset { .. } => "rollover_reset",
            TraceEvent::Probe { .. } => "probe",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::InvariantViolation { .. } => "invariant_violation",
        }
    }
}

/// A recorded event: global sequence number, simulated cycle, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic sequence number (gaps reveal ring overwrites).
    pub seq: u64,
    /// Simulated cycle at which the event was recorded.
    pub cycle: u64,
    /// The event payload.
    pub event: TraceEvent,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<EventRecord>,
    capacity: usize,
    /// Index of the oldest record when the ring is full.
    head: usize,
    next_seq: u64,
    dropped: u64,
}

/// The bounded event tracer. Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: Rc<RefCell<Ring>>,
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` events (oldest are
    /// overwritten once full). The ring is preallocated up front.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be nonzero");
        Tracer {
            ring: Rc::new(RefCell::new(Ring {
                buf: Vec::with_capacity(capacity),
                capacity,
                head: 0,
                next_seq: 0,
                dropped: 0,
            })),
        }
    }

    /// Records one event at `cycle`. O(1), allocation-free.
    #[inline]
    pub fn record(&self, cycle: u64, event: TraceEvent) {
        let mut ring = self.ring.borrow_mut();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let rec = EventRecord { seq, cycle, event };
        if ring.buf.len() < ring.capacity {
            ring.buf.push(rec);
        } else {
            let head = ring.head;
            ring.buf[head] = rec;
            ring.head = (head + 1) % ring.capacity;
            ring.dropped += 1;
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.borrow().buf.len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.ring.borrow().next_seq
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.borrow().dropped
    }

    /// The retained events in sequence order (oldest first).
    pub fn records(&self) -> Vec<EventRecord> {
        let ring = self.ring.borrow();
        let mut out = Vec::with_capacity(ring.buf.len());
        if ring.buf.len() < ring.capacity {
            out.extend_from_slice(&ring.buf);
        } else {
            out.extend_from_slice(&ring.buf[ring.head..]);
            out.extend_from_slice(&ring.buf[..ring.head]);
        }
        out
    }

    /// Discards all retained events (sequence numbers keep counting).
    pub fn clear(&self) {
        let mut ring = self.ring.borrow_mut();
        ring.buf.clear();
        ring.head = 0;
    }

    /// Exports the retained events as JSON Lines: one self-describing JSON
    /// object per line, in sequence order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.records() {
            write_record(&mut out, &rec);
            out.push('\n');
        }
        out
    }
}

fn write_record(out: &mut String, rec: &EventRecord) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"seq\":{},\"cycle\":{},\"type\":\"{}\"",
        rec.seq,
        rec.cycle,
        rec.event.kind()
    );
    match rec.event {
        TraceEvent::Access {
            core,
            thread,
            op,
            served_by,
            latency,
            l1_tag_hit,
            first_access_l1,
            first_access_llc,
            line,
        } => {
            let _ = write!(
                out,
                ",\"core\":{core},\"thread\":{thread},\"op\":\"{}\",\"served_by\":\"{}\",\
                 \"latency\":{latency},\"l1_tag_hit\":{l1_tag_hit},\
                 \"first_access_l1\":{first_access_l1},\"first_access_llc\":{first_access_llc},\
                 \"line\":{line}",
                op.as_str(),
                served_by.as_str()
            );
        }
        TraceEvent::Eviction { cache, line, dirty } => {
            let _ = write!(out, ",\"cache\":");
            encode::json_string(out, cache);
            let _ = write!(out, ",\"line\":{line},\"dirty\":{dirty}");
        }
        TraceEvent::Invalidation { cache, line, dirty } => {
            let _ = write!(out, ",\"cache\":");
            encode::json_string(out, cache);
            let _ = write!(out, ",\"line\":{line},\"dirty\":{dirty}");
        }
        TraceEvent::Writeback { cache, line } => {
            let _ = write!(out, ",\"cache\":");
            encode::json_string(out, cache);
            let _ = write!(out, ",\"line\":{line}");
        }
        TraceEvent::SwitchSave { core, thread, pid } => {
            let _ = write!(out, ",\"core\":{core},\"thread\":{thread},\"pid\":{pid}");
        }
        TraceEvent::SwitchRestore {
            core,
            thread,
            pid,
            comparator_cycles,
            transfer_lines,
            charged_cycles,
            sbits_reset,
        } => {
            let _ = write!(
                out,
                ",\"core\":{core},\"thread\":{thread},\"pid\":{pid},\
                 \"comparator_cycles\":{comparator_cycles},\"transfer_lines\":{transfer_lines},\
                 \"charged_cycles\":{charged_cycles},\"sbits_reset\":{sbits_reset}"
            );
        }
        TraceEvent::RolloverReset { core, thread, pid } => {
            let _ = write!(out, ",\"core\":{core},\"thread\":{thread},\"pid\":{pid}");
        }
        TraceEvent::Probe {
            attack,
            latency,
            hit,
        } => {
            let _ = write!(out, ",\"attack\":");
            encode::json_string(out, attack);
            let _ = write!(out, ",\"latency\":{latency},\"hit\":{hit}");
        }
        TraceEvent::FaultInjected {
            kind,
            trigger,
            detected,
        } => {
            let _ = write!(out, ",\"kind\":");
            encode::json_string(out, kind);
            let _ = write!(out, ",\"trigger\":");
            encode::json_string(out, trigger);
            let _ = write!(out, ",\"detected\":{detected}");
        }
        TraceEvent::InvariantViolation {
            pid,
            line,
            latency,
            served_by,
        } => {
            let _ = write!(
                out,
                ",\"pid\":{pid},\"line\":{line},\"latency\":{latency},\"served_by\":\"{}\"",
                served_by.as_str()
            );
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(latency: u64) -> TraceEvent {
        TraceEvent::Probe {
            attack: "test",
            latency,
            hit: latency < 10,
        }
    }

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let t = Tracer::with_capacity(8);
        for i in 0..5 {
            t.record(i * 10, probe(i));
        }
        let recs = t.records();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[4].seq, 4);
        assert_eq!(recs[4].cycle, 40);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::with_capacity(3);
        for i in 0..7u64 {
            t.record(i, probe(i));
        }
        let recs = t.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![4, 5, 6],
            "oldest events overwritten, order preserved"
        );
        assert_eq!(t.dropped(), 4);
        assert_eq!(t.recorded(), 7);
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let t = Tracer::with_capacity(4);
        t.record(5, probe(3));
        t.record(
            9,
            TraceEvent::Access {
                core: 0,
                thread: 1,
                op: AccessOp::Load,
                served_by: ServedBy::Memory,
                latency: 200,
                l1_tag_hit: true,
                first_access_l1: true,
                first_access_llc: false,
                line: 0x40,
            },
        );
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"probe\""));
        assert!(lines[1].contains("\"type\":\"access\""));
        assert!(lines[1].contains("\"first_access_l1\":true"));
        assert!(lines[1].contains("\"served_by\":\"memory\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn robustness_events_export_as_jsonl() {
        let t = Tracer::with_capacity(4);
        t.record(
            10,
            TraceEvent::FaultInjected {
                kind: "corrupt_snapshot",
                trigger: "restore",
                detected: true,
            },
        );
        t.record(
            11,
            TraceEvent::InvariantViolation {
                pid: 3,
                line: 0x40,
                latency: 2,
                served_by: ServedBy::L1,
            },
        );
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"type\":\"fault_injected\""));
        assert!(lines[0].contains("\"kind\":\"corrupt_snapshot\""));
        assert!(lines[0].contains("\"trigger\":\"restore\""));
        assert!(lines[0].contains("\"detected\":true"));
        assert!(lines[1].contains("\"type\":\"invariant_violation\""));
        assert!(lines[1].contains("\"pid\":3"));
        assert!(lines[1].contains("\"served_by\":\"l1\""));
    }

    #[test]
    fn clear_keeps_sequence_counting() {
        let t = Tracer::with_capacity(4);
        t.record(0, probe(1));
        t.clear();
        assert!(t.is_empty());
        t.record(1, probe(2));
        assert_eq!(t.records()[0].seq, 1, "sequence survives clear");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        Tracer::with_capacity(0);
    }
}
