//! # timecache-telemetry
//!
//! Zero-dependency observability spine for the TimeCache reproduction:
//!
//! * a [`Registry`] of labeled counters, gauges, and log-bucketed latency
//!   [`Histogram`]s with Prometheus-text and JSON exposition;
//! * a bounded, typed event [`Tracer`] (ring buffer + JSONL export) whose
//!   monotonic sequence numbers make traces record/replay-friendly;
//! * a [`Profiler`] attributing simulated cycles to phases (compute,
//!   memory stall, switch cost) per process and per hardware context;
//! * the [`Telemetry`] handle that bundles all three and is cheap to pass
//!   everywhere: when disabled it is a `None` and every instrumentation
//!   site short-circuits without touching the heap.
//!
//! The simulator crates (`timecache-sim`, `timecache-os`,
//! `timecache-attacks`, `timecache-bench`) all take a [`Telemetry`] and
//! report through it; the bench harness snapshots the registry and trace
//! into `results/` next to each experiment's CSV.
//!
//! # Quick start
//!
//! ```
//! use timecache_telemetry::{Telemetry, TraceEvent, Phase, Scope};
//!
//! let tel = Telemetry::enabled();
//! if let Some(reg) = tel.registry() {
//!     reg.counter("events_total", "Total events.", &[]).inc();
//! }
//! tel.set_now(100);
//! tel.emit(TraceEvent::Probe { attack: "demo", latency: 2, hit: true });
//! if let Some(p) = tel.profiler() {
//!     p.record(Scope::Process(0), Phase::Compute, 42);
//! }
//!
//! let prom = tel.registry().unwrap().render_prometheus();
//! assert!(prom.contains("events_total 1"));
//! assert_eq!(tel.tracer().unwrap().len(), 1);
//!
//! // Disabled telemetry: every call is a cheap no-op.
//! let off = Telemetry::disabled();
//! off.emit(TraceEvent::Probe { attack: "demo", latency: 2, hit: true });
//! assert!(off.registry().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod profile;
pub mod registry;
pub mod trace;

pub use profile::{Phase, PhaseCycles, ProfileSnapshot, Profiler, Scope, Span};
pub use registry::{Counter, Gauge, Histogram, Registry, RegistrySnapshot, HISTOGRAM_BUCKETS};
pub use trace::{AccessOp, EventRecord, ServedBy, TraceEvent, Tracer};

use std::cell::Cell;
use std::rc::Rc;

/// Default event-ring capacity for [`Telemetry::enabled`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct TelemetryInner {
    registry: Registry,
    tracer: Tracer,
    profiler: Profiler,
    /// The most recently announced simulated cycle, used to stamp events
    /// emitted from call sites that have no clock of their own.
    now: Cell<u64>,
    /// Whether [`Telemetry::emit`]/[`Telemetry::emit_at`] record anything.
    /// Defaults to true; campaigns that only consume counters (sweeps, the
    /// oracle, microbenchmarks) turn it off so instrumented hot paths skip
    /// event construction entirely. Counters and histograms are unaffected.
    trace_events: Cell<bool>,
}

/// The top-level telemetry handle.
///
/// Cloning is cheap and shares the underlying sinks. The default handle is
/// *disabled*: instrumentation sites check [`Telemetry::is_enabled`] (or
/// get `None` from the accessors) and skip all work, keeping the simulator
/// hot path allocation-free and branch-cheap.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<TelemetryInner>>,
}

impl Telemetry {
    /// A disabled handle: all operations are no-ops.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// An enabled handle with the default trace capacity.
    pub fn enabled() -> Self {
        Telemetry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled handle retaining at most `capacity` trace events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Rc::new(TelemetryInner {
                registry: Registry::new(),
                tracer: Tracer::with_capacity(capacity),
                profiler: Profiler::new(),
                now: Cell::new(0),
                trace_events: Cell::new(true),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, if enabled.
    #[inline]
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// The event tracer, if enabled.
    #[inline]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.as_deref().map(|i| &i.tracer)
    }

    /// The phase profiler, if enabled.
    #[inline]
    pub fn profiler(&self) -> Option<&Profiler> {
        self.inner.as_deref().map(|i| &i.profiler)
    }

    /// Announces the current simulated cycle. Instrumented components call
    /// this as their clock advances so events emitted from clock-less call
    /// sites (e.g. `clflush`) still carry a meaningful time.
    #[inline]
    pub fn set_now(&self, cycle: u64) {
        if let Some(inner) = &self.inner {
            inner.now.set(cycle);
        }
    }

    /// The most recently announced simulated cycle (0 when disabled).
    #[inline]
    pub fn now(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.now.get())
    }

    /// Whether trace-event emission is on (false when disabled). Hot paths
    /// with many emit sites read this once and hoist the branch.
    #[inline]
    pub fn trace_events(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.trace_events.get())
    }

    /// Turns trace-event emission on or off. Off, [`Telemetry::emit`] and
    /// [`Telemetry::emit_at`] become no-ops while counters, histograms,
    /// gauges, and the profiler keep recording exactly — the switch for
    /// counter-only campaigns that would otherwise churn the event ring.
    /// No-op when disabled; emission defaults to on.
    pub fn set_trace_events(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.trace_events.set(on);
        }
    }

    /// Records `event` at the last announced cycle. No-op when disabled or
    /// when trace events are off ([`Telemetry::set_trace_events`]).
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            if inner.trace_events.get() {
                inner.tracer.record(inner.now.get(), event);
            }
        }
    }

    /// Records `event` at an explicit cycle. No-op when disabled or when
    /// trace events are off ([`Telemetry::set_trace_events`]).
    #[inline]
    pub fn emit_at(&self, cycle: u64, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            if inner.trace_events.get() {
                inner.tracer.record(cycle, event);
            }
        }
    }

    /// Captures this handle's full state — registry, retained events, and
    /// profile tables — as owned plain data. The result is `Send` even
    /// though `Telemetry` itself is not (its sinks are `Rc`-shared), which
    /// is what lets a worker thread run with its own enabled handle and
    /// ship the recordings back for [`Telemetry::absorb`] at join time.
    /// A disabled handle snapshots to an empty (no-op) value.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            None => TelemetrySnapshot::default(),
            Some(inner) => TelemetrySnapshot {
                registry: Some(inner.registry.snapshot()),
                events: inner.tracer.records(),
                profile: Some(inner.profiler.snapshot()),
            },
        }
    }

    /// Folds a snapshot into this handle: counters/histograms add, gauges
    /// adopt the snapshot value, events are re-recorded at their original
    /// cycles (fresh sequence numbers), and profile tables add element-wise
    /// (see [`Registry::merge`] and [`Profiler::merge`]). No-op when this
    /// handle is disabled.
    pub fn absorb(&self, snap: &TelemetrySnapshot) {
        let Some(inner) = &self.inner else { return };
        if let Some(reg) = &snap.registry {
            inner.registry.merge(reg);
        }
        for rec in &snap.events {
            inner.tracer.record(rec.cycle, rec.event);
        }
        if let Some(profile) = &snap.profile {
            inner.profiler.merge(profile);
        }
    }
}

/// A thread-transferable (`Send`) copy of a [`Telemetry`] handle's state at
/// one instant. Produced by [`Telemetry::snapshot`], consumed by
/// [`Telemetry::absorb`]. The default value is empty and absorbs as a
/// no-op.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    registry: Option<RegistrySnapshot>,
    events: Vec<EventRecord>,
    profile: Option<ProfileSnapshot>,
}

impl TelemetrySnapshot {
    /// Whether the snapshot carries no recordings at all (taken from a
    /// disabled handle, or an enabled handle that never recorded).
    pub fn is_empty(&self) -> bool {
        self.registry
            .as_ref()
            .is_none_or(RegistrySnapshot::is_empty)
            && self.events.is_empty()
    }

    /// Number of trace events carried.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(t.registry().is_none());
        assert!(t.tracer().is_none());
        assert!(t.profiler().is_none());
        t.set_now(5);
        assert_eq!(t.now(), 0);
        t.emit(TraceEvent::Probe {
            attack: "x",
            latency: 1,
            hit: true,
        });
    }

    #[test]
    fn clones_share_sinks() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.registry().unwrap().counter("c_total", "c", &[]).inc();
        assert_eq!(u.registry().unwrap().counter_value("c_total", &[]), Some(1));
        t.set_now(7);
        u.emit(TraceEvent::Probe {
            attack: "x",
            latency: 1,
            hit: false,
        });
        assert_eq!(t.tracer().unwrap().records()[0].cycle, 7);
    }

    #[test]
    fn snapshot_round_trips_across_threads() {
        fn assert_send<T: Send>() {}
        assert_send::<TelemetrySnapshot>();

        // Worker thread records into its own handle and ships a snapshot.
        let snap = std::thread::spawn(|| {
            let tel = Telemetry::enabled();
            tel.registry()
                .unwrap()
                .counter("jobs_total", "jobs", &[])
                .add(2);
            tel.emit_at(
                5,
                TraceEvent::Probe {
                    attack: "t",
                    latency: 3,
                    hit: true,
                },
            );
            tel.profiler()
                .unwrap()
                .record(Scope::Process(0), Phase::Compute, 9);
            tel.snapshot()
        })
        .join()
        .unwrap();
        assert!(!snap.is_empty());
        assert_eq!(snap.num_events(), 1);

        let main = Telemetry::enabled();
        main.registry()
            .unwrap()
            .counter("jobs_total", "jobs", &[])
            .add(1);
        main.absorb(&snap);
        assert_eq!(
            main.registry().unwrap().counter_value("jobs_total", &[]),
            Some(3)
        );
        assert_eq!(main.tracer().unwrap().records()[0].cycle, 5);
        assert_eq!(
            main.profiler()
                .unwrap()
                .process_cycles(0)
                .get(Phase::Compute),
            9
        );
    }

    #[test]
    fn disabled_handle_snapshot_and_absorb_are_noops() {
        let off = Telemetry::disabled();
        assert!(off.snapshot().is_empty());
        let on = Telemetry::enabled();
        on.registry().unwrap().counter("c_total", "c", &[]).inc();
        off.absorb(&on.snapshot()); // must not panic
        assert!(!off.is_enabled());
    }

    #[test]
    fn trace_events_toggle_gates_emission_only() {
        let t = Telemetry::enabled();
        assert!(t.trace_events());
        t.set_trace_events(false);
        assert!(!t.trace_events());
        t.set_now(3);
        t.emit(TraceEvent::Probe {
            attack: "x",
            latency: 1,
            hit: true,
        });
        t.emit_at(
            9,
            TraceEvent::Probe {
                attack: "x",
                latency: 1,
                hit: true,
            },
        );
        // Events suppressed; counters unaffected.
        assert_eq!(t.tracer().unwrap().len(), 0);
        t.registry().unwrap().counter("c_total", "c", &[]).inc();
        assert_eq!(t.registry().unwrap().counter_value("c_total", &[]), Some(1));
        t.set_trace_events(true);
        t.emit(TraceEvent::Probe {
            attack: "x",
            latency: 1,
            hit: true,
        });
        assert_eq!(t.tracer().unwrap().len(), 1);

        // A disabled handle reports off and tolerates the setter.
        let off = Telemetry::disabled();
        assert!(!off.trace_events());
        off.set_trace_events(true);
        assert!(!off.trace_events());
    }

    #[test]
    fn emit_at_overrides_clock() {
        let t = Telemetry::with_trace_capacity(4);
        t.set_now(10);
        t.emit_at(
            99,
            TraceEvent::Probe {
                attack: "x",
                latency: 1,
                hit: true,
            },
        );
        assert_eq!(t.tracer().unwrap().records()[0].cycle, 99);
        assert_eq!(t.now(), 10);
    }
}
