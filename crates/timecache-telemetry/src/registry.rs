//! The metrics registry: labeled counters, gauges, and log-bucketed
//! latency histograms, with Prometheus-text and JSON exposition.
//!
//! The design follows the label-based registry pattern of production Rust
//! metrics crates (e.g. `prometric`), specialized for a single-threaded
//! simulator: handles are `Rc`-shared cells, so the hot path is one
//! unsynchronized integer add — no locks, no hashing, and **no heap
//! allocation** after the handle is created.
//!
//! ```
//! use timecache_telemetry::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache_hits_total", "Demand hits.", &[("cache", "l1d")]);
//! hits.inc();
//! hits.add(2);
//! assert_eq!(hits.get(), 3);
//! assert!(reg.render_prometheus().contains("cache_hits_total{cache=\"l1d\"} 3"));
//! ```

use crate::encode;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Number of latency buckets: powers of two from `2^0` through `2^31`,
/// plus the implicit `+Inf` overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.set(self.0.get().wrapping_add(v));
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge: a value that can go up and down. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Adds `v` (may be negative).
    #[inline]
    pub fn add(&self, v: f64) {
        self.0.set(self.0.get() + v);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// `buckets[i]` counts observations with `value <= 2^i`; the final
    /// bucket is the `+Inf` overflow.
    buckets: [Cell<u64>; HISTOGRAM_BUCKETS + 1],
    sum: Cell<u64>,
    count: Cell<u64>,
}

// Derived `Default` is unavailable for arrays longer than 32 elements.
impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| Cell::new(0)),
            sum: Cell::new(0),
            count: Cell::new(0),
        }
    }
}

/// A log2-bucketed histogram of nonnegative integer observations (cycle
/// latencies). Bucket upper bounds are `1, 2, 4, …, 2^31, +Inf` — covering
/// every latency the simulator can produce while keeping observation O(1)
/// and allocation-free.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = Self::bucket_index(value);
        let b = &self.0.buckets[idx];
        b.set(b.get() + 1);
        self.0.sum.set(self.0.sum.get().wrapping_add(value));
        self.0.count.set(self.0.count.get() + 1);
    }

    /// The bucket an observation falls into: the smallest `i` with
    /// `value <= 2^i`, or the overflow bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            let i = 64 - (value - 1).leading_zeros() as usize;
            i.min(HISTOGRAM_BUCKETS)
        }
    }

    /// The inclusive upper bound of bucket `i` (`f64::INFINITY` for the
    /// overflow bucket).
    pub fn bucket_bound(i: usize) -> f64 {
        if i >= HISTOGRAM_BUCKETS {
            f64::INFINITY
        } else {
            (1u64 << i) as f64
        }
    }

    /// Per-bucket (non-cumulative) observation counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(Cell::get).collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.get()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.get()
    }

    /// Arithmetic mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.sum() as f64 / self.count() as f64
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// (sorted label pairs, handle) per series.
    series: Vec<(Vec<(String, String)>, Series)>,
}

/// The metric registry. Cloning shares the underlying store, so a single
/// registry can be handed to the simulator, the OS model, and the attack
/// programs, and scraped once at the end (or at any point mid-run).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Rc<RefCell<Vec<Family>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name` with the given label pairs.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists with a different metric type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Gets or creates the gauge `name` with the given label pairs.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists with a different metric type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Gets or creates the histogram `name` with the given label pairs.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists with a different metric type.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, Kind::Histogram, labels) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Looks up an existing counter's current value (scrape helper for
    /// tests and reports). Returns `None` if the series does not exist.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = sorted_labels(labels);
        let families = self.families.borrow();
        let fam = families.iter().find(|f| f.name == name)?;
        fam.series.iter().find_map(|(l, s)| match s {
            Series::Counter(c) if *l == key => Some(c.get()),
            _ => None,
        })
    }

    fn series(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Series {
        assert!(
            is_valid_metric_name(name),
            "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        let key = sorted_labels(labels);
        let mut families = self.families.borrow_mut();
        let fam = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} registered as {} but requested as {}",
                    f.kind.as_str(),
                    kind.as_str()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, s)) = fam.series.iter().find(|(l, _)| *l == key) {
            return s.clone();
        }
        let s = match kind {
            Kind::Counter => Series::Counter(Counter::default()),
            Kind::Gauge => Series::Gauge(Gauge::default()),
            Kind::Histogram => Series::Histogram(Histogram::default()),
        };
        fam.series.push((key, s.clone()));
        s
    }

    /// Renders the whole registry in the Prometheus text exposition format
    /// (v0.0.4): `# HELP` / `# TYPE` headers, one sample per line,
    /// histograms expanded to cumulative `_bucket`/`_sum`/`_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in self.families.borrow().iter() {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.as_str()));
            for (labels, series) in &fam.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&fam.name);
                        out.push_str(&prom_labels(labels, None));
                        out.push_str(&format!(" {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&fam.name);
                        out.push_str(&prom_labels(labels, None));
                        out.push_str(&format!(" {}\n", encode::prom_f64(g.get())));
                    }
                    Series::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cumulative += c;
                            let le = encode::prom_f64(Histogram::bucket_bound(i));
                            out.push_str(&format!("{}_bucket", fam.name));
                            out.push_str(&prom_labels(labels, Some(&le)));
                            out.push_str(&format!(" {cumulative}\n"));
                        }
                        out.push_str(&format!("{}_sum", fam.name));
                        out.push_str(&prom_labels(labels, None));
                        out.push_str(&format!(" {}\n", h.sum()));
                        out.push_str(&format!("{}_count", fam.name));
                        out.push_str(&prom_labels(labels, None));
                        out.push_str(&format!(" {}\n", h.count()));
                    }
                }
            }
        }
        out
    }

    /// Renders the whole registry as a single JSON document:
    /// `{"metrics": [{"name", "type", "help", "series": [...]}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (fi, fam) in self.families.borrow().iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            encode::json_string(&mut out, &fam.name);
            out.push_str(",\"type\":");
            encode::json_string(&mut out, fam.kind.as_str());
            out.push_str(",\"help\":");
            encode::json_string(&mut out, &fam.help);
            out.push_str(",\"series\":[");
            for (si, (labels, series)) in fam.series.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    encode::json_string(&mut out, k);
                    out.push(':');
                    encode::json_string(&mut out, v);
                }
                out.push('}');
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!(",\"value\":{}", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(",\"value\":");
                        encode::json_f64(&mut out, g.get());
                    }
                    Series::Histogram(h) => {
                        out.push_str(",\"buckets\":[");
                        for (i, c) in h.bucket_counts().iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!("{c}"));
                        }
                        out.push_str(&format!("],\"sum\":{},\"count\":{}", h.sum(), h.count()));
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// A plain-data copy of a registry's full contents at one instant.
///
/// Unlike [`Registry`] (whose handles are `Rc`-shared and therefore pinned
/// to one thread), a snapshot owns all of its data and is `Send`: a worker
/// thread can record into its own registry, snapshot it, and hand the
/// snapshot across a thread boundary for [`Registry::merge`] on the main
/// thread. This is how the bench harness's parallel sweep engine folds
/// per-worker metrics back into the run-level registry.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    families: Vec<FamilySnap>,
}

impl RegistrySnapshot {
    /// Whether the snapshot contains no series at all.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Total number of series across all metric families.
    pub fn num_series(&self) -> usize {
        self.families.iter().map(|f| f.series.len()).sum()
    }
}

#[derive(Debug, Clone)]
struct FamilySnap {
    name: String,
    help: String,
    /// The family kind travels implicitly in [`ValueSnap`]; merge re-derives
    /// it through the typed accessors, which enforce kind consistency.
    series: Vec<(Vec<(String, String)>, ValueSnap)>,
}

#[derive(Debug, Clone)]
enum ValueSnap {
    Counter(u64),
    Gauge(f64),
    Histogram {
        buckets: Vec<u64>,
        sum: u64,
        count: u64,
    },
}

impl Registry {
    /// Captures every family and series as owned plain data (see
    /// [`RegistrySnapshot`]).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self
            .families
            .borrow()
            .iter()
            .map(|fam| FamilySnap {
                name: fam.name.clone(),
                help: fam.help.clone(),
                series: fam
                    .series
                    .iter()
                    .map(|(labels, s)| {
                        let value = match s {
                            Series::Counter(c) => ValueSnap::Counter(c.get()),
                            Series::Gauge(g) => ValueSnap::Gauge(g.get()),
                            Series::Histogram(h) => ValueSnap::Histogram {
                                buckets: h.bucket_counts(),
                                sum: h.sum(),
                                count: h.count(),
                            },
                        };
                        (labels.clone(), value)
                    })
                    .collect(),
            })
            .collect();
        RegistrySnapshot { families }
    }

    /// Folds a snapshot into this registry, creating any missing families
    /// and series. Counters and histograms are *additive* (values, bucket
    /// counts, sums, and observation counts are summed — merging N worker
    /// snapshots yields the same totals as one serial run recording
    /// everything); gauges adopt the snapshot's value (last merge wins).
    ///
    /// # Panics
    ///
    /// Panics if a metric name exists in both with different types.
    pub fn merge(&self, snap: &RegistrySnapshot) {
        for fam in &snap.families {
            for (labels, value) in &fam.series {
                let labels_ref: Vec<(&str, &str)> = labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                match value {
                    ValueSnap::Counter(v) => {
                        self.counter(&fam.name, &fam.help, &labels_ref).add(*v);
                    }
                    ValueSnap::Gauge(v) => {
                        self.gauge(&fam.name, &fam.help, &labels_ref).set(*v);
                    }
                    ValueSnap::Histogram {
                        buckets,
                        sum,
                        count,
                    } => {
                        let h = self.histogram(&fam.name, &fam.help, &labels_ref);
                        for (cell, add) in h.0.buckets.iter().zip(buckets) {
                            cell.set(cell.get() + add);
                        }
                        h.0.sum.set(h.0.sum.get().wrapping_add(*sum));
                        h.0.count.set(h.0.count.get() + count);
                    }
                }
            }
        }
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", encode::prom_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_series_are_shared_by_identity() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("k", "v")]);
        let b = r.counter("x_total", "x", &[("k", "v")]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        // Label order must not matter.
        let c = r.counter("y_total", "y", &[("a", "1"), ("b", "2")]);
        let d = r.counter("y_total", "y", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("k", "a")]);
        let b = r.counter("x_total", "x", &[("k", "b")]);
        a.inc();
        assert_eq!(b.get(), 0);
        assert_eq!(r.counter_value("x_total", &[("k", "a")]), Some(1));
        assert_eq!(r.counter_value("x_total", &[("k", "c")]), None);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_conflicts_are_rejected() {
        let r = Registry::new();
        r.counter("m", "m", &[]);
        r.gauge("m", "m", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("0bad name", "", &[]);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 31), 31);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
        assert_eq!(Histogram::bucket_bound(0), 1.0);
        assert_eq!(Histogram::bucket_bound(5), 32.0);
        assert!(Histogram::bucket_bound(HISTOGRAM_BUCKETS).is_infinite());
    }

    #[test]
    fn histogram_tracks_sum_count_mean() {
        let h = Histogram::default();
        for v in [2u64, 30, 200] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 232);
        assert!((h.mean() - 232.0 / 3.0).abs() < 1e-12);
        let counts = h.bucket_counts();
        assert_eq!(counts[1], 1); // 2 -> le 2
        assert_eq!(counts[5], 1); // 30 -> le 32
        assert_eq!(counts[8], 1); // 200 -> le 256
    }

    #[test]
    fn prometheus_text_shape() {
        let r = Registry::new();
        r.counter("hits_total", "Total hits.", &[("cache", "l1d")])
            .add(7);
        r.gauge("occupancy", "Lines resident.", &[]).set(0.5);
        let h = r.histogram("lat_cycles", "Latency.", &[("level", "llc")]);
        h.observe(30);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total{cache=\"l1d\"} 7"));
        assert!(text.contains("occupancy 0.5"));
        assert!(text.contains("lat_cycles_bucket{level=\"llc\",le=\"32\"} 1"));
        assert!(text.contains("lat_cycles_bucket{level=\"llc\",le=\"+Inf\"} 1"));
        assert!(text.contains("lat_cycles_sum{level=\"llc\"} 30"));
        assert!(text.contains("lat_cycles_count{level=\"llc\"} 1"));
    }

    #[test]
    fn snapshot_is_send_and_owns_its_data() {
        fn assert_send<T: Send>() {}
        assert_send::<RegistrySnapshot>();
        let r = Registry::new();
        r.counter("a_total", "a", &[("k", "v")]).add(3);
        let snap = r.snapshot();
        assert_eq!(snap.num_series(), 1);
        // Mutating the registry after the snapshot must not change it.
        r.counter("a_total", "a", &[("k", "v")]).add(10);
        let fresh = Registry::new();
        fresh.merge(&snap);
        assert_eq!(fresh.counter_value("a_total", &[("k", "v")]), Some(3));
    }

    #[test]
    fn merge_adds_counters_and_histograms_sets_gauges() {
        let a = Registry::new();
        a.counter("c_total", "c", &[]).add(2);
        a.gauge("g", "g", &[]).set(1.5);
        a.histogram("h", "h", &[]).observe(3);
        a.histogram("h", "h", &[]).observe(100);

        let b = Registry::new();
        b.counter("c_total", "c", &[]).add(5);
        b.gauge("g", "g", &[]).set(9.0);
        b.histogram("h", "h", &[]).observe(3);

        a.merge(&b.snapshot());
        assert_eq!(a.counter_value("c_total", &[]), Some(7));
        let h = a.histogram("h", "h", &[]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.bucket_counts()[Histogram::bucket_index(3)], 2);
        assert_eq!(a.gauge("g", "g", &[]).get(), 9.0);
    }

    #[test]
    fn merging_n_snapshots_equals_serial_totals() {
        let serial = Registry::new();
        let merged = Registry::new();
        for worker in 0..4u64 {
            let w = Registry::new();
            for v in 0..10u64 {
                serial.counter("x_total", "x", &[]).add(worker + v);
                w.counter("x_total", "x", &[]).add(worker + v);
                serial.histogram("lat", "l", &[]).observe(v);
                w.histogram("lat", "l", &[]).observe(v);
            }
            merged.merge(&w.snapshot());
        }
        assert_eq!(
            merged.counter_value("x_total", &[]),
            serial.counter_value("x_total", &[])
        );
        assert_eq!(
            merged.histogram("lat", "l", &[]).bucket_counts(),
            serial.histogram("lat", "l", &[]).bucket_counts()
        );
        assert_eq!(serial.render_prometheus(), merged.render_prometheus());
    }

    #[test]
    fn json_is_structurally_sound() {
        let r = Registry::new();
        r.counter("a_total", "a \"quoted\" help", &[("k", "v")])
            .inc();
        r.histogram("h", "h", &[]).observe(5);
        let json = r.render_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"a \\\"quoted\\\" help\""));
        assert!(json.contains("\"value\":1"));
        assert!(json.contains("\"count\":1"));
        // Balanced braces/brackets (cheap structural check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }
}
