//! The metrics registry: labeled counters, gauges, and log-bucketed
//! latency histograms, with Prometheus-text and JSON exposition.
//!
//! The design follows the label-based registry pattern of production Rust
//! metrics crates (e.g. `prometric`), specialized for a single-threaded
//! simulator: handles are `Rc`-shared cells, so the hot path is one
//! unsynchronized integer add — no locks, no hashing, and **no heap
//! allocation** after the handle is created.
//!
//! ```
//! use timecache_telemetry::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache_hits_total", "Demand hits.", &[("cache", "l1d")]);
//! hits.inc();
//! hits.add(2);
//! assert_eq!(hits.get(), 3);
//! assert!(reg.render_prometheus().contains("cache_hits_total{cache=\"l1d\"} 3"));
//! ```

use crate::encode;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Number of latency buckets: powers of two from `2^0` through `2^31`,
/// plus the implicit `+Inf` overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.set(self.0.get().wrapping_add(v));
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge: a value that can go up and down. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Adds `v` (may be negative).
    #[inline]
    pub fn add(&self, v: f64) {
        self.0.set(self.0.get() + v);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// `buckets[i]` counts observations with `value <= 2^i`; the final
    /// bucket is the `+Inf` overflow.
    buckets: [Cell<u64>; HISTOGRAM_BUCKETS + 1],
    sum: Cell<u64>,
    count: Cell<u64>,
}

// Derived `Default` is unavailable for arrays longer than 32 elements.
impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| Cell::new(0)),
            sum: Cell::new(0),
            count: Cell::new(0),
        }
    }
}

/// A log2-bucketed histogram of nonnegative integer observations (cycle
/// latencies). Bucket upper bounds are `1, 2, 4, …, 2^31, +Inf` — covering
/// every latency the simulator can produce while keeping observation O(1)
/// and allocation-free.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = Self::bucket_index(value);
        let b = &self.0.buckets[idx];
        b.set(b.get() + 1);
        self.0.sum.set(self.0.sum.get().wrapping_add(value));
        self.0.count.set(self.0.count.get() + 1);
    }

    /// The bucket an observation falls into: the smallest `i` with
    /// `value <= 2^i`, or the overflow bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            let i = 64 - (value - 1).leading_zeros() as usize;
            i.min(HISTOGRAM_BUCKETS)
        }
    }

    /// The inclusive upper bound of bucket `i` (`f64::INFINITY` for the
    /// overflow bucket).
    pub fn bucket_bound(i: usize) -> f64 {
        if i >= HISTOGRAM_BUCKETS {
            f64::INFINITY
        } else {
            (1u64 << i) as f64
        }
    }

    /// Per-bucket (non-cumulative) observation counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(Cell::get).collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.get()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.get()
    }

    /// Arithmetic mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.sum() as f64 / self.count() as f64
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// (sorted label pairs, handle) per series.
    series: Vec<(Vec<(String, String)>, Series)>,
}

/// The metric registry. Cloning shares the underlying store, so a single
/// registry can be handed to the simulator, the OS model, and the attack
/// programs, and scraped once at the end (or at any point mid-run).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Rc<RefCell<Vec<Family>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name` with the given label pairs.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists with a different metric type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Gets or creates the gauge `name` with the given label pairs.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists with a different metric type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Gets or creates the histogram `name` with the given label pairs.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists with a different metric type.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, Kind::Histogram, labels) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Looks up an existing counter's current value (scrape helper for
    /// tests and reports). Returns `None` if the series does not exist.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = sorted_labels(labels);
        let families = self.families.borrow();
        let fam = families.iter().find(|f| f.name == name)?;
        fam.series.iter().find_map(|(l, s)| match s {
            Series::Counter(c) if *l == key => Some(c.get()),
            _ => None,
        })
    }

    fn series(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Series {
        assert!(
            is_valid_metric_name(name),
            "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        let key = sorted_labels(labels);
        let mut families = self.families.borrow_mut();
        let fam = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} registered as {} but requested as {}",
                    f.kind.as_str(),
                    kind.as_str()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, s)) = fam.series.iter().find(|(l, _)| *l == key) {
            return s.clone();
        }
        let s = match kind {
            Kind::Counter => Series::Counter(Counter::default()),
            Kind::Gauge => Series::Gauge(Gauge::default()),
            Kind::Histogram => Series::Histogram(Histogram::default()),
        };
        fam.series.push((key, s.clone()));
        s
    }

    /// Renders the whole registry in the Prometheus text exposition format
    /// (v0.0.4): `# HELP` / `# TYPE` headers, one sample per line,
    /// histograms expanded to cumulative `_bucket`/`_sum`/`_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in self.families.borrow().iter() {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.as_str()));
            for (labels, series) in &fam.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&fam.name);
                        out.push_str(&prom_labels(labels, None));
                        out.push_str(&format!(" {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&fam.name);
                        out.push_str(&prom_labels(labels, None));
                        out.push_str(&format!(" {}\n", encode::prom_f64(g.get())));
                    }
                    Series::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cumulative += c;
                            let le = encode::prom_f64(Histogram::bucket_bound(i));
                            out.push_str(&format!("{}_bucket", fam.name));
                            out.push_str(&prom_labels(labels, Some(&le)));
                            out.push_str(&format!(" {cumulative}\n"));
                        }
                        out.push_str(&format!("{}_sum", fam.name));
                        out.push_str(&prom_labels(labels, None));
                        out.push_str(&format!(" {}\n", h.sum()));
                        out.push_str(&format!("{}_count", fam.name));
                        out.push_str(&prom_labels(labels, None));
                        out.push_str(&format!(" {}\n", h.count()));
                    }
                }
            }
        }
        out
    }

    /// Renders the whole registry as a single JSON document:
    /// `{"metrics": [{"name", "type", "help", "series": [...]}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (fi, fam) in self.families.borrow().iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            encode::json_string(&mut out, &fam.name);
            out.push_str(",\"type\":");
            encode::json_string(&mut out, fam.kind.as_str());
            out.push_str(",\"help\":");
            encode::json_string(&mut out, &fam.help);
            out.push_str(",\"series\":[");
            for (si, (labels, series)) in fam.series.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    encode::json_string(&mut out, k);
                    out.push(':');
                    encode::json_string(&mut out, v);
                }
                out.push('}');
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!(",\"value\":{}", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(",\"value\":");
                        encode::json_f64(&mut out, g.get());
                    }
                    Series::Histogram(h) => {
                        out.push_str(",\"buckets\":[");
                        for (i, c) in h.bucket_counts().iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!("{c}"));
                        }
                        out.push_str(&format!("],\"sum\":{},\"count\":{}", h.sum(), h.count()));
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", encode::prom_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_series_are_shared_by_identity() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("k", "v")]);
        let b = r.counter("x_total", "x", &[("k", "v")]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        // Label order must not matter.
        let c = r.counter("y_total", "y", &[("a", "1"), ("b", "2")]);
        let d = r.counter("y_total", "y", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("k", "a")]);
        let b = r.counter("x_total", "x", &[("k", "b")]);
        a.inc();
        assert_eq!(b.get(), 0);
        assert_eq!(r.counter_value("x_total", &[("k", "a")]), Some(1));
        assert_eq!(r.counter_value("x_total", &[("k", "c")]), None);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_conflicts_are_rejected() {
        let r = Registry::new();
        r.counter("m", "m", &[]);
        r.gauge("m", "m", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("0bad name", "", &[]);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 31), 31);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
        assert_eq!(Histogram::bucket_bound(0), 1.0);
        assert_eq!(Histogram::bucket_bound(5), 32.0);
        assert!(Histogram::bucket_bound(HISTOGRAM_BUCKETS).is_infinite());
    }

    #[test]
    fn histogram_tracks_sum_count_mean() {
        let h = Histogram::default();
        for v in [2u64, 30, 200] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 232);
        assert!((h.mean() - 232.0 / 3.0).abs() < 1e-12);
        let counts = h.bucket_counts();
        assert_eq!(counts[1], 1); // 2 -> le 2
        assert_eq!(counts[5], 1); // 30 -> le 32
        assert_eq!(counts[8], 1); // 200 -> le 256
    }

    #[test]
    fn prometheus_text_shape() {
        let r = Registry::new();
        r.counter("hits_total", "Total hits.", &[("cache", "l1d")])
            .add(7);
        r.gauge("occupancy", "Lines resident.", &[]).set(0.5);
        let h = r.histogram("lat_cycles", "Latency.", &[("level", "llc")]);
        h.observe(30);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total{cache=\"l1d\"} 7"));
        assert!(text.contains("occupancy 0.5"));
        assert!(text.contains("lat_cycles_bucket{level=\"llc\",le=\"32\"} 1"));
        assert!(text.contains("lat_cycles_bucket{level=\"llc\",le=\"+Inf\"} 1"));
        assert!(text.contains("lat_cycles_sum{level=\"llc\"} 30"));
        assert!(text.contains("lat_cycles_count{level=\"llc\"} 1"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let r = Registry::new();
        r.counter("a_total", "a \"quoted\" help", &[("k", "v")])
            .inc();
        r.histogram("h", "h", &[]).observe(5);
        let json = r.render_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"a \\\"quoted\\\" help\""));
        assert!(json.contains("\"value\":1"));
        assert!(json.contains("\"count\":1"));
        // Balanced braces/brackets (cheap structural check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }
}
