//! Per-phase cycle attribution: where did the simulated cycles go?
//!
//! The paper's overhead story decomposes into exactly three places a cycle
//! can be spent: useful compute (the in-order core's base CPI), memory
//! stall (everything above an L1 hit, including first-access delays), and
//! context-switch cost (the base switch plus TimeCache's s-bit DMA and
//! comparator sweep). The [`Profiler`] accumulates that split per process
//! and per hardware context; [`Span`] measures a region of simulated time
//! and attributes it on `end`.

use crate::encode;
use std::cell::RefCell;
use std::rc::Rc;

/// The phase a simulated cycle is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Base execution cycles (one per retired instruction).
    Compute,
    /// Stall cycles waiting on the memory hierarchy beyond an L1 hit
    /// (true misses, first-access delays, flushes).
    MemoryStall,
    /// Context-switch cycles (base cost + s-bit DMA + comparator sweep).
    SwitchCost,
}

/// Number of distinct phases.
pub const NUM_PHASES: usize = 3;

impl Phase {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::MemoryStall => "memory_stall",
            Phase::SwitchCost => "switch_cost",
        }
    }

    /// All phases, in export order.
    pub fn all() -> [Phase; NUM_PHASES] {
        [Phase::Compute, Phase::MemoryStall, Phase::SwitchCost]
    }

    fn index(self) -> usize {
        match self {
            Phase::Compute => 0,
            Phase::MemoryStall => 1,
            Phase::SwitchCost => 2,
        }
    }
}

/// What a profiled scope refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// A process, by pid.
    Process(u32),
    /// A hardware context, by flat index (`core * smt + thread`).
    Context(u32),
}

/// Cycle totals for one scope, indexed by phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// `cycles[phase]` per [`Phase::all`] order.
    pub cycles: [u64; NUM_PHASES],
}

impl PhaseCycles {
    /// Cycles attributed to one phase.
    pub fn get(&self, phase: Phase) -> u64 {
        self.cycles[phase.index()]
    }

    /// Total cycles across phases.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }
}

#[derive(Debug, Default)]
struct ProfInner {
    processes: Vec<PhaseCycles>,
    contexts: Vec<PhaseCycles>,
}

/// The phase profiler. Cloning shares the accumulation tables. Tables grow
/// on first sight of a scope index; recording into a known scope is two
/// array indexings and an add.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Rc<RefCell<ProfInner>>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Attributes `cycles` to `phase` within `scope`.
    #[inline]
    pub fn record(&self, scope: Scope, phase: Phase, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let (table, idx) = match scope {
            Scope::Process(pid) => (&mut inner.processes, pid as usize),
            Scope::Context(ctx) => (&mut inner.contexts, ctx as usize),
        };
        if idx >= table.len() {
            table.resize(idx + 1, PhaseCycles::default());
        }
        table[idx].cycles[phase.index()] += cycles;
    }

    /// Opens a span at `start_cycle`; call [`Span::end`] to attribute the
    /// elapsed simulated time.
    pub fn span(&self, scope: Scope, phase: Phase, start_cycle: u64) -> Span {
        Span {
            profiler: self.clone(),
            scope,
            phase,
            start_cycle,
        }
    }

    /// Phase totals for a process (zeroes if never seen).
    pub fn process_cycles(&self, pid: u32) -> PhaseCycles {
        self.inner
            .borrow()
            .processes
            .get(pid as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Phase totals for a hardware context (zeroes if never seen).
    pub fn context_cycles(&self, ctx: u32) -> PhaseCycles {
        self.inner
            .borrow()
            .contexts
            .get(ctx as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Number of process scopes seen.
    pub fn num_processes(&self) -> usize {
        self.inner.borrow().processes.len()
    }

    /// Number of context scopes seen.
    pub fn num_contexts(&self) -> usize {
        self.inner.borrow().contexts.len()
    }

    /// Captures the accumulation tables as owned plain data (`Send`), for
    /// transfer across a thread boundary and [`Profiler::merge`].
    pub fn snapshot(&self) -> ProfileSnapshot {
        let inner = self.inner.borrow();
        ProfileSnapshot {
            processes: inner.processes.clone(),
            contexts: inner.contexts.clone(),
        }
    }

    /// Adds a snapshot's cycle totals into this profiler, element-wise per
    /// scope and phase (tables grow as needed). Merging N worker snapshots
    /// yields the same totals as one serial profiler recording everything.
    pub fn merge(&self, snap: &ProfileSnapshot) {
        fn add_into(table: &mut Vec<PhaseCycles>, add: &[PhaseCycles]) {
            if table.len() < add.len() {
                table.resize(add.len(), PhaseCycles::default());
            }
            for (dst, src) in table.iter_mut().zip(add) {
                for (d, s) in dst.cycles.iter_mut().zip(&src.cycles) {
                    *d += s;
                }
            }
        }
        let mut inner = self.inner.borrow_mut();
        add_into(&mut inner.processes, &snap.processes);
        add_into(&mut inner.contexts, &snap.contexts);
    }

    /// Renders the profile as a JSON document:
    /// `{"processes": [...], "contexts": [...]}` with per-phase cycles.
    pub fn render_json(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::from("{");
        for (ti, (key, table)) in [
            ("processes", &inner.processes),
            ("contexts", &inner.contexts),
        ]
        .iter()
        .enumerate()
        {
            if ti > 0 {
                out.push(',');
            }
            encode::json_string(&mut out, key);
            out.push_str(":[");
            for (i, pc) in table.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"id\":{i}"));
                for phase in Phase::all() {
                    out.push_str(&format!(",\"{}\":{}", phase.as_str(), pc.get(phase)));
                }
                out.push_str(&format!(",\"total\":{}}}", pc.total()));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// A plain-data copy of a profiler's tables, safe to send across threads
/// (see [`Profiler::snapshot`] / [`Profiler::merge`]).
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    processes: Vec<PhaseCycles>,
    contexts: Vec<PhaseCycles>,
}

/// An open profiling span over simulated time. Explicitly ended (no Drop
/// magic: simulated clocks, unlike wall clocks, must be passed in).
#[derive(Debug)]
pub struct Span {
    profiler: Profiler,
    scope: Scope,
    phase: Phase,
    start_cycle: u64,
}

impl Span {
    /// Closes the span at `end_cycle`, attributing the elapsed cycles.
    /// Saturates to zero if clocks run backwards.
    pub fn end(self, end_cycle: u64) {
        let elapsed = end_cycle.saturating_sub(self.start_cycle);
        self.profiler.record(self.scope, self.phase, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_scope_and_phase() {
        let p = Profiler::new();
        p.record(Scope::Process(0), Phase::Compute, 10);
        p.record(Scope::Process(0), Phase::Compute, 5);
        p.record(Scope::Process(0), Phase::MemoryStall, 7);
        p.record(Scope::Process(2), Phase::SwitchCost, 3);
        p.record(Scope::Context(1), Phase::Compute, 9);

        assert_eq!(p.process_cycles(0).get(Phase::Compute), 15);
        assert_eq!(p.process_cycles(0).get(Phase::MemoryStall), 7);
        assert_eq!(p.process_cycles(0).total(), 22);
        assert_eq!(p.process_cycles(1), PhaseCycles::default());
        assert_eq!(p.process_cycles(2).get(Phase::SwitchCost), 3);
        assert_eq!(p.context_cycles(1).get(Phase::Compute), 9);
        assert_eq!(p.num_processes(), 3);
        assert_eq!(p.num_contexts(), 2);
    }

    #[test]
    fn spans_attribute_elapsed_simulated_time() {
        let p = Profiler::new();
        let span = p.span(Scope::Context(0), Phase::SwitchCost, 100);
        span.end(160);
        assert_eq!(p.context_cycles(0).get(Phase::SwitchCost), 60);
        // Backwards clock saturates.
        p.span(Scope::Context(0), Phase::SwitchCost, 50).end(10);
        assert_eq!(p.context_cycles(0).get(Phase::SwitchCost), 60);
    }

    #[test]
    fn snapshot_merge_matches_serial_recording() {
        fn assert_send<T: Send>() {}
        assert_send::<ProfileSnapshot>();
        let serial = Profiler::new();
        let merged = Profiler::new();
        for worker in 0..3u32 {
            let w = Profiler::new();
            serial.record(Scope::Process(worker), Phase::Compute, 10);
            w.record(Scope::Process(worker), Phase::Compute, 10);
            serial.record(Scope::Context(0), Phase::SwitchCost, 5);
            w.record(Scope::Context(0), Phase::SwitchCost, 5);
            merged.merge(&w.snapshot());
        }
        assert_eq!(serial.render_json(), merged.render_json());
        assert_eq!(merged.context_cycles(0).get(Phase::SwitchCost), 15);
    }

    #[test]
    fn json_lists_all_scopes() {
        let p = Profiler::new();
        p.record(Scope::Process(1), Phase::MemoryStall, 4);
        let json = p.render_json();
        assert!(json.contains("\"processes\":["));
        assert!(json.contains("\"memory_stall\":4"));
        assert!(json.contains("\"contexts\":[]"));
        // Process 0 exists as an all-zero row (dense table).
        assert!(json.contains("{\"id\":0,\"compute\":0"));
    }
}
