//! Minimal hand-rolled serialization helpers shared by every exposition
//! format: JSON string escaping, JSON-safe float formatting, and RFC-4180
//! CSV escaping. Keeping one implementation here means the registry, the
//! tracer, and the bench CSV emitter all serialize through the same code
//! path (no third-party serializers, per DESIGN.md §6).

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number. JSON has no NaN/Infinity; non-finite values are
/// emitted as `null` so the output always parses.
pub fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Formats a float for Prometheus text exposition, where `NaN`, `+Inf` and
/// `-Inf` are legal literals.
pub fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Escapes a label *value* for Prometheus text exposition (backslash,
/// double quote, and newline must be escaped inside the quotes).
pub fn prom_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes one CSV cell per RFC 4180: cells containing a comma, quote, or
/// newline are wrapped in quotes with inner quotes doubled.
pub fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_owned()
    }
}

/// Renders a header plus rows as CSV text (the single serialization path
/// used by the bench harness's `write_csv`).
pub fn csv_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let head: Vec<String> = header.iter().map(|h| csv_cell(h)).collect();
    out.push_str(&head.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| csv_cell(c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes_specials() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn json_f64_handles_nonfinite() {
        let mut s = String::new();
        json_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
        s.clear();
        json_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn prom_f64_literals() {
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(2.0), "2");
    }

    #[test]
    fn csv_cell_escapes_when_needed() {
        assert_eq!(csv_cell("plain"), "plain");
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_cell("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn csv_table_round_trips_simple_rows() {
        let t = csv_table(&["a", "b"], &[vec!["1".into(), "x,y".into()]]);
        assert_eq!(t, "a,b\n1,\"x,y\"\n");
    }
}
