//! System-assembly helpers shared by the attack demonstrations and the
//! experiment harness.

use crate::analysis::Threshold;
use crate::flush_reload::{summarize, FlushReloadAttacker, MicrobenchResult};
use timecache_core::TimeCacheConfig;
use timecache_os::programs::SharedWriter;
use timecache_os::{System, SystemConfig};
use timecache_sim::{HierarchyConfig, SecurityMode};
use timecache_telemetry::Telemetry;
use timecache_workloads::layout;

/// Outcome of one attack demonstration, ready for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Attack name.
    pub attack: String,
    /// Security mode the system ran under.
    pub mode: String,
    /// Whether the attacker extracted the signal it was after.
    pub leaked: bool,
    /// A human-readable quantitative summary ("hits 256/256", "key 98 %").
    pub detail: String,
}

impl AttackOutcome {
    /// Builds an outcome row.
    pub fn new(
        attack: impl Into<String>,
        mode: impl Into<String>,
        leaked: bool,
        detail: impl Into<String>,
    ) -> Self {
        AttackOutcome {
            attack: attack.into(),
            mode: mode.into(),
            leaked,
            detail: detail.into(),
        }
    }
}

/// A single-core system configured for same-core, time-sliced attacks.
///
/// The quantum is deliberately small (the attacker self-preempts with
/// `Yield` anyway) and the hierarchy is the paper's Table I setup.
pub fn single_core_system(security: SecurityMode) -> System {
    let mut hierarchy = HierarchyConfig::with_cores(1);
    hierarchy.security = security;
    let cfg = SystemConfig {
        hierarchy,
        quantum_cycles: 200_000,
        ..SystemConfig::default()
    };
    System::new(cfg).expect("table-I config is valid")
}

/// A two-core system for cross-core attacks.
pub fn dual_core_system(security: SecurityMode) -> System {
    let mut hierarchy = HierarchyConfig::with_cores(2);
    hierarchy.security = security;
    let cfg = SystemConfig {
        hierarchy,
        quantum_cycles: 200_000,
        ..SystemConfig::default()
    };
    System::new(cfg).expect("table-I config is valid")
}

/// An SMT system: one core, two hardware threads.
pub fn smt_system(security: SecurityMode) -> System {
    let mut hierarchy = HierarchyConfig::with_cores(1);
    hierarchy.smt_per_core = 2;
    hierarchy.security = security;
    let cfg = SystemConfig {
        hierarchy,
        quantum_cycles: 200_000,
        ..SystemConfig::default()
    };
    System::new(cfg).expect("table-I config is valid")
}

/// The TimeCache security mode with the paper's default parameters.
pub fn timecache_mode() -> SecurityMode {
    SecurityMode::TimeCache(TimeCacheConfig::default())
}

/// Runs the Section VI-A.1 microbenchmark: a parent (attacker) flushes a
/// 256-line shared array and yields; the child (victim) writes the array;
/// the parent then performs timed reads. Returns probes/hits.
///
/// In the baseline every probed line the victim wrote reloads fast; with
/// TimeCache the attacker "does not see any hit".
pub fn run_microbenchmark(security: SecurityMode, rounds: u32) -> MicrobenchResult {
    run_microbenchmark_with_telemetry(security, rounds, &Telemetry::disabled())
}

/// [`run_microbenchmark`] with observability: the system streams cache and
/// scheduler telemetry into `tel`, and the attacker feeds its reload
/// latencies into the `attack_probe_latency_cycles` histogram (from which
/// [`Threshold::from_histogram`] can re-derive the decision boundary) and
/// emits a probe event per timed load.
pub fn run_microbenchmark_with_telemetry(
    security: SecurityMode,
    rounds: u32,
    tel: &Telemetry,
) -> MicrobenchResult {
    let mut hierarchy = HierarchyConfig::with_cores(1);
    hierarchy.security = security;
    let cfg = SystemConfig {
        hierarchy,
        quantum_cycles: 200_000,
        telemetry: tel.clone(),
        ..SystemConfig::default()
    };
    let mut sys = System::new(cfg).expect("table-I config is valid");
    let lat = sys.config().hierarchy.latencies;
    let lines = 256u64;
    let targets: Vec<u64> = (0..lines)
        .map(|i| layout::SHARED_SEGMENT + i * layout::LINE)
        .collect();

    let (attacker, log) = FlushReloadAttacker::new(targets, Threshold::calibrate(&lat), rounds);
    let attacker = attacker.with_telemetry(tel);
    // Attacker first so its initial flush precedes the victim's writes.
    sys.spawn(Box::new(attacker), 0, 0, None);
    // The victim writes the shared array over and over, yielding between
    // sweeps (the paper's child process). Its instruction budget outlives
    // every attack round by a wide margin, then the run winds down.
    let victim_budget = (rounds as u64 + 16) * 4 * (lines + 1);
    sys.spawn(
        Box::new(SharedWriter::new(
            layout::SHARED_SEGMENT,
            lines,
            layout::LINE,
        )),
        0,
        0,
        Some(victim_budget),
    );

    sys.run(200_000_000);
    summarize(&log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbenchmark_leaks_in_baseline() {
        let r = run_microbenchmark(SecurityMode::Baseline, 3);
        assert_eq!(r.rounds, 3);
        // The victim writes every line between flush and reload: nearly all
        // probes must be hits.
        assert!(
            r.hits > r.probes * 9 / 10,
            "expected heavy leakage, got {}/{} hits",
            r.hits,
            r.probes
        );
    }

    #[test]
    fn microbenchmark_blind_under_timecache() {
        let r = run_microbenchmark(timecache_mode(), 3);
        assert_eq!(r.rounds, 3);
        assert_eq!(r.hits, 0, "attacker must not see any hit");
        assert_eq!(r.probes, 3 * 256);
    }

    #[test]
    fn telemetry_captures_probe_latencies() {
        use timecache_telemetry::TraceEvent;

        let tel = Telemetry::enabled();
        let r = run_microbenchmark_with_telemetry(SecurityMode::Baseline, 2, &tel);
        let hist = tel.registry().unwrap().histogram(
            "attack_probe_latency_cycles",
            "Reload/probe latencies measured by attackers.",
            &[("attack", "flush_reload")],
        );
        assert_eq!(hist.count(), r.probes);
        let probe_events = tel
            .tracer()
            .unwrap()
            .records()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Probe { .. }))
            .count() as u64;
        assert_eq!(probe_events, r.probes);

        // The baseline microbenchmark is all-hits (that's the leak), so its
        // own histogram has a single mode and no derivable boundary.
        assert_eq!(Threshold::from_histogram(&hist), None);

        // Feeding a TimeCache run (all miss-latency probes) into the *same*
        // handle makes the distribution bimodal — the known-cached /
        // known-flushed calibration a real attacker performs — and the
        // recovered boundary separates the latency model's extremes.
        run_microbenchmark_with_telemetry(timecache_mode(), 2, &tel);
        let t = Threshold::from_histogram(&hist).expect("two modes present");
        let lat = timecache_sim::LatencyConfig::default();
        assert!(t.is_hit(lat.l1_hit));
        assert!(!t.is_hit(lat.dram));
    }

    #[test]
    fn systems_construct() {
        let _ = single_core_system(SecurityMode::Baseline);
        let _ = dual_core_system(timecache_mode());
        let _ = smt_system(timecache_mode());
    }
}
