//! # timecache-attacks
//!
//! Cache side-channel attack programs and analysis tooling for the
//! TimeCache reproduction (Ojha & Dwarkadas, ISCA 2021).
//!
//! The crate implements, as runnable [`timecache_os::Program`]s:
//!
//! * [`flush_reload`] — the reuse attack TimeCache is built to stop,
//!   including the paper's Section VI-A.1 microbenchmark (flush → yield →
//!   victim writes → timed reads of a 256-line shared array);
//! * [`evict_reload`] — the flush-free reuse variant using eviction sets;
//! * [`rsa_attack`] — the classic flush+reload key extraction against the
//!   GnuPG-style square-and-multiply victim (Section VI-A.2);
//! * [`covert`] — the Spectre-style reuse covert channel and its capacity
//!   collapse under TimeCache (Section IX);
//! * [`prime_probe`] — a contention attack, shown *out of scope* for
//!   TimeCache but defeated by the CEASER-like keyed index;
//! * [`lru`] — the replacement-state attack of Section VII-A;
//! * [`coherence`] — invalidate+transfer (Section VII-B);
//! * [`flush_flush`] — timing `clflush` itself (Section VII-C);
//! * [`evict_time`] — the flush-based Evict+Time variant (Section VII-D);
//!
//! plus [`analysis`] (thresholding, hit decoding, key-recovery accuracy)
//! and [`harness`] (system assembly helpers shared by the experiments).
//!
//! Attacker programs expose their measurements through shared
//! [`std::rc::Rc`]`<`[`std::cell::RefCell`]`>` logs returned alongside the
//! program, so results can be read back after [`timecache_os::System::run`]
//! consumes the boxed program.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod coherence;
pub mod covert;
pub mod evict_reload;
pub mod evict_time;
pub mod flush_flush;
pub mod flush_reload;
pub mod harness;
pub mod lru;
pub mod prime_probe;
pub mod rsa_attack;
pub mod spectre;

pub use analysis::{KeyRecovery, Threshold};
pub use flush_reload::{FlushReloadAttacker, ProbeLog};
pub use harness::AttackOutcome;
