//! Flush+reload: the reuse attack TimeCache eliminates.
//!
//! The attacker shares memory with the victim. Each round it flushes the
//! shared lines from the whole hierarchy, yields the CPU so the victim can
//! run, then reloads each line with a timed access: a fast reload means the
//! victim touched the line. This module provides the generic attacker
//! program plus the paper's Section VI-A.1 microbenchmark shape (a parent
//! flushing and timing a 256-line shared array that the child writes).

use crate::analysis::Threshold;
use std::cell::RefCell;
use std::rc::Rc;
use timecache_os::{DataKind, Observation, Op, Program};
use timecache_sim::Addr;
use timecache_telemetry::{Histogram, Telemetry, TraceEvent};

/// One probe measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Which round (flush→yield→reload cycle) this probe belongs to.
    pub round: u32,
    /// The probed address.
    pub addr: Addr,
    /// Measured reload latency.
    pub latency: u64,
    /// Whether the latency classifies as a hit under the attacker's
    /// calibrated threshold.
    pub hit: bool,
}

/// Shared log the attacker writes probes into; hold a clone to read results
/// after the run.
pub type ProbeLog = Rc<RefCell<Vec<Probe>>>;

/// Internal phase of the attacker's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Flushing target `i`.
    Flush(usize),
    /// Yielding to the victim.
    Sleep,
    /// Reloading target `i` (its latency arrives via `observe`).
    Probe(usize),
    /// All rounds done.
    Finished,
}

/// A flush+reload attacker probing a fixed set of shared addresses.
///
/// The program runs `rounds` rounds of *flush all → yield → reload all*,
/// recording every reload into its [`ProbeLog`].
pub struct FlushReloadAttacker {
    targets: Vec<Addr>,
    threshold: Threshold,
    rounds: u32,
    round: u32,
    phase: Phase,
    log: ProbeLog,
    pc: Addr,
    tel: Telemetry,
    latency_hist: Option<Histogram>,
}

impl FlushReloadAttacker {
    /// Creates the attacker and the shared log its measurements land in.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or `rounds` is zero.
    pub fn new(targets: Vec<Addr>, threshold: Threshold, rounds: u32) -> (Self, ProbeLog) {
        assert!(!targets.is_empty(), "need at least one probe target");
        assert!(rounds > 0, "need at least one round");
        let log: ProbeLog = Rc::new(RefCell::new(Vec::new()));
        (
            FlushReloadAttacker {
                targets,
                threshold,
                rounds,
                round: 0,
                phase: Phase::Flush(0),
                log: Rc::clone(&log),
                pc: 0x6660_0000,
                tel: Telemetry::disabled(),
                latency_hist: None,
            },
            log,
        )
    }

    /// Routes every probe into `tel`: reload latencies feed the
    /// `attack_probe_latency_cycles{attack="flush_reload"}` histogram (the
    /// input to [`Threshold::from_histogram`] calibration) and each probe
    /// emits a [`TraceEvent::Probe`]. No-op when `tel` is disabled.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.latency_hist = tel.registry().map(|reg| {
            reg.histogram(
                "attack_probe_latency_cycles",
                "Reload/probe latencies measured by attackers.",
                &[("attack", "flush_reload")],
            )
        });
        self.tel = tel.clone();
        self
    }

    fn next_pc(&mut self) -> Addr {
        // A tight attack loop: 4 code lines.
        self.pc = (self.pc & !0xFF) | ((self.pc + 64) & 0xFF);
        self.pc
    }
}

impl Program for FlushReloadAttacker {
    fn next_op(&mut self) -> Op {
        match self.phase {
            Phase::Flush(i) => {
                let pc = self.next_pc();
                let target = self.targets[i];
                self.phase = if i + 1 < self.targets.len() {
                    Phase::Flush(i + 1)
                } else {
                    Phase::Sleep
                };
                Op::Flush { pc, target }
            }
            Phase::Sleep => {
                self.phase = Phase::Probe(0);
                Op::Yield { pc: self.next_pc() }
            }
            Phase::Probe(i) => {
                let pc = self.next_pc();
                Op::Instr {
                    pc,
                    data: Some((DataKind::Load, self.targets[i])),
                }
                // Phase advances in observe(), once the latency is known.
            }
            Phase::Finished => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        if let Phase::Probe(i) = self.phase {
            if let Some(latency) = obs.data_latency {
                let hit = self.threshold.is_hit(latency);
                self.log.borrow_mut().push(Probe {
                    round: self.round,
                    addr: self.targets[i],
                    latency,
                    hit,
                });
                if let Some(h) = &self.latency_hist {
                    h.observe(latency);
                    self.tel.emit_at(
                        obs.now,
                        TraceEvent::Probe {
                            attack: "flush_reload",
                            latency,
                            hit,
                        },
                    );
                }
                self.phase = if i + 1 < self.targets.len() {
                    Phase::Probe(i + 1)
                } else {
                    self.round += 1;
                    if self.round >= self.rounds {
                        Phase::Finished
                    } else {
                        Phase::Flush(0)
                    }
                };
            }
        }
    }

    fn name(&self) -> &str {
        "flush-reload"
    }
}

impl std::fmt::Debug for FlushReloadAttacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlushReloadAttacker")
            .field("targets", &self.targets.len())
            .field("round", &self.round)
            .field("rounds", &self.rounds)
            .finish()
    }
}

/// Summary of a microbenchmark run: probes and hits per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicrobenchResult {
    /// Total probes performed.
    pub probes: u64,
    /// Probes classified as hits — any nonzero value means the victim's
    /// accesses were observable (a successful attack).
    pub hits: u64,
    /// Rounds completed.
    pub rounds: u32,
}

/// Aggregates a probe log into a [`MicrobenchResult`].
pub fn summarize(log: &ProbeLog) -> MicrobenchResult {
    let probes = log.borrow();
    MicrobenchResult {
        probes: probes.len() as u64,
        hits: probes.iter().filter(|p| p.hit).count() as u64,
        rounds: probes.iter().map(|p| p.round + 1).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_emits_flush_yield_probe() {
        let (mut a, _log) =
            FlushReloadAttacker::new(vec![0x1000, 0x2000], Threshold::from_cycles(10), 2);
        assert!(matches!(a.next_op(), Op::Flush { target: 0x1000, .. }));
        assert!(matches!(a.next_op(), Op::Flush { target: 0x2000, .. }));
        assert!(matches!(a.next_op(), Op::Yield { .. }));
        assert!(matches!(
            a.next_op(),
            Op::Instr {
                data: Some((DataKind::Load, 0x1000)),
                ..
            }
        ));
        // Until the latency is observed the attacker stays on the probe.
        assert!(matches!(
            a.next_op(),
            Op::Instr {
                data: Some((DataKind::Load, 0x1000)),
                ..
            }
        ));
        a.observe(Observation {
            instr_index: 0,
            data_latency: Some(5),
            flush_latency: None,
            now: 0,
        });
        assert!(matches!(
            a.next_op(),
            Op::Instr {
                data: Some((DataKind::Load, 0x2000)),
                ..
            }
        ));
    }

    #[test]
    fn log_records_hits_and_rounds() {
        let (mut a, log) = FlushReloadAttacker::new(vec![0x40], Threshold::from_cycles(10), 2);
        // Round 0: flush, yield, probe (hit).
        a.next_op();
        a.next_op();
        a.next_op();
        a.observe(Observation {
            instr_index: 0,
            data_latency: Some(3),
            flush_latency: None,
            now: 0,
        });
        // Round 1: probe (miss).
        a.next_op();
        a.next_op();
        a.next_op();
        a.observe(Observation {
            instr_index: 1,
            data_latency: Some(300),
            flush_latency: None,
            now: 0,
        });
        assert_eq!(a.next_op(), Op::Done);

        let summary = summarize(&log);
        assert_eq!(summary.probes, 2);
        assert_eq!(summary.hits, 1);
        assert_eq!(summary.rounds, 2);
    }

    #[test]
    #[should_panic(expected = "at least one probe target")]
    fn empty_targets_rejected() {
        FlushReloadAttacker::new(vec![], Threshold::from_cycles(10), 1);
    }
}
