//! Measurement analysis: hit/miss thresholding and key recovery.

use timecache_sim::LatencyConfig;
use timecache_telemetry::{Histogram, HISTOGRAM_BUCKETS};

/// A calibrated hit/miss decision threshold, as a real attacker derives by
/// timing a known-cached and a known-flushed access.
///
/// # Examples
///
/// ```
/// use timecache_attacks::Threshold;
/// use timecache_sim::LatencyConfig;
///
/// let t = Threshold::calibrate(&LatencyConfig::default());
/// assert!(t.is_hit(2));    // L1 latency
/// assert!(!t.is_hit(200)); // DRAM latency
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threshold {
    cycles: u64,
}

impl Threshold {
    /// Calibrates from the platform's latency model: anything at or below
    /// the midpoint between an L1 hit and an LLC hit counts as a hit. For
    /// cross-core attacks (reload lands in the LLC, not the L1) use
    /// [`Threshold::cross_core`].
    pub fn calibrate(lat: &LatencyConfig) -> Self {
        Threshold {
            cycles: lat.reload_threshold(),
        }
    }

    /// Cross-core calibration: an LLC or remote-cache service still counts
    /// as a hit; only a DRAM-latency service is a miss.
    pub fn cross_core(lat: &LatencyConfig) -> Self {
        Threshold {
            cycles: (lat.remote_l1 + lat.dram) / 2,
        }
    }

    /// Builds a threshold directly from a cycle count.
    pub fn from_cycles(cycles: u64) -> Self {
        Threshold { cycles }
    }

    /// Empirical calibration from a probe-latency histogram (as recorded by
    /// the telemetry-instrumented attackers): assumes a bimodal latency
    /// distribution, finds the two most-populated buckets, and places the
    /// boundary midway between the fast mode's upper bucket bound and the
    /// slow mode's lower bucket bound. This mirrors how a real attacker
    /// calibrates — time many known-cached and known-flushed loads, then
    /// split the two clusters.
    ///
    /// Returns `None` when the histogram has fewer than two populated
    /// buckets (no separable modes — e.g. under TimeCache, where every
    /// probe is miss-latency).
    pub fn from_histogram(hist: &Histogram) -> Option<Self> {
        let counts = hist.bucket_counts();
        let mut top: Option<usize> = None;
        let mut second: Option<usize> = None;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            match top {
                Some(t) if counts[t] >= c => match second {
                    Some(s) if counts[s] >= c => {}
                    _ => second = Some(i),
                },
                _ => {
                    second = top;
                    top = Some(i);
                }
            }
        }
        let (lo, hi) = match (top, second) {
            (Some(a), Some(b)) => (a.min(b), a.max(b)),
            _ => return None,
        };
        // Bucket `i` covers (2^(i-1), 2^i]; the overflow bucket starts at
        // the last finite bound.
        let fast_upper = Histogram::bucket_bound(lo);
        let slow_lower = Histogram::bucket_bound(hi.min(HISTOGRAM_BUCKETS) - 1);
        Some(Threshold {
            cycles: ((fast_upper + slow_lower) / 2.0) as u64,
        })
    }

    /// The decision boundary in cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Classifies one measured latency.
    pub fn is_hit(&self, latency: u64) -> bool {
        latency <= self.cycles
    }
}

/// One probe round of the RSA attack: which routines' entry lines hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RsaRound {
    /// Square routine probe hit.
    pub square: bool,
    /// Multiply routine probe hit.
    pub multiply: bool,
    /// Reduce routine probe hit.
    pub reduce: bool,
}

/// Key-recovery decoding and scoring for the RSA flush+reload attack.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyRecovery {
    /// Recovered bits, most significant first (excluding the exponent's
    /// MSB, which square-and-multiply never leaks — it initializes the
    /// accumulator).
    pub bits: Vec<Option<bool>>,
}

impl KeyRecovery {
    /// Decodes probe rounds into exponent bits.
    ///
    /// Each round is one victim window (one exponent bit): a window whose
    /// Square (or Reduce) probe hit proves the victim ran exponentiation
    /// code; within such a window the Multiply probe distinguishes a set
    /// bit (S-R-M-R) from a clear bit (S-R). Windows with no exponentiation
    /// activity decode to `None` — with TimeCache enabled *every* window
    /// looks like that.
    pub fn decode(rounds: &[RsaRound]) -> Self {
        let bits = rounds
            .iter()
            .map(|r| {
                if r.square || r.reduce {
                    Some(r.multiply)
                } else {
                    None
                }
            })
            .collect();
        KeyRecovery { bits }
    }

    /// Fraction of the true key bits (MSB excluded, most significant first)
    /// correctly recovered. Undecoded windows count as wrong.
    ///
    /// # Panics
    ///
    /// Panics if `true_bits` is empty.
    pub fn accuracy(&self, true_bits: &[bool]) -> f64 {
        assert!(!true_bits.is_empty(), "need at least one key bit");
        let correct = true_bits
            .iter()
            .enumerate()
            .filter(|&(i, &b)| self.bits.get(i).copied().flatten() == Some(b))
            .count();
        correct as f64 / true_bits.len() as f64
    }

    /// Number of windows that carried any signal at all.
    pub fn decoded_count(&self) -> usize {
        self.bits.iter().filter(|b| b.is_some()).count()
    }
}

/// The post-MSB bits of a key, most significant first — the ground truth
/// the attack tries to recover.
pub fn exponent_tail_bits(key_bits: &[bool]) -> Vec<bool> {
    key_bits.iter().copied().skip(1).collect()
}

/// Empirical mutual information, in bits per observation, between a binary
/// secret sequence and a binary observation sequence of equal length.
///
/// This is the information-theoretic summary of a side channel: an ideal
/// binary channel gives 1 bit/observation; a closed channel gives ~0. It
/// complements raw accuracy because a channel that's reliably *inverted*
/// still carries full information, while all-zero observations carry none
/// regardless of how often they happen to match the secret.
///
/// # Panics
///
/// Panics if the sequences are empty or of different lengths.
///
/// # Examples
///
/// ```
/// use timecache_attacks::analysis::mutual_information_bits;
///
/// let secret = [true, false, true, true, false, false];
/// // Perfect channel: 1 bit per observation.
/// let mi = mutual_information_bits(&secret, &secret);
/// assert!(mi > 0.9);
/// // Constant observations: zero information.
/// let blind = [false; 6];
/// assert!(mutual_information_bits(&secret, &blind) < 1e-9);
/// ```
pub fn mutual_information_bits(secret: &[bool], observed: &[bool]) -> f64 {
    assert!(!secret.is_empty(), "need at least one observation");
    assert_eq!(
        secret.len(),
        observed.len(),
        "sequences must have equal length"
    );
    let n = secret.len() as f64;
    // Joint counts: [secret][observed].
    let mut joint = [[0.0f64; 2]; 2];
    for (&s, &o) in secret.iter().zip(observed) {
        joint[s as usize][o as usize] += 1.0;
    }
    let ps = [
        (joint[0][0] + joint[0][1]) / n,
        (joint[1][0] + joint[1][1]) / n,
    ];
    let po = [
        (joint[0][0] + joint[1][0]) / n,
        (joint[0][1] + joint[1][1]) / n,
    ];
    let mut mi = 0.0;
    for s in 0..2 {
        for o in 0..2 {
            let pxy = joint[s][o] / n;
            if pxy > 0.0 && ps[s] > 0.0 && po[o] > 0.0 {
                mi += pxy * (pxy / (ps[s] * po[o])).log2();
            }
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_separates_levels() {
        let lat = LatencyConfig::default();
        let t = Threshold::calibrate(&lat);
        assert!(t.is_hit(lat.l1_hit));
        assert!(!t.is_hit(lat.llc_hit));
        assert!(!t.is_hit(lat.dram));

        let x = Threshold::cross_core(&lat);
        assert!(x.is_hit(lat.llc_hit));
        assert!(x.is_hit(lat.remote_l1));
        assert!(!x.is_hit(lat.dram));
    }

    #[test]
    fn from_histogram_splits_bimodal_latencies() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(2); // L1-hit reloads
        }
        for _ in 0..60 {
            h.observe(200); // DRAM reloads
        }
        let t = Threshold::from_histogram(&h).expect("two modes present");
        assert!(t.is_hit(2));
        assert!(t.is_hit(30));
        assert!(!t.is_hit(200));
    }

    #[test]
    fn from_histogram_needs_two_modes() {
        let h = Histogram::default();
        assert_eq!(Threshold::from_histogram(&h), None);
        for _ in 0..10 {
            h.observe(200);
        }
        assert_eq!(Threshold::from_histogram(&h), None);
    }

    #[test]
    fn from_histogram_ignores_minor_noise_buckets() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(2);
        }
        for _ in 0..60 {
            h.observe(200);
        }
        h.observe(30); // one stray LLC-latency sample must not move the split
        let t = Threshold::from_histogram(&h).unwrap();
        assert!(t.is_hit(2) && !t.is_hit(200));
    }

    #[test]
    fn decode_reads_multiply_presence() {
        let rounds = [
            RsaRound {
                square: true,
                multiply: true,
                reduce: true,
            },
            RsaRound {
                square: true,
                multiply: false,
                reduce: true,
            },
            RsaRound {
                square: false,
                multiply: false,
                reduce: false,
            },
        ];
        let k = KeyRecovery::decode(&rounds);
        assert_eq!(k.bits, vec![Some(true), Some(false), None]);
        assert_eq!(k.decoded_count(), 2);
    }

    #[test]
    fn accuracy_scores_against_truth() {
        let k = KeyRecovery {
            bits: vec![Some(true), Some(false), None, Some(true)],
        };
        let truth = [true, false, true, false];
        // Correct: 0 and 1; window 2 undecoded; window 3 wrong.
        assert!((k.accuracy(&truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tail_bits_drop_msb() {
        assert_eq!(exponent_tail_bits(&[true, false, true]), vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "at least one key bit")]
    fn empty_truth_rejected() {
        KeyRecovery::default().accuracy(&[]);
    }

    #[test]
    fn mi_of_perfect_channel_approaches_entropy() {
        let secret: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let mi = mutual_information_bits(&secret, &secret);
        assert!((0.99..=1.0).contains(&mi), "{mi}");
    }

    #[test]
    fn mi_of_inverted_channel_is_still_full() {
        let secret: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let inverted: Vec<bool> = secret.iter().map(|b| !b).collect();
        let direct = mutual_information_bits(&secret, &secret);
        let flipped = mutual_information_bits(&secret, &inverted);
        assert!((direct - flipped).abs() < 1e-12);
    }

    #[test]
    fn mi_of_constant_observation_is_zero() {
        let secret: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        assert_eq!(mutual_information_bits(&secret, &[false; 32]), 0.0);
        assert_eq!(mutual_information_bits(&secret, &[true; 32]), 0.0);
    }

    #[test]
    fn mi_of_half_noisy_channel_is_partial() {
        // Observation correct for the first half, constant for the second.
        let secret: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let observed: Vec<bool> = secret
            .iter()
            .enumerate()
            .map(|(i, &s)| if i < 32 { s } else { false })
            .collect();
        let mi = mutual_information_bits(&secret, &observed);
        assert!(mi > 0.1 && mi < 0.9, "{mi}");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mi_checks_lengths() {
        mutual_information_bits(&[true], &[true, false]);
    }
}
