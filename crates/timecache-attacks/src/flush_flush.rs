//! The flush+flush attack (Section VII-C of the paper).
//!
//! `clflush` completes faster when the line is *not* cached (the
//! instruction aborts early), so the attacker never needs a timed load: it
//! flushes the shared line, yields, then flushes again and times the second
//! flush — a slow flush means the victim re-cached the line. TimeCache's
//! s-bits do not affect flush timing; the paper's proposed mitigation is a
//! constant-time `clflush` (dummy write-back when uncached), which this
//! module demonstrates via
//! [`TimeCacheConfig::with_constant_time_clflush`](timecache_core::TimeCacheConfig).

use crate::harness::{single_core_system, AttackOutcome};
use std::cell::RefCell;
use std::rc::Rc;
use timecache_core::TimeCacheConfig;
use timecache_os::{DataKind, Observation, Op, Program};
use timecache_sim::{Addr, SecurityMode};
use timecache_workloads::layout;

/// Per-round: did the timed flush run slow (victim access inferred)?
pub type FlushLog = Rc<RefCell<Vec<u64>>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Reset flush (untimed).
    Reset,
    Sleep,
    /// The timed flush.
    TimedFlush,
    Finished,
}

/// The flush+flush attacker.
pub struct FlushFlushAttacker {
    target: Addr,
    rounds: u32,
    round: u32,
    phase: Phase,
    log: FlushLog,
    pc: Addr,
}

impl FlushFlushAttacker {
    /// Creates the attacker; the log records the timed-flush latencies.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn new(target: Addr, rounds: u32) -> (Self, FlushLog) {
        assert!(rounds > 0, "need at least one round");
        let log: FlushLog = Rc::new(RefCell::new(Vec::new()));
        (
            FlushFlushAttacker {
                target,
                rounds,
                round: 0,
                phase: Phase::Reset,
                log: Rc::clone(&log),
                pc: 0x66B0_0000,
            },
            log,
        )
    }
}

impl Program for FlushFlushAttacker {
    fn next_op(&mut self) -> Op {
        match self.phase {
            Phase::Reset => {
                self.phase = Phase::Sleep;
                Op::Flush {
                    pc: self.pc,
                    target: self.target,
                }
            }
            Phase::Sleep => {
                self.phase = Phase::TimedFlush;
                Op::Yield { pc: self.pc }
            }
            Phase::TimedFlush => Op::Flush {
                pc: self.pc,
                target: self.target,
            },
            Phase::Finished => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        if self.phase == Phase::TimedFlush {
            if let Some(latency) = obs.flush_latency {
                self.log.borrow_mut().push(latency);
                self.round += 1;
                // The timed flush also reset the line: go straight to sleep.
                self.phase = if self.round >= self.rounds {
                    Phase::Finished
                } else {
                    Phase::Sleep
                };
            }
        }
    }

    fn name(&self) -> &str {
        "flush-flush"
    }
}

impl std::fmt::Debug for FlushFlushAttacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlushFlushAttacker")
            .field("round", &self.round)
            .finish()
    }
}

/// A victim that touches the watched line on odd wakes only, giving the
/// attacker a known on/off pattern (same-core yields alternate windows
/// deterministically).
#[derive(Debug)]
struct ToggleAccessor {
    target: Addr,
    wake: u64,
    phase: u8,
}

impl Program for ToggleAccessor {
    fn next_op(&mut self) -> Op {
        match self.phase {
            0 => {
                self.phase = 1;
                Op::Instr {
                    pc: 0x77A0_0000,
                    data: (self.wake % 2 == 1).then_some((DataKind::Load, self.target)),
                }
            }
            _ => {
                self.phase = 0;
                self.wake += 1;
                Op::Yield { pc: 0x77A0_0000 }
            }
        }
    }

    fn name(&self) -> &str {
        "toggle-accessor"
    }
}

/// Result of one flush+flush run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushFlushResult {
    /// Fraction of victim-active windows whose timed flush ran slow
    /// (line was present).
    pub active_slow: f64,
    /// Fraction of idle windows whose timed flush ran slow.
    pub idle_slow: f64,
    /// Rounds observed.
    pub rounds: usize,
}

impl FlushFlushResult {
    /// The channel leaks if flush timing distinguishes active from idle
    /// windows.
    pub fn leaks(&self) -> bool {
        (self.active_slow - self.idle_slow).abs() > 0.5
    }
}

/// Runs flush+flush with a victim touching the shared line on odd wakes.
pub fn run_flush_flush(security: SecurityMode) -> FlushFlushResult {
    let mut sys = single_core_system(security);
    let lat = sys.config().hierarchy.latencies;
    let target = layout::SHARED_SEGMENT + 0x2_0000;

    let rounds = 40;
    let (attacker, log) = FlushFlushAttacker::new(target, rounds);
    sys.spawn(Box::new(attacker), 0, 0, None);
    sys.spawn(
        Box::new(ToggleAccessor {
            target,
            wake: 0,
            phase: 0,
        }),
        0,
        0,
        Some(rounds as u64 * 16),
    );
    sys.run(200_000_000);

    let lats = log.borrow();
    let slow_cut = (lat.flush_absent + lat.flush_present) / 2;
    let (mut af, mut at, mut xf, mut xt) = (0u32, 0u32, 0u32, 0u32);
    for (round, &l) in lats.iter().enumerate() {
        let slow = l > slow_cut;
        if round % 2 == 1 {
            at += 1;
            af += slow as u32;
        } else {
            xt += 1;
            xf += slow as u32;
        }
    }
    FlushFlushResult {
        active_slow: af as f64 / at.max(1) as f64,
        idle_slow: xf as f64 / xt.max(1) as f64,
        rounds: lats.len(),
    }
}

/// Outcome rows: baseline, plain TimeCache (still leaks), and TimeCache
/// with the constant-time `clflush` mitigation.
pub fn demo() -> Vec<AttackOutcome> {
    let baseline = run_flush_flush(SecurityMode::Baseline);
    let timecache = run_flush_flush(crate::harness::timecache_mode());
    let mitigated = run_flush_flush(SecurityMode::TimeCache(
        TimeCacheConfig::default().with_constant_time_clflush(true),
    ));
    let fmt = |r: &FlushFlushResult| {
        format!(
            "slow flush in active windows {:.0}%, idle {:.0}%",
            r.active_slow * 100.0,
            r.idle_slow * 100.0
        )
    };
    vec![
        AttackOutcome::new("flush+flush", "baseline", baseline.leaks(), fmt(&baseline)),
        AttackOutcome::new(
            "flush+flush",
            "timecache (out of scope)",
            timecache.leaks(),
            fmt(&timecache),
        ),
        AttackOutcome::new(
            "flush+flush",
            "timecache + constant-time clflush",
            mitigated.leaks(),
            fmt(&mitigated),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaks_in_baseline() {
        let r = run_flush_flush(SecurityMode::Baseline);
        assert!(r.leaks(), "{r:?}");
    }

    #[test]
    fn leaks_under_plain_timecache() {
        // s-bits do not change clflush timing; the paper prescribes the
        // constant-time clflush separately.
        let r = run_flush_flush(crate::harness::timecache_mode());
        assert!(r.leaks(), "{r:?}");
    }

    #[test]
    fn constant_time_clflush_closes_it() {
        let r = run_flush_flush(SecurityMode::TimeCache(
            TimeCacheConfig::default().with_constant_time_clflush(true),
        ));
        assert!(!r.leaks(), "{r:?}");
        // Every flush runs at the constant (present) latency.
        assert_eq!(r.active_slow, 1.0);
        assert_eq!(r.idle_slow, 1.0);
    }
}
