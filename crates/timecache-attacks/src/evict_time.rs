//! The flush-based Evict+Time variant (Section VII-D of the paper).
//!
//! Instead of timing its *own* accesses, the attacker flushes a shared line
//! and times the *victim's* execution: if the victim uses the line, its run
//! slows down by a miss penalty. The paper classifies this as a noisy,
//! less practical channel; TimeCache does not claim to close it (the
//! victim's own misses are real misses either way). This module quantifies
//! the channel under both modes so the experiment harness can report its
//! status honestly.

use crate::harness::{timecache_mode, AttackOutcome};
use timecache_os::programs::StridedLoop;
use timecache_os::{Op, Program, System, SystemConfig};
use timecache_sim::{Addr, HierarchyConfig, SecurityMode};
use timecache_workloads::layout;

/// A flusher that repeatedly flushes one shared line and yields.
#[derive(Debug)]
struct Flusher {
    target: Addr,
    phase: u8,
}

impl Program for Flusher {
    fn next_op(&mut self) -> Op {
        if self.phase == 0 {
            self.phase = 1;
            Op::Flush {
                pc: 0x66C0_0000,
                target: self.target,
            }
        } else {
            self.phase = 0;
            Op::Yield { pc: 0x66C0_0000 }
        }
    }

    fn name(&self) -> &str {
        "flusher"
    }
}

/// An idler that only yields (the control arm: same scheduling pattern, no
/// flushing).
#[derive(Debug)]
struct Idler;

impl Program for Idler {
    fn next_op(&mut self) -> Op {
        Op::Yield { pc: 0x66D0_0000 }
    }

    fn name(&self) -> &str {
        "idler"
    }
}

/// Victim cycle counts with and without the attacker flushing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictTimeResult {
    /// Victim CPU cycles with the flusher active.
    pub victim_cycles_flushed: u64,
    /// Victim CPU cycles with an idle co-runner.
    pub victim_cycles_control: u64,
}

impl EvictTimeResult {
    /// Relative victim slowdown caused by the flushes.
    pub fn slowdown(&self) -> f64 {
        self.victim_cycles_flushed as f64 / self.victim_cycles_control.max(1) as f64
    }

    /// The channel carries signal if flushing measurably slows the victim.
    pub fn leaks(&self) -> bool {
        self.slowdown() > 1.02
    }
}

fn victim_cycles(security: SecurityMode, flusher: bool, target: Addr) -> u64 {
    // A fine-grained quantum so the flusher interleaves with the victim
    // many times (a coarse quantum would let the victim finish within one
    // slice and see at most one flush).
    let mut hierarchy = HierarchyConfig::with_cores(1);
    hierarchy.security = security;
    let cfg = SystemConfig {
        hierarchy,
        quantum_cycles: 2_000,
        ..SystemConfig::default()
    };
    let mut sys = System::new(cfg).expect("valid config");
    if flusher {
        sys.spawn(Box::new(Flusher { target, phase: 0 }), 0, 0, Some(100_000));
    } else {
        sys.spawn(Box::new(Idler), 0, 0, Some(100_000));
    }
    // The victim hammers the shared line (hot loop over one line).
    let victim = sys.spawn(
        Box::new(StridedLoop::new(target, layout::LINE, 8)),
        0,
        0,
        Some(20_000),
    );
    let report = sys.run(200_000_000);
    report.process(victim).expect("victim spawned").cpu_cycles
}

/// Runs both arms and reports the slowdown.
pub fn run_evict_time(security: SecurityMode) -> EvictTimeResult {
    let target = layout::SHARED_SEGMENT + 0x3_0000;
    EvictTimeResult {
        victim_cycles_flushed: victim_cycles(security, true, target),
        victim_cycles_control: victim_cycles(security, false, target),
    }
}

/// Outcome rows for both modes.
pub fn demo() -> Vec<AttackOutcome> {
    let baseline = run_evict_time(SecurityMode::Baseline);
    let defended = run_evict_time(timecache_mode());
    let fmt = |r: &EvictTimeResult| format!("victim slowdown {:.2}x", r.slowdown());
    vec![
        AttackOutcome::new("evict+time", "baseline", baseline.leaks(), fmt(&baseline)),
        AttackOutcome::new(
            "evict+time",
            "timecache (residual, noisy)",
            defended.leaks(),
            fmt(&defended),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushing_slows_the_victim_in_baseline() {
        let r = run_evict_time(SecurityMode::Baseline);
        assert!(r.leaks(), "{r:?}");
    }

    #[test]
    fn residual_channel_remains_under_timecache() {
        // The paper does not claim Evict+Time is closed; the victim's own
        // misses are real. Verify we report that honestly.
        let r = run_evict_time(timecache_mode());
        assert!(r.leaks(), "{r:?}");
    }
}
