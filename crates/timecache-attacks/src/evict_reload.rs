//! Evict+reload: the reuse attack without `clflush`.
//!
//! Some environments deny attackers a flush instruction (e.g. JavaScript,
//! or ARM cores without user-mode cache maintenance). Evict+reload replaces
//! the flush with an *eviction set*: the attacker walks enough conflicting
//! lines to push the shared target out of the cache, waits, and reloads.
//! The paper's abstract names this variant explicitly ("evict+reload for
//! recovering an RSA key"); TimeCache stops it the same way it stops
//! flush+reload — the reload after the victim's access is a first access
//! and never fast.
//!
//! Because eviction needs set knowledge, this variant is *also* hampered by
//! a randomized (keyed) index — but only probabilistically; TimeCache
//! closes it deterministically, which is the comparison this module makes.

use crate::analysis::Threshold;
use crate::harness::{timecache_mode, AttackOutcome};
use std::cell::RefCell;
use std::rc::Rc;
use timecache_os::{DataKind, Observation, Op, Program, System, SystemConfig};
use timecache_sim::{Addr, HierarchyConfig, SecurityMode};
use timecache_workloads::layout;

/// Probe outcomes per round: was the reload of the shared target fast?
pub type ReloadLog = Rc<RefCell<Vec<bool>>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Walk eviction-set line `i` (evicts the target from L1 and LLC).
    Evict(usize),
    Sleep,
    Reload,
    Finished,
}

/// The evict+reload attacker.
pub struct EvictReloadAttacker {
    target: Addr,
    eviction_set: Vec<Addr>,
    threshold: Threshold,
    rounds: u32,
    round: u32,
    phase: Phase,
    log: ReloadLog,
    pc: Addr,
}

impl EvictReloadAttacker {
    /// Creates the attacker.
    ///
    /// # Panics
    ///
    /// Panics if `eviction_set` is empty or `rounds` is zero.
    pub fn new(
        target: Addr,
        eviction_set: Vec<Addr>,
        threshold: Threshold,
        rounds: u32,
    ) -> (Self, ReloadLog) {
        assert!(!eviction_set.is_empty(), "need an eviction set");
        assert!(rounds > 0, "need at least one round");
        let log: ReloadLog = Rc::new(RefCell::new(Vec::new()));
        (
            EvictReloadAttacker {
                target,
                eviction_set,
                threshold,
                rounds,
                round: 0,
                phase: Phase::Evict(0),
                log: Rc::clone(&log),
                pc: 0x66E0_0000,
            },
            log,
        )
    }

    fn next_pc(&mut self) -> Addr {
        self.pc = (self.pc & !0xFF) | ((self.pc + 64) & 0xFF);
        self.pc
    }
}

impl Program for EvictReloadAttacker {
    fn next_op(&mut self) -> Op {
        match self.phase {
            Phase::Evict(i) => {
                let pc = self.next_pc();
                let addr = self.eviction_set[i];
                self.phase = if i + 1 < self.eviction_set.len() {
                    Phase::Evict(i + 1)
                } else {
                    Phase::Sleep
                };
                Op::Instr {
                    pc,
                    data: Some((DataKind::Load, addr)),
                }
            }
            Phase::Sleep => {
                self.phase = Phase::Reload;
                Op::Yield { pc: self.next_pc() }
            }
            Phase::Reload => Op::Instr {
                pc: self.next_pc(),
                data: Some((DataKind::Load, self.target)),
            },
            Phase::Finished => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        if self.phase == Phase::Reload {
            if let Some(latency) = obs.data_latency {
                self.log.borrow_mut().push(self.threshold.is_hit(latency));
                self.round += 1;
                self.phase = if self.round >= self.rounds {
                    Phase::Finished
                } else {
                    Phase::Evict(0)
                };
            }
        }
    }

    fn name(&self) -> &str {
        "evict-reload"
    }
}

impl std::fmt::Debug for EvictReloadAttacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvictReloadAttacker")
            .field("round", &self.round)
            .field("set", &self.eviction_set.len())
            .finish()
    }
}

/// Victim touching the shared target on odd wakes (same-core alternation).
#[derive(Debug)]
struct ToggleVictim {
    target: Addr,
    wake: u64,
    phase: u8,
}

impl Program for ToggleVictim {
    fn next_op(&mut self) -> Op {
        match self.phase {
            0 => {
                self.phase = 1;
                Op::Instr {
                    pc: 0x77B0_0000,
                    data: (self.wake % 2 == 1).then_some((DataKind::Load, self.target)),
                }
            }
            _ => {
                self.phase = 0;
                self.wake += 1;
                Op::Yield { pc: 0x77B0_0000 }
            }
        }
    }

    fn name(&self) -> &str {
        "toggle-victim"
    }
}

/// Detection quality of one evict+reload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictReloadResult {
    /// Fraction of victim-active windows with a fast reload.
    pub active_fast: f64,
    /// Fraction of idle windows with a fast reload.
    pub idle_fast: f64,
    /// Rounds observed.
    pub rounds: usize,
}

impl EvictReloadResult {
    /// The channel leaks if active and idle windows are distinguishable.
    pub fn leaks(&self) -> bool {
        (self.active_fast - self.idle_fast).abs() > 0.5
    }
}

/// Runs evict+reload against a shared line on one core.
///
/// The eviction set covers both the L1D set and the LLC set of the target
/// under modulo indexing (LLC-period strides alias into the same L1 set
/// too, so one stride evicts at every level).
pub fn run_evict_reload(security: SecurityMode) -> EvictReloadResult {
    let mut hierarchy = HierarchyConfig::with_cores(1);
    hierarchy.security = security;
    let cfg = SystemConfig {
        hierarchy,
        quantum_cycles: 200_000,
        ..SystemConfig::default()
    };
    let mut sys = System::new(cfg).expect("valid config");

    let lat = sys.config().hierarchy.latencies;
    let llc = sys.config().hierarchy.llc.geometry;
    let llc_stride = llc.num_sets() * llc.line_size();
    // Offset the monitored set away from set 0 (where demo code lands).
    let set_off = 37 * llc.line_size();
    let target = layout::SHARED_SEGMENT + set_off;
    // LLC is 16-way: walk 2x ways distinct conflicting lines to be sure.
    let eviction_set: Vec<Addr> = (1..=2 * llc.ways() as u64)
        .map(|i| layout::private_base(50) + set_off + i * llc_stride)
        .collect();

    let rounds = 40;
    let (attacker, log) =
        EvictReloadAttacker::new(target, eviction_set, Threshold::cross_core(&lat), rounds);
    sys.spawn(Box::new(attacker), 0, 0, None);
    sys.spawn(
        Box::new(ToggleVictim {
            target,
            wake: 0,
            phase: 0,
        }),
        0,
        0,
        Some(rounds as u64 * 16),
    );
    sys.run(400_000_000);

    let hits = log.borrow();
    let (mut af, mut at, mut xf, mut xt) = (0u32, 0u32, 0u32, 0u32);
    for (round, &fast) in hits.iter().enumerate() {
        if round % 2 == 1 {
            at += 1;
            af += fast as u32;
        } else {
            xt += 1;
            xf += fast as u32;
        }
    }
    EvictReloadResult {
        active_fast: af as f64 / at.max(1) as f64,
        idle_fast: xf as f64 / xt.max(1) as f64,
        rounds: hits.len(),
    }
}

/// Outcome rows for both modes.
pub fn demo() -> Vec<AttackOutcome> {
    let baseline = run_evict_reload(SecurityMode::Baseline);
    let defended = run_evict_reload(timecache_mode());
    let fmt = |r: &EvictReloadResult| {
        format!(
            "fast reload in active windows {:.0}%, idle {:.0}%",
            r.active_fast * 100.0,
            r.idle_fast * 100.0
        )
    };
    vec![
        AttackOutcome::new("evict+reload", "baseline", baseline.leaks(), fmt(&baseline)),
        AttackOutcome::new(
            "evict+reload",
            "timecache",
            defended.leaks(),
            fmt(&defended),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaks_in_baseline() {
        let r = run_evict_reload(SecurityMode::Baseline);
        assert!(r.leaks(), "{r:?}");
        assert!(r.active_fast > 0.9, "{r:?}");
    }

    #[test]
    fn defeated_by_timecache() {
        let r = run_evict_reload(timecache_mode());
        assert!(!r.leaks(), "{r:?}");
        // The reload is never fast: first access after eviction.
        assert_eq!(r.active_fast, 0.0, "{r:?}");
        assert_eq!(r.idle_fast, 0.0, "{r:?}");
    }
}
