//! Flush+reload key extraction against the square-and-multiply RSA victim
//! (Section VI-A.2 of the paper).
//!
//! The attacker probes the entry lines of the shared crypto library's
//! Square, Multiply, and Reduce routines once per victim window (one
//! exponent bit): *flush → yield → reload*. In the baseline the reload
//! latencies transcribe the bit sequence — a window with a fast Multiply
//! reload is a `1`, a window with only fast Square/Reduce reloads is a `0`.
//! With TimeCache, the attacker's reload after a flush is always a *first
//! access* and never fast, so every window decodes to nothing.

use crate::analysis::{exponent_tail_bits, KeyRecovery, RsaRound, Threshold};
use crate::harness::{single_core_system, AttackOutcome};
use std::cell::RefCell;
use std::rc::Rc;
use timecache_os::{DataKind, Observation, Op, Program};
use timecache_sim::{Addr, SecurityMode};
use timecache_workloads::rsa::{rsa_code_layout, Mpi, PrimitiveOp, RsaVictim};

/// Shared log of per-window probe rounds.
pub type RoundLog = Rc<RefCell<Vec<RsaRound>>>;

/// Phase of the prober's flush→yield→probe loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Flush(usize),
    Sleep,
    Probe(usize),
    Finished,
}

/// The RSA attacker: probes the three routine entry lines each round.
pub struct RsaProber {
    /// Entry line of Square, Multiply, Reduce (probe targets).
    probes: [Addr; 3],
    /// All code lines to flush (every line of each routine).
    flush_targets: Vec<Addr>,
    threshold: Threshold,
    rounds: u32,
    round: u32,
    phase: Phase,
    current: RsaRound,
    log: RoundLog,
    pc: Addr,
}

impl RsaProber {
    /// Creates a prober for `rounds` victim windows using the canonical
    /// [`rsa_code_layout`].
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn new(threshold: Threshold, rounds: u32) -> (Self, RoundLog) {
        assert!(rounds > 0, "need at least one round");
        let layout = rsa_code_layout();
        let probes = [
            layout.probe_addr(PrimitiveOp::Square),
            layout.probe_addr(PrimitiveOp::Multiply),
            layout.probe_addr(PrimitiveOp::Reduce),
        ];
        let flush_targets = [
            PrimitiveOp::Square,
            PrimitiveOp::Multiply,
            PrimitiveOp::Reduce,
        ]
        .into_iter()
        .flat_map(|op| {
            let base = layout.base_of(op);
            (0..layout.lines_per_fn).map(move |i| base + i * 64)
        })
        .collect();
        let log: RoundLog = Rc::new(RefCell::new(Vec::new()));
        (
            RsaProber {
                probes,
                flush_targets,
                threshold,
                rounds,
                round: 0,
                phase: Phase::Flush(0),
                current: RsaRound::default(),
                log: Rc::clone(&log),
                pc: 0x6670_0000,
            },
            log,
        )
    }

    fn next_pc(&mut self) -> Addr {
        self.pc = (self.pc & !0xFF) | ((self.pc + 64) & 0xFF);
        self.pc
    }
}

impl Program for RsaProber {
    fn next_op(&mut self) -> Op {
        match self.phase {
            Phase::Flush(i) => {
                let pc = self.next_pc();
                let target = self.flush_targets[i];
                self.phase = if i + 1 < self.flush_targets.len() {
                    Phase::Flush(i + 1)
                } else {
                    Phase::Sleep
                };
                Op::Flush { pc, target }
            }
            Phase::Sleep => {
                self.phase = Phase::Probe(0);
                self.current = RsaRound::default();
                Op::Yield { pc: self.next_pc() }
            }
            Phase::Probe(i) => Op::Instr {
                pc: self.next_pc(),
                data: Some((DataKind::Load, self.probes[i])),
            },
            Phase::Finished => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        if let Phase::Probe(i) = self.phase {
            if let Some(latency) = obs.data_latency {
                let hit = self.threshold.is_hit(latency);
                match i {
                    0 => self.current.square = hit,
                    1 => self.current.multiply = hit,
                    _ => self.current.reduce = hit,
                }
                self.phase = if i + 1 < self.probes.len() {
                    Phase::Probe(i + 1)
                } else {
                    self.log.borrow_mut().push(self.current);
                    self.round += 1;
                    if self.round >= self.rounds {
                        Phase::Finished
                    } else {
                        Phase::Flush(0)
                    }
                };
            }
        }
    }

    fn name(&self) -> &str {
        "rsa-prober"
    }
}

impl std::fmt::Debug for RsaProber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RsaProber")
            .field("round", &self.round)
            .field("rounds", &self.rounds)
            .finish()
    }
}

/// Result of one end-to-end key-extraction attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct RsaAttackResult {
    /// Fraction of the post-MSB key bits recovered correctly.
    pub accuracy: f64,
    /// Windows that carried any cache signal.
    pub decoded_windows: usize,
    /// Total windows probed.
    pub total_windows: usize,
    /// The recovered bit string (None = no signal).
    pub recovery: KeyRecovery,
}

/// Runs the full attack: an [`RsaVictim`] computing `base^key mod modulus`
/// time-sliced against an [`RsaProber`] on one core.
///
/// # Panics
///
/// Panics if the key has fewer than 2 bits (square-and-multiply leaks
/// nothing for shorter exponents).
pub fn run_rsa_attack(security: SecurityMode, key: &Mpi) -> RsaAttackResult {
    assert!(key.bit_len() >= 2, "key must have at least 2 bits");
    let mut sys = single_core_system(security);
    let lat = sys.config().hierarchy.latencies;

    // The victim yields after every exponent bit; the attacker gets exactly
    // one probe window per bit.
    let windows = (key.bit_len() - 1) as u32;
    let victim = RsaVictim::new(
        Mpi::from_u64(0x1234_5678_9ABC_DEF1),
        key.clone(),
        Mpi::from_hex("f123456789abcdef0123456789abcdef"),
        1,
        true,
    );
    // The victim *fetches* the routines (they land in its L1I and the
    // LLC); the attacker reloads them with data loads, so a successful
    // reuse shows up at LLC latency — calibrate the threshold to separate
    // any cache service from DRAM, as the original attack does.
    let (prober, log) = RsaProber::new(Threshold::cross_core(&lat), windows);

    sys.spawn(Box::new(prober), 0, 0, None);
    sys.spawn(Box::new(victim), 0, 0, None);
    sys.run(2_000_000_000);

    let rounds = log.borrow();
    let recovery = KeyRecovery::decode(&rounds);
    let true_bits: Vec<bool> = (0..key.bit_len()).rev().map(|i| key.bit(i)).collect();
    let tail = exponent_tail_bits(&true_bits);
    RsaAttackResult {
        accuracy: recovery.accuracy(&tail),
        decoded_windows: recovery.decoded_count(),
        total_windows: rounds.len(),
        recovery,
    }
}

/// Runs the attack under both modes and formats outcome rows.
pub fn demo(key: &Mpi) -> Vec<AttackOutcome> {
    let baseline = run_rsa_attack(SecurityMode::Baseline, key);
    let defended = run_rsa_attack(crate::harness::timecache_mode(), key);
    vec![
        AttackOutcome::new(
            "rsa flush+reload",
            "baseline",
            baseline.accuracy > 0.9,
            format!(
                "key bits recovered: {:.1}% ({} of {} windows decoded)",
                baseline.accuracy * 100.0,
                baseline.decoded_windows,
                baseline.total_windows
            ),
        ),
        AttackOutcome::new(
            "rsa flush+reload",
            "timecache",
            defended.decoded_windows > 0,
            format!(
                "key bits recovered: {:.1}% ({} of {} windows decoded)",
                defended.accuracy * 100.0,
                defended.decoded_windows,
                defended.total_windows
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key() -> Mpi {
        // 32-bit key keeps the test fast; irregular bit pattern.
        Mpi::from_u64(0xB5C3_9A6D)
    }

    #[test]
    fn baseline_recovers_the_key() {
        let r = run_rsa_attack(SecurityMode::Baseline, &test_key());
        assert_eq!(r.total_windows, 31);
        assert!(
            r.accuracy > 0.95,
            "accuracy {} with {} decoded windows",
            r.accuracy,
            r.decoded_windows
        );
    }

    #[test]
    fn timecache_blinds_the_attack() {
        let r = run_rsa_attack(crate::harness::timecache_mode(), &test_key());
        assert_eq!(
            r.decoded_windows, 0,
            "no window may carry signal under TimeCache"
        );
        assert_eq!(r.accuracy, 0.0);
    }

    #[test]
    fn demo_rows_report_both_modes() {
        let rows = demo(&Mpi::from_u64(0b1011_0110_1101));
        assert_eq!(rows.len(), 2);
        assert!(rows[0].leaked, "{}", rows[0].detail);
        assert!(!rows[1].leaked, "{}", rows[1].detail);
    }
}
