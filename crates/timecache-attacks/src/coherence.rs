//! The invalidate+transfer coherence attack (Section VII-B of the paper).
//!
//! Attacker and victim run on *different cores* and share a line. The
//! attacker flushes it (invalidating every cached copy), yields, and later
//! loads it with a timer: if the victim wrote the line meanwhile, the load
//! is serviced by a cache-to-cache transfer from the victim's private cache
//! (fast-ish `remote_l1` latency); if not, it comes from DRAM. TimeCache's
//! first-access rule already forces the DRAM wait when the attacker's s-bit
//! is clear, collapsing both cases to the same latency.
//!
//! Because the two cores free-run (there is no cross-core scheduling
//! alignment), the experiment contrasts two arms: an *active* arm with a
//! victim continuously writing the shared line, and a *control* arm whose
//! victim never touches it. A leaking channel shows clearly different
//! transfer rates between the arms.

use crate::analysis::Threshold;
use crate::harness::{dual_core_system, timecache_mode, AttackOutcome};
use std::cell::RefCell;
use std::rc::Rc;
use timecache_os::{DataKind, Observation, Op, Program};
use timecache_sim::{Addr, SecurityMode};
use timecache_workloads::layout;

/// Per-round: did the load come back faster than DRAM (transfer observed)?
pub type TransferLog = Rc<RefCell<Vec<bool>>>;

/// Idle instructions between the flush and the timed load: long enough for
/// the victim's next store (at most one DRAM round trip away) to land.
const WAIT_INSTRS: u32 = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Flush,
    Sleep,
    /// Idle instructions giving the free-running victim time to re-cache
    /// the line after the flush (`i` counts down).
    Wait(u32),
    TimedLoad,
    Finished,
}

/// The invalidate+transfer attacker (runs on its own core).
pub struct CoherenceAttacker {
    target: Addr,
    threshold: Threshold,
    rounds: u32,
    round: u32,
    phase: Phase,
    log: TransferLog,
    pc: Addr,
}

impl CoherenceAttacker {
    /// Creates the attacker for a shared `target` line.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn new(target: Addr, threshold: Threshold, rounds: u32) -> (Self, TransferLog) {
        assert!(rounds > 0, "need at least one round");
        let log: TransferLog = Rc::new(RefCell::new(Vec::new()));
        (
            CoherenceAttacker {
                target,
                threshold,
                rounds,
                round: 0,
                phase: Phase::Flush,
                log: Rc::clone(&log),
                pc: 0x66A0_0000,
            },
            log,
        )
    }
}

impl Program for CoherenceAttacker {
    fn next_op(&mut self) -> Op {
        match self.phase {
            Phase::Flush => {
                self.phase = Phase::Sleep;
                Op::Flush {
                    pc: self.pc,
                    target: self.target,
                }
            }
            Phase::Sleep => {
                self.phase = Phase::Wait(WAIT_INSTRS);
                Op::Yield { pc: self.pc }
            }
            Phase::Wait(i) => {
                self.phase = if i > 1 {
                    Phase::Wait(i - 1)
                } else {
                    Phase::TimedLoad
                };
                Op::Instr {
                    pc: self.pc,
                    data: None,
                }
            }
            Phase::TimedLoad => Op::Instr {
                pc: self.pc,
                data: Some((DataKind::Load, self.target)),
            },
            Phase::Finished => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        if self.phase == Phase::TimedLoad {
            if let Some(latency) = obs.data_latency {
                self.log.borrow_mut().push(self.threshold.is_hit(latency));
                self.round += 1;
                self.phase = if self.round >= self.rounds {
                    Phase::Finished
                } else {
                    Phase::Flush
                };
            }
        }
    }

    fn name(&self) -> &str {
        "invalidate-transfer"
    }
}

impl std::fmt::Debug for CoherenceAttacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoherenceAttacker")
            .field("round", &self.round)
            .finish()
    }
}

/// A victim that writes the shared line on every instruction (active arm)
/// or never touches it (control arm).
#[derive(Debug)]
struct CoherenceVictim {
    target: Addr,
    active: bool,
}

impl Program for CoherenceVictim {
    fn next_op(&mut self) -> Op {
        Op::Instr {
            pc: 0x7790_0000,
            data: self.active.then_some((DataKind::Store, self.target)),
        }
    }

    fn name(&self) -> &str {
        "coherence-victim"
    }
}

/// Detection quality of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceResult {
    /// Fraction of rounds showing a transfer with an active victim.
    pub active_transfer: f64,
    /// Fraction of rounds showing a transfer with an idle victim.
    pub idle_transfer: f64,
    /// Rounds per arm.
    pub rounds: usize,
}

impl CoherenceResult {
    /// The channel leaks if the arms are distinguishable.
    pub fn leaks(&self) -> bool {
        (self.active_transfer - self.idle_transfer).abs() > 0.5
    }
}

fn transfer_rate(security: SecurityMode, active: bool, rounds: u32) -> f64 {
    let mut sys = dual_core_system(security);
    let lat = sys.config().hierarchy.latencies;
    let target = layout::SHARED_SEGMENT + 0x1_0000;
    // "Transfer observed" = faster than DRAM.
    let threshold = Threshold::from_cycles((lat.remote_l1 + lat.dram) / 2);
    let (attacker, log) = CoherenceAttacker::new(target, threshold, rounds);
    sys.spawn(
        Box::new(CoherenceVictim { target, active }),
        0,
        0,
        Some(rounds as u64 * 2_000),
    );
    sys.spawn(Box::new(attacker), 1, 0, None);
    sys.run(200_000_000);
    let transfers = log.borrow();
    transfers.iter().filter(|&&t| t).count() as f64 / transfers.len().max(1) as f64
}

/// Runs invalidate+transfer: attacker on core 1, victim on core 0, active
/// and control arms.
pub fn run_coherence_attack(security: SecurityMode) -> CoherenceResult {
    let rounds = 40;
    CoherenceResult {
        active_transfer: transfer_rate(security, true, rounds),
        idle_transfer: transfer_rate(security, false, rounds),
        rounds: rounds as usize,
    }
}

/// Outcome rows for both modes.
pub fn demo() -> Vec<AttackOutcome> {
    let baseline = run_coherence_attack(SecurityMode::Baseline);
    let defended = run_coherence_attack(timecache_mode());
    let fmt = |r: &CoherenceResult| {
        format!(
            "transfer latency with active victim {:.0}%, idle {:.0}%",
            r.active_transfer * 100.0,
            r.idle_transfer * 100.0
        )
    };
    vec![
        AttackOutcome::new(
            "invalidate+transfer",
            "baseline",
            baseline.leaks(),
            fmt(&baseline),
        ),
        AttackOutcome::new(
            "invalidate+transfer",
            "timecache",
            defended.leaks(),
            fmt(&defended),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaks_in_baseline() {
        let r = run_coherence_attack(SecurityMode::Baseline);
        assert!(r.leaks(), "{r:?}");
    }

    #[test]
    fn defeated_by_timecache_dram_wait() {
        let r = run_coherence_attack(timecache_mode());
        assert!(!r.leaks(), "{r:?}");
    }
}
