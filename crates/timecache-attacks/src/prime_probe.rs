//! Prime+probe: the contention attack that is *out of scope* for TimeCache
//! (Section II / IX) — demonstrated here to delimit the defense, and shown
//! defeated by the CEASER-like keyed index, with which TimeCache composes.
//!
//! The attacker fills (primes) every way of one LLC set with its own lines,
//! yields, and later reloads (probes) them: a slow probe means the victim
//! displaced one — revealing the victim accessed *some* line mapping to
//! that set. No shared memory is required.

use crate::analysis::Threshold;
use crate::harness::AttackOutcome;
use std::cell::RefCell;
use std::rc::Rc;
use timecache_os::{DataKind, Observation, Op, Program};
use timecache_os::{System, SystemConfig};
use timecache_sim::{Addr, HierarchyConfig, IndexFn, SecurityMode};
use timecache_workloads::layout;

/// Per-round result: did any probe miss (victim activity detected)?
pub type DetectLog = Rc<RefCell<Vec<bool>>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prime(usize),
    Sleep,
    Probe(usize),
    Finished,
}

/// The prime+probe attacker for one cache set.
pub struct PrimeProbeAttacker {
    lines: Vec<Addr>,
    threshold: Threshold,
    rounds: u32,
    round: u32,
    phase: Phase,
    miss_seen: bool,
    log: DetectLog,
    pc: Addr,
}

impl PrimeProbeAttacker {
    /// Creates an attacker priming the given eviction-set `lines`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty or `rounds` is zero.
    pub fn new(lines: Vec<Addr>, threshold: Threshold, rounds: u32) -> (Self, DetectLog) {
        assert!(!lines.is_empty(), "need an eviction set");
        assert!(rounds > 0, "need at least one round");
        let log: DetectLog = Rc::new(RefCell::new(Vec::new()));
        (
            PrimeProbeAttacker {
                lines,
                threshold,
                rounds,
                round: 0,
                phase: Phase::Prime(0),
                miss_seen: false,
                log: Rc::clone(&log),
                pc: 0x6680_0000,
            },
            log,
        )
    }

    fn next_pc(&mut self) -> Addr {
        self.pc = (self.pc & !0xFF) | ((self.pc + 64) & 0xFF);
        self.pc
    }
}

impl Program for PrimeProbeAttacker {
    fn next_op(&mut self) -> Op {
        match self.phase {
            Phase::Prime(i) => {
                let pc = self.next_pc();
                let addr = self.lines[i];
                self.phase = if i + 1 < self.lines.len() {
                    Phase::Prime(i + 1)
                } else {
                    Phase::Sleep
                };
                Op::Instr {
                    pc,
                    data: Some((DataKind::Load, addr)),
                }
            }
            Phase::Sleep => {
                self.phase = Phase::Probe(0);
                self.miss_seen = false;
                Op::Yield { pc: self.next_pc() }
            }
            Phase::Probe(i) => Op::Instr {
                pc: self.next_pc(),
                data: Some((DataKind::Load, self.lines[i])),
            },
            Phase::Finished => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        match self.phase {
            Phase::Probe(i) => {
                if let Some(latency) = obs.data_latency {
                    if !self.threshold.is_hit(latency) {
                        self.miss_seen = true;
                    }
                    self.phase = if i + 1 < self.lines.len() {
                        Phase::Probe(i + 1)
                    } else {
                        self.log.borrow_mut().push(self.miss_seen);
                        self.round += 1;
                        if self.round >= self.rounds {
                            Phase::Finished
                        } else {
                            // Probing re-primed the set: sleep directly.
                            Phase::Sleep
                        }
                    };
                }
            }
            Phase::Prime(_) => {}
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "prime-probe"
    }
}

impl std::fmt::Debug for PrimeProbeAttacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrimeProbeAttacker")
            .field("set_lines", &self.lines.len())
            .field("round", &self.round)
            .finish()
    }
}

/// A victim that touches its own private line mapping into the monitored
/// set on every *odd* wake — giving the attacker a known on/off pattern to
/// detect.
#[derive(Debug)]
struct ToggleVictim {
    addr: Addr,
    wake: u64,
    phase: u8,
    pc: Addr,
}

impl Program for ToggleVictim {
    fn next_op(&mut self) -> Op {
        match self.phase {
            0 => {
                self.phase = 1;
                if self.wake % 2 == 1 {
                    Op::Instr {
                        pc: self.pc,
                        data: Some((DataKind::Load, self.addr)),
                    }
                } else {
                    Op::Instr {
                        pc: self.pc,
                        data: None,
                    }
                }
            }
            _ => {
                self.phase = 0;
                self.wake += 1;
                Op::Yield { pc: self.pc }
            }
        }
    }

    fn name(&self) -> &str {
        "toggle-victim"
    }
}

/// Result of a prime+probe run: detection rates in active vs idle windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimeProbeResult {
    /// Fraction of victim-active windows detected.
    pub active_detect: f64,
    /// Fraction of victim-idle windows (falsely) detected.
    pub idle_detect: f64,
    /// Rounds observed.
    pub rounds: usize,
}

impl PrimeProbeResult {
    /// The channel leaks if active windows are distinguishable from idle
    /// ones.
    pub fn leaks(&self) -> bool {
        self.active_detect - self.idle_detect > 0.5
    }
}

/// Runs prime+probe on a single-core system with the given security mode
/// and LLC index function.
pub fn run_prime_probe(security: SecurityMode, llc_index: IndexFn) -> PrimeProbeResult {
    let mut hierarchy = HierarchyConfig::with_cores(1);
    hierarchy.security = security;
    hierarchy.llc.index = llc_index;
    let cfg = SystemConfig {
        hierarchy,
        quantum_cycles: 200_000,
        ..SystemConfig::default()
    };
    let mut sys = System::new(cfg).expect("valid config");

    let lat = sys.config().hierarchy.latencies;
    let geom = sys.config().hierarchy.llc.geometry;
    // An eviction set under *modulo* indexing: lines with identical LLC set
    // bits. Under the keyed index these same addresses scatter, which is
    // exactly the defense. The monitored set is offset away from set 0,
    // where the attack programs' own code lines land.
    let set_stride = geom.num_sets() * geom.line_size();
    let monitored_set = 123 * geom.line_size();
    let attacker_lines: Vec<Addr> = (0..geom.ways() as u64)
        .map(|i| layout::private_base(30) + monitored_set + i * set_stride)
        .collect();
    // The victim's line maps to the same modulo set but is private memory:
    // no sharing needed for a contention attack.
    let victim_line = layout::private_base(31) + monitored_set + 64 * set_stride;

    let rounds = 40;
    let (attacker, log) =
        PrimeProbeAttacker::new(attacker_lines, Threshold::cross_core(&lat), rounds);
    sys.spawn(Box::new(attacker), 0, 0, None);
    // Budget covers every attack round; the victim then winds down so the
    // run terminates.
    sys.spawn(
        Box::new(ToggleVictim {
            addr: victim_line,
            wake: 0,
            phase: 0,
            pc: 0x7770_0000,
        }),
        0,
        0,
        Some(rounds as u64 * 16),
    );
    sys.run(200_000_000);

    let detections = log.borrow();
    let (mut active_hits, mut active_total, mut idle_hits, mut idle_total) = (0, 0, 0, 0);
    for (round, &detected) in detections.iter().enumerate() {
        // ToggleVictim touches the set on odd wakes; attacker round k spans
        // the victim's wake k.
        if round % 2 == 1 {
            active_total += 1;
            active_hits += detected as u32;
        } else {
            idle_total += 1;
            idle_hits += detected as u32;
        }
    }
    PrimeProbeResult {
        active_detect: active_hits as f64 / active_total.max(1) as f64,
        idle_detect: idle_hits as f64 / idle_total.max(1) as f64,
        rounds: detections.len(),
    }
}

/// Outcome rows for the three interesting configurations.
pub fn demo() -> Vec<AttackOutcome> {
    let baseline = run_prime_probe(SecurityMode::Baseline, IndexFn::Modulo);
    let timecache = run_prime_probe(crate::harness::timecache_mode(), IndexFn::Modulo);
    let keyed = run_prime_probe(
        crate::harness::timecache_mode(),
        IndexFn::Keyed { key: 0x5EED },
    );
    let fmt = |r: &PrimeProbeResult| {
        format!(
            "active windows detected {:.0}%, idle {:.0}%",
            r.active_detect * 100.0,
            r.idle_detect * 100.0
        )
    };
    vec![
        AttackOutcome::new("prime+probe", "baseline", baseline.leaks(), fmt(&baseline)),
        AttackOutcome::new(
            "prime+probe",
            "timecache (out of scope)",
            timecache.leaks(),
            fmt(&timecache),
        ),
        AttackOutcome::new(
            "prime+probe",
            "timecache + keyed index",
            keyed.leaks(),
            fmt(&keyed),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaks_in_baseline() {
        let r = run_prime_probe(SecurityMode::Baseline, IndexFn::Modulo);
        assert!(r.leaks(), "{r:?}");
    }

    #[test]
    fn still_leaks_under_timecache_alone() {
        // TimeCache targets reuse, not contention: the paper positions
        // randomizing caches as the complementary defense.
        let r = run_prime_probe(crate::harness::timecache_mode(), IndexFn::Modulo);
        assert!(r.leaks(), "{r:?}");
    }

    #[test]
    fn defeated_by_keyed_index() {
        let r = run_prime_probe(
            crate::harness::timecache_mode(),
            IndexFn::Keyed { key: 0x5EED },
        );
        assert!(!r.leaks(), "{r:?}");
    }
}
