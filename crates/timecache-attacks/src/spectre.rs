//! Spectre-V1 end to end (Section IX of the paper).
//!
//! Speculative-execution attacks leak *transiently* accessed data through a
//! conventional cache side channel: the canonical Spectre-V1 gadget
//!
//! ```c
//! if (idx < array_len)          // mispredicted branch
//!     tmp = probe[secret[idx] * 64];   // transient load, result squashed
//! ```
//!
//! leaves `probe[secret_byte * 64]` resident even though the architectural
//! result is discarded; a flush+reload receiver then reads the byte. The
//! paper's position (Section IX) is that TimeCache neutralizes the whole
//! class by breaking the exfiltration channel rather than the speculation.
//!
//! The victim here models the microarchitectural effect of the gadget
//! directly: when "called" with an out-of-bounds index it still performs
//! the secret-indexed probe-array load (the fetch real hardware would do
//! under misprediction) and architecturally discards it. The attacker
//! flushes the 256-line probe array, triggers the gadget, and reloads.

use crate::analysis::Threshold;
use crate::harness::{single_core_system, timecache_mode, AttackOutcome};
use std::cell::RefCell;
use std::rc::Rc;
use timecache_os::{DataKind, Observation, Op, Program};
use timecache_sim::{Addr, SecurityMode};
use timecache_workloads::layout;

/// Probe-array base: shared memory reachable by both processes (as in the
/// original PoC, where the probe buffer lives in a shared mapping).
fn probe_base() -> Addr {
    layout::SHARED_SEGMENT + 0x10_0000
}

/// The victim service: on each wake it handles one "request", running the
/// bounds-check-bypass gadget over the next secret byte.
#[derive(Debug)]
struct SpectreVictim {
    secret: Vec<u8>,
    next: usize,
    /// Micro-op position within the gadget (fetch secret, transient load,
    /// yield).
    step: u8,
}

impl Program for SpectreVictim {
    fn next_op(&mut self) -> Op {
        let pc = 0x77D0_0000;
        match self.step {
            // Architectural part: load secret[idx] from victim-private
            // memory (the speculative window has the byte in a register).
            0 => {
                self.step = 1;
                let addr = layout::private_base(60) + self.next as u64;
                Op::Instr {
                    pc,
                    data: Some((DataKind::Load, addr)),
                }
            }
            // Transient part: the secret-indexed probe-array touch. The
            // branch is resolved later and the value squashed, but the
            // line has been fetched — the cache effect this access models.
            1 => {
                self.step = 2;
                let byte = self.secret[self.next % self.secret.len()] as u64;
                Op::Instr {
                    pc,
                    data: Some((DataKind::Load, probe_base() + byte * layout::LINE)),
                }
            }
            // Request handled: wait for the next one.
            _ => {
                self.step = 0;
                self.next = (self.next + 1) % self.secret.len();
                Op::Yield { pc }
            }
        }
    }

    fn name(&self) -> &str {
        "spectre-victim"
    }
}

/// Per-byte recovery log: the probe-array slot that reloaded fastest, if
/// any slot read as cached.
pub type ByteLog = Rc<RefCell<Vec<Option<u8>>>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Flush(u16),
    Trigger,
    Probe(u16),
    Finished,
}

/// The Spectre receiver: flush probe array → trigger gadget → reload all
/// 256 slots → argmin.
pub struct SpectreReceiver {
    threshold: Threshold,
    bytes: u32,
    byte: u32,
    phase: Phase,
    best: Option<(u8, u64)>,
    log: ByteLog,
    pc: Addr,
}

impl SpectreReceiver {
    /// Creates a receiver extracting `bytes` secret bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(threshold: Threshold, bytes: u32) -> (Self, ByteLog) {
        assert!(bytes > 0, "need at least one byte");
        let log: ByteLog = Rc::new(RefCell::new(Vec::new()));
        (
            SpectreReceiver {
                threshold,
                bytes,
                byte: 0,
                phase: Phase::Flush(0),
                best: None,
                log: Rc::clone(&log),
                pc: 0x6700_0000,
            },
            log,
        )
    }
}

impl Program for SpectreReceiver {
    fn next_op(&mut self) -> Op {
        match self.phase {
            Phase::Flush(i) => {
                self.phase = if i + 1 < 256 {
                    Phase::Flush(i + 1)
                } else {
                    Phase::Trigger
                };
                Op::Flush {
                    pc: self.pc,
                    target: probe_base() + i as u64 * layout::LINE,
                }
            }
            Phase::Trigger => {
                // "Call" the victim service with the out-of-bounds index:
                // yield and let it run the gadget.
                self.phase = Phase::Probe(0);
                self.best = None;
                Op::Yield { pc: self.pc }
            }
            Phase::Probe(i) => Op::Instr {
                pc: self.pc,
                data: Some((DataKind::Load, probe_base() + i as u64 * layout::LINE)),
            },
            Phase::Finished => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        if let Phase::Probe(i) = self.phase {
            if let Some(latency) = obs.data_latency {
                if self.threshold.is_hit(latency)
                    && self.best.is_none_or(|(_, best)| latency < best)
                {
                    self.best = Some((i as u8, latency));
                }
                self.phase = if i + 1 < 256 {
                    Phase::Probe(i + 1)
                } else {
                    self.log.borrow_mut().push(self.best.map(|(b, _)| b));
                    self.byte += 1;
                    if self.byte >= self.bytes {
                        Phase::Finished
                    } else {
                        Phase::Flush(0)
                    }
                };
            }
        }
    }

    fn name(&self) -> &str {
        "spectre-receiver"
    }
}

impl std::fmt::Debug for SpectreReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpectreReceiver")
            .field("byte", &self.byte)
            .finish()
    }
}

/// Result of a Spectre-V1 extraction attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectreResult {
    /// The secret the victim held.
    pub secret: Vec<u8>,
    /// What the receiver recovered (None = no cached slot seen).
    pub recovered: Vec<Option<u8>>,
}

impl SpectreResult {
    /// Fraction of secret bytes recovered exactly.
    pub fn accuracy(&self) -> f64 {
        let ok = self
            .secret
            .iter()
            .zip(&self.recovered)
            .filter(|(s, r)| Some(**s) == **r)
            .count();
        ok as f64 / self.secret.len().max(1) as f64
    }

    /// Whether the attack worked.
    pub fn leaks(&self) -> bool {
        self.accuracy() > 0.75
    }
}

/// Runs the full Spectre-V1 demonstration for the given secret.
///
/// # Panics
///
/// Panics if `secret` is empty.
pub fn run_spectre(security: SecurityMode, secret: &[u8]) -> SpectreResult {
    assert!(!secret.is_empty(), "need a secret to leak");
    let mut sys = single_core_system(security);
    let lat = sys.config().hierarchy.latencies;

    let (receiver, log) = SpectreReceiver::new(Threshold::cross_core(&lat), secret.len() as u32);
    sys.spawn(Box::new(receiver), 0, 0, None);
    sys.spawn(
        Box::new(SpectreVictim {
            secret: secret.to_vec(),
            next: 0,
            step: 0,
        }),
        0,
        0,
        Some(secret.len() as u64 * 16),
    );
    sys.run(400_000_000);

    let recovered = log.borrow().clone();
    SpectreResult {
        secret: secret.to_vec(),
        recovered,
    }
}

/// Outcome rows for both modes.
pub fn demo() -> Vec<AttackOutcome> {
    let secret = b"TimeCache!";
    let baseline = run_spectre(SecurityMode::Baseline, secret);
    let defended = run_spectre(timecache_mode(), secret);
    let fmt = |r: &SpectreResult| {
        let text: String = r
            .recovered
            .iter()
            .map(|b| match b {
                Some(c) if c.is_ascii_graphic() => *c as char,
                Some(_) => '.',
                None => '_',
            })
            .collect();
        format!(
            "recovered \"{text}\" ({:.0}% of bytes)",
            r.accuracy() * 100.0
        )
    };
    vec![
        AttackOutcome::new("spectre-v1", "baseline", baseline.leaks(), fmt(&baseline)),
        AttackOutcome::new("spectre-v1", "timecache", defended.leaks(), fmt(&defended)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaks_the_secret_in_baseline() {
        let r = run_spectre(SecurityMode::Baseline, b"secret42");
        assert!(r.leaks(), "{r:?}");
        assert!(r.accuracy() > 0.9, "{r:?}");
    }

    #[test]
    fn blinded_by_timecache() {
        let r = run_spectre(timecache_mode(), b"secret42");
        // Every probe is a first access: no slot ever reads as cached.
        assert!(r.recovered.iter().all(|b| b.is_none()), "{r:?}");
        assert_eq!(r.accuracy(), 0.0);
    }

    #[test]
    fn ftm_cannot_stop_same_core_spectre() {
        // The FTM baseline only helps across cores; a same-core Spectre
        // pipeline (attacker and victim time-sliced) still leaks.
        let r = run_spectre(SecurityMode::Ftm, b"secret42");
        assert!(r.leaks(), "{r:?}");
    }
}
