//! Covert-channel capacity through shared-line reuse.
//!
//! The paper motivates TimeCache partly through Spectre-class attacks,
//! which use flush+reload over shared lines as their *covert channel*: the
//! transiently-leaked secret is encoded into cache residency and decoded by
//! a receiver timing reloads. This module builds that channel explicitly —
//! a sender encodes a bit string by touching (1) or skipping (0) one shared
//! line per window; a receiver flush+reloads it — and measures the raw
//! channel error rate and bandwidth under both modes.
//!
//! Under TimeCache every reload is a first access, so the receiver decodes
//! all-zeroes regardless of the payload: channel capacity collapses to
//! nothing, which is exactly the mechanism by which TimeCache "also
//! prevents speculative side channel leaks" (Section IX).

use crate::analysis::{mutual_information_bits, Threshold};
use crate::harness::{single_core_system, timecache_mode, AttackOutcome};
use std::cell::RefCell;
use std::rc::Rc;
use timecache_os::{DataKind, Observation, Op, Program};
use timecache_sim::{Addr, SecurityMode};
use timecache_workloads::layout;
use timecache_workloads::rng::FastRng;

/// Received bits (one per window).
pub type BitLog = Rc<RefCell<Vec<bool>>>;

/// The sender: one window per payload bit — touch the line for a 1, idle
/// for a 0, then yield.
#[derive(Debug)]
struct Sender {
    line: Addr,
    payload: Vec<bool>,
    next: usize,
    phase: u8,
}

impl Program for Sender {
    fn next_op(&mut self) -> Op {
        match self.phase {
            0 => {
                self.phase = 1;
                let bit = self.payload.get(self.next).copied().unwrap_or(false);
                Op::Instr {
                    pc: 0x77C0_0000,
                    data: bit.then_some((DataKind::Load, self.line)),
                }
            }
            _ => {
                self.phase = 0;
                self.next += 1;
                if self.next > self.payload.len() + 4 {
                    Op::Done
                } else {
                    Op::Yield { pc: 0x77C0_0000 }
                }
            }
        }
    }

    fn name(&self) -> &str {
        "covert-sender"
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RxPhase {
    Flush,
    Sleep,
    Probe,
    Finished,
}

/// The receiver: flush → yield → timed reload, one window per bit.
struct Receiver {
    line: Addr,
    threshold: Threshold,
    windows: u32,
    window: u32,
    phase: RxPhase,
    log: BitLog,
    /// Cycle of the first and last decoded window (for bandwidth).
    first_cycle: Option<u64>,
    last_cycle: u64,
}

impl Receiver {
    fn new(line: Addr, threshold: Threshold, windows: u32) -> (Self, BitLog) {
        let log: BitLog = Rc::new(RefCell::new(Vec::new()));
        (
            Receiver {
                line,
                threshold,
                windows,
                window: 0,
                phase: RxPhase::Flush,
                log: Rc::clone(&log),
                first_cycle: None,
                last_cycle: 0,
            },
            log,
        )
    }
}

impl Program for Receiver {
    fn next_op(&mut self) -> Op {
        match self.phase {
            RxPhase::Flush => {
                self.phase = RxPhase::Sleep;
                Op::Flush {
                    pc: 0x66F0_0000,
                    target: self.line,
                }
            }
            RxPhase::Sleep => {
                self.phase = RxPhase::Probe;
                Op::Yield { pc: 0x66F0_0000 }
            }
            RxPhase::Probe => Op::Instr {
                pc: 0x66F0_0000,
                data: Some((DataKind::Load, self.line)),
            },
            RxPhase::Finished => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        if self.phase == RxPhase::Probe {
            if let Some(latency) = obs.data_latency {
                self.log.borrow_mut().push(self.threshold.is_hit(latency));
                self.first_cycle.get_or_insert(obs.now);
                self.last_cycle = obs.now;
                self.window += 1;
                self.phase = if self.window >= self.windows {
                    RxPhase::Finished
                } else {
                    RxPhase::Flush
                };
            }
        }
    }

    fn name(&self) -> &str {
        "covert-receiver"
    }
}

impl std::fmt::Debug for Receiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("window", &self.window)
            .finish()
    }
}

/// Capacity measurement for the reuse covert channel.
#[derive(Debug, Clone, PartialEq)]
pub struct CovertResult {
    /// Payload bits sent.
    pub sent: usize,
    /// Bits decoded correctly.
    pub correct: usize,
    /// Raw window rate in bits per million cycles.
    pub windows_per_mcycle: f64,
    /// Empirical mutual information between payload and decoded bits, in
    /// bits per window (1.0 = perfect channel, ~0 = closed).
    pub mutual_information: f64,
}

impl CovertResult {
    /// Fraction of payload bits decoded correctly (0.5 = coin-flip).
    pub fn accuracy(&self) -> f64 {
        self.correct as f64 / self.sent.max(1) as f64
    }

    /// Effective error-free bandwidth (accuracy-scaled window rate, zero
    /// once accuracy is at or below chance).
    pub fn effective_bandwidth(&self) -> f64 {
        ((self.accuracy() - 0.5).max(0.0) * 2.0) * self.windows_per_mcycle
    }

    /// The channel works if it beats guessing by a wide margin.
    pub fn leaks(&self) -> bool {
        self.accuracy() > 0.75
    }
}

/// Runs the covert channel with a pseudo-random `bits`-bit payload.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn run_covert_channel(security: SecurityMode, bits: usize) -> CovertResult {
    assert!(bits > 0, "need at least one payload bit");
    let mut sys = single_core_system(security);
    let lat = sys.config().hierarchy.latencies;
    let line = layout::SHARED_SEGMENT + 0x5_0000;

    let mut rng = FastRng::seed_from_u64(0xC0FE ^ bits as u64);
    let payload: Vec<bool> = (0..bits).map(|_| rng.next_u64() & 1 == 1).collect();

    let (receiver, log) = Receiver::new(line, Threshold::calibrate(&lat), bits as u32);
    sys.spawn(Box::new(receiver), 0, 0, None);
    sys.spawn(
        Box::new(Sender {
            line,
            payload: payload.clone(),
            next: 0,
            phase: 0,
        }),
        0,
        0,
        None,
    );
    let report = sys.run(400_000_000);

    let decoded = log.borrow();
    let correct = payload
        .iter()
        .zip(decoded.iter())
        .filter(|(p, d)| p == d)
        .count();
    let observed: Vec<bool> = (0..bits)
        .map(|i| decoded.get(i).copied().unwrap_or(false))
        .collect();
    CovertResult {
        sent: bits,
        correct,
        windows_per_mcycle: decoded.len() as f64 * 1e6 / report.total_cycles.max(1) as f64,
        mutual_information: mutual_information_bits(&payload, &observed),
    }
}

/// Outcome rows for both modes.
pub fn demo() -> Vec<AttackOutcome> {
    let baseline = run_covert_channel(SecurityMode::Baseline, 128);
    let defended = run_covert_channel(timecache_mode(), 128);
    let fmt = |r: &CovertResult| {
        format!(
            "{:.1}% of {} bits, {:.2} bits MI/window, {:.1} usable bits/Mcycle",
            r.accuracy() * 100.0,
            r.sent,
            r.mutual_information,
            r.effective_bandwidth()
        )
    };
    vec![
        AttackOutcome::new(
            "reuse covert channel",
            "baseline",
            baseline.leaks(),
            fmt(&baseline),
        ),
        AttackOutcome::new(
            "reuse covert channel",
            "timecache",
            defended.leaks(),
            fmt(&defended),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_fidelity_channel_in_baseline() {
        let r = run_covert_channel(SecurityMode::Baseline, 64);
        assert!(r.accuracy() > 0.95, "{r:?}");
        assert!(r.effective_bandwidth() > 0.0);
    }

    #[test]
    fn channel_collapses_under_timecache() {
        let base = run_covert_channel(SecurityMode::Baseline, 64);
        let tc = run_covert_channel(timecache_mode(), 64);
        // The receiver decodes all zeroes; accuracy equals the fraction of
        // zero bits in the payload — chance level, never high fidelity.
        assert!(!tc.leaks(), "{tc:?}");
        assert!(tc.accuracy() < 0.7, "{tc:?}");
        // Any residual "bandwidth" is chance-level jitter, an order of
        // magnitude below the working baseline channel.
        assert!(
            tc.effective_bandwidth() < base.effective_bandwidth() / 10.0,
            "baseline {base:?} vs timecache {tc:?}"
        );
    }
}
