//! The LRU replacement-state attack (Section VII-A of the paper).
//!
//! The attacker accesses a shared line `l`, then `w-1` of its own lines in
//! the same set, and yields. If the victim touches `l` during the window,
//! `l` becomes most-recently-used; the attacker's subsequent access to a
//! `w`-th line then evicts one of its own lines instead of `l`, so a timed
//! reload of `l` is fast. If the victim stayed idle, `l` was the LRU line,
//! got evicted, and the reload is slow.
//!
//! TimeCache does **not** close this channel — the attacker only ever times
//! lines it has itself paid for; the information travels through the
//! *replacement state*, not through residency reuse. The paper notes it is
//! prevented by randomizing caches, which our keyed index models.

use crate::analysis::Threshold;
use crate::harness::AttackOutcome;
use std::cell::RefCell;
use std::rc::Rc;
use timecache_os::{DataKind, Observation, Op, Program};
use timecache_os::{System, SystemConfig};
use timecache_sim::{Addr, HierarchyConfig, IndexFn, SecurityMode};
use timecache_workloads::layout;

/// Per-round: was the reload of `l` fast (victim access inferred)?
pub type LruLog = Rc<RefCell<Vec<bool>>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Access the shared line `l`.
    Target,
    /// Access eviction-set line `i` (of `w-1`).
    FillSet(usize),
    /// Yield to the victim.
    Sleep,
    /// Access the extra line, forcing one eviction.
    Evictor,
    /// Timed reload of `l`.
    Reload,
    Finished,
}

/// The LRU-state attacker.
pub struct LruAttacker {
    target: Addr,
    set_lines: Vec<Addr>,
    evictor: Addr,
    threshold: Threshold,
    rounds: u32,
    round: u32,
    phase: Phase,
    log: LruLog,
    pc: Addr,
}

impl LruAttacker {
    /// Creates an attacker monitoring shared line `target` with the given
    /// same-set filler lines and one extra evictor line.
    ///
    /// # Panics
    ///
    /// Panics if `set_lines` is empty or `rounds` is zero.
    pub fn new(
        target: Addr,
        set_lines: Vec<Addr>,
        evictor: Addr,
        threshold: Threshold,
        rounds: u32,
    ) -> (Self, LruLog) {
        assert!(!set_lines.is_empty(), "need filler lines");
        assert!(rounds > 0, "need at least one round");
        let log: LruLog = Rc::new(RefCell::new(Vec::new()));
        (
            LruAttacker {
                target,
                set_lines,
                evictor,
                threshold,
                rounds,
                round: 0,
                phase: Phase::Target,
                log: Rc::clone(&log),
                pc: 0x6690_0000,
            },
            log,
        )
    }

    fn next_pc(&mut self) -> Addr {
        self.pc = (self.pc & !0xFF) | ((self.pc + 64) & 0xFF);
        self.pc
    }

    fn load(&mut self, addr: Addr) -> Op {
        Op::Instr {
            pc: self.next_pc(),
            data: Some((DataKind::Load, addr)),
        }
    }
}

impl Program for LruAttacker {
    fn next_op(&mut self) -> Op {
        match self.phase {
            Phase::Target => {
                self.phase = Phase::FillSet(0);
                self.load(self.target)
            }
            Phase::FillSet(i) => {
                self.phase = if i + 1 < self.set_lines.len() {
                    Phase::FillSet(i + 1)
                } else {
                    Phase::Sleep
                };
                let a = self.set_lines[i];
                self.load(a)
            }
            Phase::Sleep => {
                self.phase = Phase::Evictor;
                Op::Yield { pc: self.next_pc() }
            }
            // The phase advances in observe() once the evictor's (ignored)
            // latency has been delivered — advancing here would misattribute
            // that latency to the timed reload.
            Phase::Evictor => self.load(self.evictor),
            Phase::Reload => self.load(self.target),
            Phase::Finished => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        match self.phase {
            Phase::Evictor if obs.data_latency.is_some() => {
                self.phase = Phase::Reload;
            }
            Phase::Reload => {
                if let Some(latency) = obs.data_latency {
                    self.log.borrow_mut().push(self.threshold.is_hit(latency));
                    self.round += 1;
                    self.phase = if self.round >= self.rounds {
                        Phase::Finished
                    } else {
                        Phase::Target
                    };
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "lru-attacker"
    }
}

impl std::fmt::Debug for LruAttacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruAttacker")
            .field("round", &self.round)
            .finish()
    }
}

/// Victim touching the shared line on odd wakes.
#[derive(Debug)]
struct LruVictim {
    target: Addr,
    wake: u64,
    phase: u8,
}

impl Program for LruVictim {
    fn next_op(&mut self) -> Op {
        match self.phase {
            0 => {
                self.phase = 1;
                if self.wake % 2 == 1 {
                    Op::Instr {
                        pc: 0x7780_0000,
                        data: Some((DataKind::Load, self.target)),
                    }
                } else {
                    Op::Instr {
                        pc: 0x7780_0000,
                        data: None,
                    }
                }
            }
            _ => {
                self.phase = 0;
                self.wake += 1;
                Op::Yield { pc: 0x7780_0000 }
            }
        }
    }

    fn name(&self) -> &str {
        "lru-victim"
    }
}

/// Detection quality of one LRU-attack run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LruResult {
    /// Fraction of victim-active windows where `l` reloaded fast.
    pub active_fast: f64,
    /// Fraction of idle windows where `l` reloaded fast.
    pub idle_fast: f64,
    /// Rounds observed.
    pub rounds: usize,
}

impl LruResult {
    /// The channel leaks if active and idle windows are distinguishable.
    pub fn leaks(&self) -> bool {
        (self.active_fast - self.idle_fast).abs() > 0.5
    }
}

/// Runs the LRU attack at the L1D of a single core.
///
/// The eviction set is built for *modulo* L1 indexing; passing a keyed
/// `l1_index` models a randomized cache, which breaks the set construction.
pub fn run_lru_attack(security: SecurityMode, l1_index: IndexFn) -> LruResult {
    let mut hierarchy = HierarchyConfig::with_cores(1);
    hierarchy.security = security;
    hierarchy.l1d.index = l1_index;
    let cfg = SystemConfig {
        hierarchy,
        quantum_cycles: 200_000,
        ..SystemConfig::default()
    };
    let mut sys = System::new(cfg).expect("valid config");

    let lat = sys.config().hierarchy.latencies;
    let geom = sys.config().hierarchy.l1d.geometry;
    let set_stride = geom.num_sets() * geom.line_size();
    let target = layout::SHARED_SEGMENT + 7 * set_stride; // shared line l
    let fillers: Vec<Addr> = (1..geom.ways() as u64)
        .map(|i| layout::private_base(40) + 7 * set_stride + i * 64 * set_stride)
        .collect();
    let evictor = layout::private_base(40) + 7 * set_stride + 100 * 64 * set_stride;

    let rounds = 40;
    // The eviction set operates on the L1D (filler stride = one L1 set
    // period), so the timing signal is L1-hit vs LLC-hit: calibrate the
    // threshold between those levels.
    let (attacker, log) =
        LruAttacker::new(target, fillers, evictor, Threshold::calibrate(&lat), rounds);
    sys.spawn(Box::new(attacker), 0, 0, None);
    sys.spawn(
        Box::new(LruVictim {
            target,
            wake: 0,
            phase: 0,
        }),
        0,
        0,
        Some(rounds as u64 * 16),
    );
    sys.run(200_000_000);

    let hits = log.borrow();
    let (mut af, mut at, mut xf, mut xt) = (0, 0, 0, 0);
    for (round, &fast) in hits.iter().enumerate() {
        if round % 2 == 1 {
            at += 1;
            af += fast as u32;
        } else {
            xt += 1;
            xf += fast as u32;
        }
    }
    LruResult {
        active_fast: af as f64 / at.max(1) as f64,
        idle_fast: xf as f64 / xt.max(1) as f64,
        rounds: hits.len(),
    }
}

/// Outcome rows for the LRU attack across configurations.
pub fn demo() -> Vec<AttackOutcome> {
    let baseline = run_lru_attack(SecurityMode::Baseline, IndexFn::Modulo);
    let timecache = run_lru_attack(crate::harness::timecache_mode(), IndexFn::Modulo);
    let keyed = run_lru_attack(
        crate::harness::timecache_mode(),
        IndexFn::Keyed { key: 0xA11CE },
    );
    let fmt = |r: &LruResult| {
        format!(
            "fast reload in active windows {:.0}%, idle {:.0}%",
            r.active_fast * 100.0,
            r.idle_fast * 100.0
        )
    };
    vec![
        AttackOutcome::new("lru-state", "baseline", baseline.leaks(), fmt(&baseline)),
        AttackOutcome::new(
            "lru-state",
            "timecache (out of scope)",
            timecache.leaks(),
            fmt(&timecache),
        ),
        AttackOutcome::new(
            "lru-state",
            "timecache + keyed index",
            keyed.leaks(),
            fmt(&keyed),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaks_in_baseline() {
        let r = run_lru_attack(SecurityMode::Baseline, IndexFn::Modulo);
        assert!(r.leaks(), "{r:?}");
    }

    #[test]
    fn persists_under_timecache_as_paper_notes() {
        let r = run_lru_attack(crate::harness::timecache_mode(), IndexFn::Modulo);
        assert!(r.leaks(), "{r:?}");
    }

    #[test]
    fn broken_by_randomized_index() {
        let r = run_lru_attack(
            crate::harness::timecache_mode(),
            IndexFn::Keyed { key: 0xA11CE },
        );
        assert!(!r.leaks(), "{r:?}");
    }
}
