//! Per-primitive integration tests: every attack in the suite must
//! demonstrably work at baseline and be eliminated under its prescribed
//! defense, judged two independent ways on the same fixed configuration:
//!
//! 1. the attack's own domain verdict (`leaks()`, recovered bits/bytes,
//!    channel accuracy) through the crate's public `run_*` entry points;
//! 2. the statistical oracle's TVLA-style Welch's t-test
//!    ([`timecache_oracle::assess`]) over attacker measurements in
//!    victim-active vs victim-idle arms — |t| must exceed the 4.5
//!    threshold at baseline and stay below it under the defense.
//!
//! Everything here is deterministic: the simulator is cycle-accurate and
//! the attack drivers are seed-free state machines, so these are exact
//! regressions, not flaky statistical guesses.

use timecache_attacks::covert::run_covert_channel;
use timecache_attacks::evict_time::run_evict_time;
use timecache_attacks::flush_flush::run_flush_flush;
use timecache_attacks::harness::timecache_mode;
use timecache_attacks::prime_probe::run_prime_probe;
use timecache_attacks::spectre::run_spectre;
use timecache_core::TimeCacheConfig;
use timecache_oracle::{assess, Channel, LEAKAGE_THRESHOLD};
use timecache_sim::{IndexFn, SecurityMode};

/// Rounds per arm for the statistical verdicts. The arms are
/// deterministic, so the t-statistic saturates quickly.
const ROUNDS: usize = 40;

/// Asserts the oracle's verdict on one channel: baseline arm leaks,
/// defended arm is statistically silent.
fn assert_tvla(channel: Channel) {
    let a = assess(channel, ROUNDS);
    assert!(
        a.t_baseline.abs() > LEAKAGE_THRESHOLD,
        "{}: baseline |t| = {} must exceed {LEAKAGE_THRESHOLD}",
        channel.name(),
        a.t_baseline.abs()
    );
    assert!(
        a.t_defended.abs() < LEAKAGE_THRESHOLD,
        "{}: defended |t| = {} must stay below {LEAKAGE_THRESHOLD} ({})",
        channel.name(),
        a.t_defended.abs(),
        channel.defense()
    );
}

#[test]
fn prime_probe_baseline_leaks_keyed_index_eliminates() {
    // Prime+Probe is a contention channel: TimeCache alone leaves it
    // (s-bits do not hide which set the victim displaced), and the paper
    // prescribes a randomized index as the complementary defense.
    let base = run_prime_probe(SecurityMode::Baseline, IndexFn::Modulo);
    assert!(base.leaks(), "{base:?}");
    let tc_alone = run_prime_probe(timecache_mode(), IndexFn::Modulo);
    assert!(tc_alone.leaks(), "contention survives s-bits: {tc_alone:?}");
    let defended = run_prime_probe(timecache_mode(), IndexFn::Keyed { key: 0x5EED });
    assert!(!defended.leaks(), "{defended:?}");
    assert_tvla(Channel::PrimeProbe);
}

#[test]
fn flush_flush_baseline_leaks_constant_time_clflush_eliminates() {
    let base = run_flush_flush(SecurityMode::Baseline);
    assert!(base.leaks(), "{base:?}");
    let defended = run_flush_flush(SecurityMode::TimeCache(
        TimeCacheConfig::default().with_constant_time_clflush(true),
    ));
    assert!(!defended.leaks(), "{defended:?}");
    // Under the constant-time clflush every flush pays the present-line
    // latency: both arms sit at 100% slow flushes, indistinguishable.
    assert_eq!(defended.active_slow, 1.0);
    assert_eq!(defended.idle_slow, 1.0);
    assert_tvla(Channel::FlushFlush);
}

#[test]
fn evict_time_baseline_leaks_keyed_index_eliminates() {
    // The victim's own misses are real, so TimeCache alone honestly leaves
    // a residual Evict+Time channel; the keyed index removes the
    // attacker's ability to target the victim's set.
    let base = run_evict_time(SecurityMode::Baseline);
    assert!(base.leaks(), "{base:?}");
    let tc_alone = run_evict_time(timecache_mode());
    assert!(tc_alone.leaks(), "residual channel is real: {tc_alone:?}");
    assert_tvla(Channel::EvictTime);
}

#[test]
fn covert_channel_transmits_at_baseline_and_collapses_under_timecache() {
    let base = run_covert_channel(SecurityMode::Baseline, 64);
    assert!(base.leaks(), "{base:?}");
    assert!(base.accuracy() > 0.95, "{base:?}");
    let defended = run_covert_channel(timecache_mode(), 64);
    assert!(!defended.leaks(), "{defended:?}");
    // Residual "bandwidth" is chance-level jitter, far below the working
    // channel.
    assert!(
        defended.effective_bandwidth() < base.effective_bandwidth() / 10.0,
        "baseline {base:?} vs timecache {defended:?}"
    );
    assert_tvla(Channel::Covert);
}

#[test]
fn spectre_recovers_the_secret_at_baseline_and_is_blinded_by_timecache() {
    let secret = b"timecache-pr4";
    let base = run_spectre(SecurityMode::Baseline, secret);
    assert!(base.leaks(), "{base:?}");
    assert!(base.accuracy() > 0.9, "{base:?}");
    let defended = run_spectre(timecache_mode(), secret);
    // Every transmitted-line probe is a first access: no byte is ever
    // recovered, not merely recovered with lower confidence.
    assert!(
        defended.recovered.iter().all(|b| b.is_none()),
        "{defended:?}"
    );
    assert_eq!(defended.accuracy(), 0.0);
    assert_tvla(Channel::Spectre);
}

#[test]
fn remaining_channels_pass_the_statistical_oracle() {
    // The oracle covers the whole suite uniformly; the primitives without
    // a dedicated scenario above still get the statistical verdict.
    for channel in [
        Channel::FlushReload,
        Channel::EvictReload,
        Channel::LruState,
        Channel::Coherence,
        Channel::Rsa,
    ] {
        assert_tvla(channel);
    }
}
