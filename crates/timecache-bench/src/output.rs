//! Table printing and CSV emission for experiment results.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use timecache_telemetry::encode;

/// The directory experiment artifacts (CSVs, telemetry snapshots) are
/// written to: `$TIMECACHE_RESULTS` or `results/`, created on demand.
///
/// # Errors
///
/// Returns the underlying error if the directory cannot be created.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = std::env::var_os("TIMECACHE_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes rows as an RFC-4180 CSV file (cells containing commas, quotes,
/// or newlines are quoted and escaped) under [`results_dir`]; returns the
/// path.
///
/// # Errors
///
/// Returns the underlying error if the directory or file cannot be
/// written.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> io::Result<PathBuf> {
    let path = results_dir()?.join(name);
    fs::write(&path, encode::csv_table(header, rows))?;
    Ok(path)
}

/// Prints an aligned text table with a header rule.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Geometric mean of a nonempty slice.
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geomean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Checks that a path was written and is nonempty (test helper).
pub fn assert_csv_written(path: &Path) {
    let meta = fs::metadata(path).expect("csv exists");
    assert!(meta.len() > 0, "csv {path:?} is empty");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_calc() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        geomean(&[]);
    }

    #[test]
    fn csv_roundtrip() {
        std::env::set_var("TIMECACHE_RESULTS", std::env::temp_dir().join("tc-results"));
        let p = write_csv(
            "unit_test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        )
        .unwrap();
        assert_csv_written(&p);
        let body = fs::read_to_string(&p).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        std::env::remove_var("TIMECACHE_RESULTS");
    }

    #[test]
    fn csv_escapes_delimiters_in_cells() {
        std::env::set_var("TIMECACHE_RESULTS", std::env::temp_dir().join("tc-results"));
        let p = write_csv(
            "unit_test_escape.csv",
            &["label", "note"],
            &[vec!["a,b".into(), "say \"hi\"".into()]],
        )
        .unwrap();
        let body = fs::read_to_string(&p).unwrap();
        assert_eq!(body, "label,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
        std::env::remove_var("TIMECACHE_RESULTS");
    }
}
