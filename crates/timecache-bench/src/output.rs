//! Table printing and CSV emission for experiment results.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The directory experiment CSVs are written to (`results/` next to the
/// workspace root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("TIMECACHE_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes rows as a CSV file under [`results_dir`]; returns the path.
///
/// # Panics
///
/// Panics on I/O errors (experiments are command-line tools; failing loudly
/// is the right behaviour).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path
}

/// Prints an aligned text table with a header rule.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Geometric mean of a nonempty slice.
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geomean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Checks that a path was written and is nonempty (test helper).
pub fn assert_csv_written(path: &Path) {
    let meta = fs::metadata(path).expect("csv exists");
    assert!(meta.len() > 0, "csv {path:?} is empty");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_calc() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        geomean(&[]);
    }

    #[test]
    fn csv_roundtrip() {
        std::env::set_var("TIMECACHE_RESULTS", std::env::temp_dir().join("tc-results"));
        let p = write_csv(
            "unit_test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        assert_csv_written(&p);
        let body = fs::read_to_string(&p).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        std::env::remove_var("TIMECACHE_RESULTS");
    }
}
