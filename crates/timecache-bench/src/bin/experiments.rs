//! Experiment driver: regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! experiments [--quick] [--telemetry] [--jobs N] [--max-failures N]
//!             <all|table1|table2|fig7|fig8|fig9|fig10|security|rollover|
//!              switchcost|other-attacks|ftm|area|ablation|telemetry-demo|
//!              bench-sweep|fault-sweep|leakage-sweep>
//! ```
//!
//! `--quick` shrinks the instruction budgets (useful for smoke-testing the
//! harness; reported numbers will be noisier). `--jobs N` sets the sweep
//! engine's worker count (default: all cores; `--jobs 1` reproduces serial
//! execution bit-for-bit). `--telemetry` records metrics, events, and
//! phase profiles for every system the experiment builds, and writes
//! `<id>_metrics.prom` / `<id>_metrics.json` / `<id>_events.jsonl` /
//! `<id>_profile.json` / `<id>_manifest.json` under `results/` next to the
//! experiment's CSV. `bench-sweep` times the SPEC sweep serially vs in
//! parallel plus per-access simulator cost and writes `BENCH_sweep.json`.
//! `fault-sweep` runs the fault-injection matrix (checkpointed to
//! `fault_matrix.partial.jsonl`, so interrupted runs resume); it exits
//! nonzero if any TimeCache cell violates the security invariant, if the
//! baseline rows fail to exhibit the expected leak, or if more than
//! `--max-failures` cells (default 0) keep panicking past the retry budget.
//! `leakage-sweep` runs the TVLA-style statistical leakage assessment over
//! every attack primitive (checkpointed to `leakage_matrix.partial.jsonl`)
//! and exits nonzero unless every channel's baseline arm leaks
//! (|t| > 4.5) and its defended arm stays silent (|t| < 4.5).

use timecache_bench::runner::RunParams;
use timecache_bench::{exp, sweep, telemetry};
use timecache_workloads::mixes;
use timecache_workloads::parsec::ParsecBenchmark;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--quick] [--telemetry] [--jobs N] [--max-failures N] \
         <all|table1|table2|fig7|fig8|fig9|fig10|security|rollover|switchcost|\
         other-attacks|ftm|area|ablation|telemetry-demo|bench-sweep|fault-sweep|\
         leakage-sweep>"
    );
    std::process::exit(2);
}

/// Extracts `--jobs N` / `--jobs=N` from `args`, removing the consumed
/// elements. Exits with usage on a malformed value.
fn parse_jobs(args: &mut Vec<String>) -> Option<usize> {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        let consumed = if args[i] == "--jobs" {
            let Some(value) = args.get(i + 1) else {
                eprintln!("--jobs requires a value");
                usage();
            };
            jobs = value.parse().ok().filter(|&n| n >= 1);
            if jobs.is_none() {
                eprintln!("--jobs expects a positive integer, got {value:?}");
                usage();
            }
            2
        } else if let Some(value) = args[i].strip_prefix("--jobs=") {
            jobs = value.parse().ok().filter(|&n| n >= 1);
            if jobs.is_none() {
                eprintln!("--jobs expects a positive integer, got {value:?}");
                usage();
            }
            1
        } else {
            i += 1;
            continue;
        };
        args.drain(i..i + consumed);
    }
    jobs
}

/// Extracts `--max-failures N` / `--max-failures=N` from `args` (the
/// `fault-sweep` failure tolerance; zero when absent).
fn parse_max_failures(args: &mut Vec<String>) -> usize {
    let mut max = 0;
    let mut i = 0;
    while i < args.len() {
        let consumed = if args[i] == "--max-failures" {
            let Some(value) = args.get(i + 1) else {
                eprintln!("--max-failures requires a value");
                usage();
            };
            match value.parse() {
                Ok(n) => max = n,
                Err(_) => {
                    eprintln!("--max-failures expects a non-negative integer, got {value:?}");
                    usage();
                }
            }
            2
        } else if let Some(value) = args[i].strip_prefix("--max-failures=") {
            match value.parse() {
                Ok(n) => max = n,
                Err(_) => {
                    eprintln!("--max-failures expects a non-negative integer, got {value:?}");
                    usage();
                }
            }
            1
        } else {
            i += 1;
            continue;
        };
        args.drain(i..i + consumed);
    }
    max
}

/// Exit-code policy for `fault-sweep`: the run "passes" only if the matrix
/// demonstrated what it claims — TimeCache invariant-clean, baseline
/// demonstrably leaky, and no more worker failures than tolerated.
fn fault_sweep_exit_code(
    summary: &exp::fault_sweep::FaultSweepSummary,
    max_failures: usize,
) -> i32 {
    let mut code = 0;
    if summary.failures.len() > max_failures {
        eprintln!(
            "FAIL: {} worker failures exceed --max-failures {max_failures}",
            summary.failures.len()
        );
        code = 1;
    }
    if summary.timecache_violations > 0 {
        eprintln!(
            "FAIL: {} invariant violations under TimeCache",
            summary.timecache_violations
        );
        code = 1;
    }
    if summary.baseline_rows_completed > 0 && summary.baseline_violations == 0 {
        eprintln!("FAIL: baseline rows completed without the expected leak");
        code = 1;
    }
    code
}

/// Exit-code policy for `leakage-sweep`: every completed row must show the
/// expected asymmetry (baseline leaks, defense silences), and no more
/// cells than tolerated may fail outright.
fn leakage_sweep_exit_code(
    summary: &exp::leakage_sweep::LeakageSweepSummary,
    max_failures: usize,
) -> i32 {
    let mut code = 0;
    if summary.failures.len() > max_failures {
        eprintln!(
            "FAIL: {} worker failures exceed --max-failures {max_failures}",
            summary.failures.len()
        );
        code = 1;
    }
    if summary.defended_leaks > 0 {
        eprintln!(
            "FAIL: {} channels still leak under their defense (|t| >= 4.5)",
            summary.defended_leaks
        );
        code = 1;
    }
    if summary.baseline_silent > 0 {
        eprintln!(
            "FAIL: {} channels failed to leak at baseline (|t| <= 4.5), so the \
             defended silence proves nothing",
            summary.baseline_silent
        );
        code = 1;
    }
    code
}

fn announce_spec_sweep() {
    eprintln!(
        "running SPEC sweep ({} pairs, 2 modes, {} jobs)...",
        mixes::all_pairs().len(),
        sweep::jobs()
    );
}

fn announce_parsec_sweep() {
    eprintln!(
        "running PARSEC sweep ({} benchmarks, 2 modes, {} jobs)...",
        ParsecBenchmark::ALL.len(),
        sweep::jobs()
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let with_telemetry = args.iter().any(|a| a == "--telemetry");
    args.retain(|a| a != "--quick" && a != "--telemetry");
    if let Some(jobs) = parse_jobs(&mut args) {
        sweep::set_jobs(jobs);
    }
    let max_failures = parse_max_failures(&mut args);
    let which = args.first().map(String::as_str).unwrap_or_else(|| usage());
    let params = if quick {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    if with_telemetry {
        telemetry::enable();
    }

    let mut exit_code = 0;
    match which {
        "table1" => exp::table1::run(),
        "table2" | "fig7" | "fig8" => {
            announce_spec_sweep();
            let sweep = exp::spec_sweep(&params);
            match which {
                "fig7" => exp::fig7::run(&sweep),
                "fig8" => exp::fig8::run(&sweep),
                _ => {
                    announce_parsec_sweep();
                    let parsec = exp::fig9::sweep(&params);
                    exp::table2::run(&sweep, &parsec);
                }
            }
        }
        "fig9" => {
            announce_parsec_sweep();
            let parsec = exp::fig9::sweep(&params);
            exp::fig9::run(&parsec);
        }
        "fig10" => exp::fig10::run(&params),
        "security" => exp::security::run(),
        "rollover" => exp::rollover::run(&params),
        "switchcost" => exp::switchcost::run(&params),
        "other-attacks" => exp::other_attacks::run(),
        "ftm" => exp::ftm::run(&params),
        "area" => exp::area::run(),
        "ablation" => exp::ablation::run(&params),
        "telemetry-demo" => exp::telemetry_demo::run(&params),
        "bench-sweep" => exp::bench_sweep::run(&params),
        "fault-sweep" => {
            let summary = exp::fault_sweep::run(&params);
            exit_code = fault_sweep_exit_code(&summary, max_failures);
        }
        "leakage-sweep" => {
            let summary = exp::leakage_sweep::run(&params);
            exit_code = leakage_sweep_exit_code(&summary, max_failures);
        }
        "all" => {
            exp::table1::run();
            announce_spec_sweep();
            let sweep = exp::spec_sweep(&params);
            exp::fig7::run(&sweep);
            exp::fig8::run(&sweep);
            announce_parsec_sweep();
            let parsec = exp::fig9::sweep(&params);
            exp::fig9::run(&parsec);
            exp::table2::run(&sweep, &parsec);
            exp::fig10::run(&params);
            exp::security::run();
            exp::rollover::run(&params);
            exp::switchcost::run(&params);
            exp::other_attacks::run();
            exp::ftm::run(&params);
            exp::area::run();
            exp::ablation::run(&params);
        }
        _ => usage(),
    }

    if with_telemetry {
        let id = which.replace('-', "_");
        match telemetry::write_artifacts(&id) {
            Ok(paths) => {
                for path in &paths {
                    println!("wrote {}", path.display());
                }
            }
            Err(e) => eprintln!("failed to write telemetry artifacts: {e}"),
        }
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
