//! Experiment driver: regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! experiments [--quick] <all|table1|table2|fig7|fig8|fig9|fig10|security|
//!                        rollover|switchcost|other-attacks|ablation>
//! ```
//!
//! `--quick` shrinks the instruction budgets (useful for smoke-testing the
//! harness; reported numbers will be noisier).

use timecache_bench::exp;
use timecache_bench::runner::RunParams;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--quick] <all|table1|table2|fig7|fig8|fig9|fig10|\
         security|rollover|switchcost|other-attacks|ftm|area|ablation>"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let which = args.first().map(String::as_str).unwrap_or_else(|| usage());
    let params = if quick {
        RunParams::quick()
    } else {
        RunParams::default()
    };

    match which {
        "table1" => exp::table1::run(),
        "table2" | "fig7" | "fig8" => {
            eprintln!("running SPEC sweep (24 pairs, 2 modes)...");
            let sweep = exp::spec_sweep(&params);
            match which {
                "fig7" => exp::fig7::run(&sweep),
                "fig8" => exp::fig8::run(&sweep),
                _ => {
                    eprintln!("running PARSEC sweep (6 benchmarks, 2 modes)...");
                    let parsec = exp::fig9::sweep(&params);
                    exp::table2::run(&sweep, &parsec);
                }
            }
        }
        "fig9" => {
            eprintln!("running PARSEC sweep (6 benchmarks, 2 modes)...");
            let parsec = exp::fig9::sweep(&params);
            exp::fig9::run(&parsec);
        }
        "fig10" => exp::fig10::run(&params),
        "security" => exp::security::run(),
        "rollover" => exp::rollover::run(&params),
        "switchcost" => exp::switchcost::run(&params),
        "other-attacks" => exp::other_attacks::run(),
        "ftm" => exp::ftm::run(&params),
        "area" => exp::area::run(),
        "ablation" => exp::ablation::run(&params),
        "all" => {
            exp::table1::run();
            eprintln!("running SPEC sweep (24 pairs, 2 modes)...");
            let sweep = exp::spec_sweep(&params);
            exp::fig7::run(&sweep);
            exp::fig8::run(&sweep);
            eprintln!("running PARSEC sweep (6 benchmarks, 2 modes)...");
            let parsec = exp::fig9::sweep(&params);
            exp::fig9::run(&parsec);
            exp::table2::run(&sweep, &parsec);
            exp::fig10::run(&params);
            exp::security::run();
            exp::rollover::run(&params);
            exp::switchcost::run(&params);
            exp::other_attacks::run();
            exp::ftm::run(&params);
            exp::area::run();
            exp::ablation::run(&params);
        }
        _ => usage(),
    }
}
