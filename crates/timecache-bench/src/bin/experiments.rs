//! Experiment driver: regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! experiments [--quick] [--telemetry] <all|table1|table2|fig7|fig8|fig9|
//!                        fig10|security|rollover|switchcost|other-attacks|
//!                        ftm|area|ablation|telemetry-demo>
//! ```
//!
//! `--quick` shrinks the instruction budgets (useful for smoke-testing the
//! harness; reported numbers will be noisier). `--telemetry` records
//! metrics, events, and phase profiles for every system the experiment
//! builds, and writes `<id>_metrics.prom` / `<id>_metrics.json` /
//! `<id>_events.jsonl` / `<id>_profile.json` / `<id>_manifest.json` under
//! `results/` next to the experiment's CSV.

use timecache_bench::runner::RunParams;
use timecache_bench::{exp, telemetry};

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--quick] [--telemetry] <all|table1|table2|fig7|fig8|\
         fig9|fig10|security|rollover|switchcost|other-attacks|ftm|area|ablation|\
         telemetry-demo>"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let with_telemetry = args.iter().any(|a| a == "--telemetry");
    args.retain(|a| a != "--quick" && a != "--telemetry");
    let which = args.first().map(String::as_str).unwrap_or_else(|| usage());
    let params = if quick {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    if with_telemetry {
        telemetry::enable();
    }

    match which {
        "table1" => exp::table1::run(),
        "table2" | "fig7" | "fig8" => {
            eprintln!("running SPEC sweep (24 pairs, 2 modes)...");
            let sweep = exp::spec_sweep(&params);
            match which {
                "fig7" => exp::fig7::run(&sweep),
                "fig8" => exp::fig8::run(&sweep),
                _ => {
                    eprintln!("running PARSEC sweep (6 benchmarks, 2 modes)...");
                    let parsec = exp::fig9::sweep(&params);
                    exp::table2::run(&sweep, &parsec);
                }
            }
        }
        "fig9" => {
            eprintln!("running PARSEC sweep (6 benchmarks, 2 modes)...");
            let parsec = exp::fig9::sweep(&params);
            exp::fig9::run(&parsec);
        }
        "fig10" => exp::fig10::run(&params),
        "security" => exp::security::run(),
        "rollover" => exp::rollover::run(&params),
        "switchcost" => exp::switchcost::run(&params),
        "other-attacks" => exp::other_attacks::run(),
        "ftm" => exp::ftm::run(&params),
        "area" => exp::area::run(),
        "ablation" => exp::ablation::run(&params),
        "telemetry-demo" => exp::telemetry_demo::run(&params),
        "all" => {
            exp::table1::run();
            eprintln!("running SPEC sweep (24 pairs, 2 modes)...");
            let sweep = exp::spec_sweep(&params);
            exp::fig7::run(&sweep);
            exp::fig8::run(&sweep);
            eprintln!("running PARSEC sweep (6 benchmarks, 2 modes)...");
            let parsec = exp::fig9::sweep(&params);
            exp::fig9::run(&parsec);
            exp::table2::run(&sweep, &parsec);
            exp::fig10::run(&params);
            exp::security::run();
            exp::rollover::run(&params);
            exp::switchcost::run(&params);
            exp::other_attacks::run();
            exp::ftm::run(&params);
            exp::area::run();
            exp::ablation::run(&params);
        }
        _ => usage(),
    }

    if with_telemetry {
        let id = which.replace('-', "_");
        match telemetry::write_artifacts(&id) {
            Ok(paths) => {
                for path in &paths {
                    println!("wrote {}", path.display());
                }
            }
            Err(e) => eprintln!("failed to write telemetry artifacts: {e}"),
        }
    }
}
