//! A tiny, dependency-free micro-benchmark harness (the workspace builds
//! offline with no third-party crates, so Criterion is out; DESIGN.md §6).
//!
//! The harness measures wall-clock time per iteration with warmup, adaptive
//! batch sizing, and a median-of-samples estimate, and prints one
//! fixed-format line per benchmark:
//!
//! ```text
//! bench comparator/bit-serial/512   median 1.234 us/iter  (31 samples)
//! ```
//!
//! The `benches/*.rs` targets (with `harness = false`) build their own
//! `main` from [`Bencher::bench`] calls. These are throughput indicators,
//! not statistical instruments — for rigorous comparisons run them pinned
//! and repeated.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
/// Number of timed samples per benchmark.
const SAMPLES: usize = 31;
/// Warmup time before calibration.
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The benchmark's full name (`group/name` by convention).
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per sample batch.
    pub batch: u64,
}

impl Measurement {
    /// Renders the fixed-format report line.
    pub fn report_line(&self) -> String {
        let (value, unit) = if self.median_ns >= 1_000_000.0 {
            (self.median_ns / 1_000_000.0, "ms")
        } else if self.median_ns >= 1_000.0 {
            (self.median_ns / 1_000.0, "us")
        } else {
            (self.median_ns, "ns")
        };
        format!(
            "bench {:<40} median {value:>9.3} {unit}/iter  ({} samples x {} iters)",
            self.name, self.samples, self.batch
        )
    }
}

/// Collects measurements and prints them as they complete.
#[derive(Debug, Default)]
pub struct Bencher {
    results: Vec<Measurement>,
}

impl Bencher {
    /// Creates an empty bencher.
    pub fn new() -> Self {
        Bencher::default()
    }

    /// Runs `f` repeatedly, measuring time per call, and records the
    /// result under `name`. The closure's return value is passed through
    /// [`black_box`] so the work cannot be optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> &Measurement {
        // Warmup + calibration: find a batch size whose runtime is near
        // the target sample time.
        let warmup_start = Instant::now();
        let mut calibration_iters = 0u64;
        while warmup_start.elapsed() < WARMUP_TIME {
            black_box(f());
            calibration_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / calibration_iters.max(1) as f64;
        let batch = ((TARGET_SAMPLE_TIME.as_nanos() as f64 / per_iter.max(0.1)) as u64).max(1);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            sample_ns.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = sample_ns[sample_ns.len() / 2];

        let m = Measurement {
            name: name.to_owned(),
            median_ns,
            samples: SAMPLES,
            batch,
        };
        println!("{}", m.report_line());
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements taken so far, in run order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut b = Bencher::new();
        let mut acc = 0u64;
        let m = b.bench("test/add", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(m.median_ns > 0.0);
        assert_eq!(m.samples, SAMPLES);
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn report_line_picks_unit() {
        let m = Measurement {
            name: "x".into(),
            median_ns: 2_500.0,
            samples: 3,
            batch: 10,
        };
        assert!(m.report_line().contains("us/iter"));
        let m2 = Measurement {
            median_ns: 12.0,
            ..m
        };
        assert!(m2.report_line().contains("ns/iter"));
    }
}
