//! The parallel sweep engine: fans independent simulation runs across
//! cores.
//!
//! Every paper artifact is a sweep over *independent* runs — each a pure
//! function of `(workload pair, security mode, RunParams)` with no shared
//! mutable state — so the experiment modules hand the engine a job count
//! and an indexed job function and get results back **in job order**,
//! regardless of which worker finished which job when. The pool is built
//! from `std::thread::scope` plus an atomic job cursor (no third-party
//! dependencies):
//!
//! * `jobs == 1` (or a single job) runs every job inline on the caller's
//!   thread in index order — bit-for-bit the pre-engine serial behavior,
//!   including the caller's thread-local telemetry handle;
//! * `jobs > 1` spawns `min(jobs, n)` workers that claim indices from a
//!   shared [`AtomicUsize`] cursor and deposit results into per-index
//!   slots.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! is overridden process-wide by the `experiments` binary's `--jobs N`
//! flag via [`set_jobs`].
//!
//! # Telemetry
//!
//! The run-scoped [`crate::telemetry`] handle is thread-local and its
//! sinks are `Rc`-shared, so workers cannot record into the caller's
//! handle directly. Instead, when the caller's handle is enabled each
//! worker installs its own enabled handle for the duration of the sweep
//! and ships a [`TelemetrySnapshot`] back at join; the engine absorbs the
//! snapshots into the caller's handle in worker order. Counters,
//! histograms, and phase profiles merge additively, so the merged totals
//! equal a serial run's (see `Telemetry::absorb`).
//!
//! # Progress output
//!
//! Job closures report progress through [`progress`], which writes each
//! message as one atomic line under the stderr lock so concurrent workers
//! never interleave partial lines.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use timecache_telemetry::{Telemetry, TelemetrySnapshot};

/// Process-wide worker-count override; 0 means "use all cores".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count for subsequent sweeps. `0` restores
/// the default (all cores); `1` forces serial execution.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count: the [`set_jobs`] override, or
/// [`std::thread::available_parallelism`] (falling back to 1) when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Writes one full progress line to stderr under the lock, so lines from
/// concurrent workers never interleave mid-line.
pub fn progress(msg: &str) {
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let _ = writeln!(out, "{msg}");
}

/// Runs jobs `0..n` with the process-wide worker count ([`jobs`]) and
/// returns their results indexed by job.
///
/// # Panics
///
/// Propagates any job panic to the caller (workers are joined by
/// `std::thread::scope`).
pub fn run<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_with_jobs(n, jobs(), job)
}

/// [`run`] with an explicit worker count.
pub fn run_with_jobs<T, F>(n: usize, num_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if num_jobs <= 1 || n <= 1 {
        // Inline serial path: identical to the historical behavior,
        // including use of the caller's thread-local telemetry.
        return (0..n).map(job).collect();
    }

    let workers = num_jobs.min(n);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // The caller's handle is not Send; capture only whether it is enabled
    // and absorb the workers' snapshots after the scope ends.
    let caller_tel = crate::telemetry::current();
    let record = caller_tel.is_enabled();
    let snapshots: Vec<Mutex<Option<TelemetrySnapshot>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let cursor = &cursor;
            let slots = &slots;
            let snapshots = &snapshots;
            let job = &job;
            scope.spawn(move || {
                let tel = if record {
                    let tel = Telemetry::enabled();
                    crate::telemetry::set(&tel);
                    Some(tel)
                } else {
                    None
                };
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = job(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                }
                if let Some(tel) = tel {
                    *snapshots[worker].lock().expect("snapshot slot poisoned") =
                        Some(tel.snapshot());
                }
            });
        }
    });

    for slot in snapshots {
        if let Some(snap) = slot.into_inner().expect("snapshot slot poisoned") {
            caller_tel.absorb(&snap);
        }
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_land_by_job_index() {
        // Jobs with deliberately inverted costs: later jobs finish first
        // under parallel execution, yet results stay index-ordered.
        let job = |i: usize| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            i * 10
        };
        let serial = run_with_jobs(8, 1, job);
        let parallel = run_with_jobs(8, 4, job);
        assert_eq!(serial, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        // More workers than jobs must not deadlock or drop results.
        assert_eq!(run_with_jobs(2, 16, |i| i), vec![0, 1]);
        assert_eq!(run_with_jobs(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn jobs_override_round_trips() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn worker_telemetry_merges_into_caller_handle() {
        let tel = crate::telemetry::enable();
        let before = tel
            .registry()
            .unwrap()
            .counter_value("sweep_test_total", &[])
            .unwrap_or(0);
        run_with_jobs(6, 3, |_| {
            let worker_tel = crate::telemetry::current();
            worker_tel
                .registry()
                .unwrap()
                .counter("sweep_test_total", "Test.", &[])
                .inc();
        });
        assert_eq!(
            tel.registry()
                .unwrap()
                .counter_value("sweep_test_total", &[]),
            Some(before + 6)
        );
        crate::telemetry::disable();
    }

    #[test]
    fn disabled_telemetry_stays_disabled_in_workers() {
        crate::telemetry::disable();
        let enabled = run_with_jobs(4, 2, |_| crate::telemetry::current().is_enabled());
        assert_eq!(enabled, vec![false; 4]);
    }
}
