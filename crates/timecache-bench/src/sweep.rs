//! The parallel sweep engine: fans independent simulation runs across
//! cores.
//!
//! Every paper artifact is a sweep over *independent* runs — each a pure
//! function of `(workload pair, security mode, RunParams)` with no shared
//! mutable state — so the experiment modules hand the engine a job count
//! and an indexed job function and get results back **in job order**,
//! regardless of which worker finished which job when. The pool is built
//! from `std::thread::scope` plus an atomic job cursor (no third-party
//! dependencies):
//!
//! * `jobs == 1` (or a single job) runs every job inline on the caller's
//!   thread in index order — bit-for-bit the pre-engine serial behavior,
//!   including the caller's thread-local telemetry handle;
//! * `jobs > 1` spawns `min(jobs, n)` workers that claim indices from a
//!   shared [`AtomicUsize`] cursor and deposit results into per-index
//!   slots.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! is overridden process-wide by the `experiments` binary's `--jobs N`
//! flag via [`set_jobs`].
//!
//! # Telemetry
//!
//! The run-scoped [`crate::telemetry`] handle is thread-local and its
//! sinks are `Rc`-shared, so workers cannot record into the caller's
//! handle directly. Instead, when the caller's handle is enabled each
//! worker installs its own enabled handle for the duration of the sweep
//! and ships a [`TelemetrySnapshot`] back at join; the engine absorbs the
//! snapshots into the caller's handle in worker order. Counters,
//! histograms, and phase profiles merge additively, so the merged totals
//! equal a serial run's (see `Telemetry::absorb`).
//!
//! # Progress output
//!
//! Job closures report progress through [`progress`], which writes each
//! message as one atomic line under the stderr lock so concurrent workers
//! never interleave partial lines.
//!
//! # Resilience
//!
//! [`run`] propagates a job panic and loses the whole sweep — fine for the
//! paper artifacts, wrong for long fault-injection campaigns. For those,
//! [`run_resilient`] isolates each job behind `catch_unwind`, retries it a
//! bounded number of times (with capped exponential spin backoff between
//! attempts), and reports survivors and failures side by side in a
//! [`SweepOutcome`]: one failed job costs one row, never the sweep.
//! [`run_checkpointed`] additionally journals every finished job to
//! `<name>.partial.jsonl` under the results directory, so a killed sweep
//! resumes from completed work — and because results are assembled in job
//! order, the resumed sweep's final artifact is byte-identical to an
//! uninterrupted run's. The journal is deleted once the sweep completes
//! with zero failures.

use std::fmt::Write as _;
use std::io::Write;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use timecache_telemetry::{encode, Telemetry, TelemetrySnapshot};

/// Process-wide worker-count override; 0 means "use all cores".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count for subsequent sweeps. `0` restores
/// the default (all cores); `1` forces serial execution.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count: the [`set_jobs`] override, or
/// [`std::thread::available_parallelism`] (falling back to 1) when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Writes one full progress line to stderr under the lock, so lines from
/// concurrent workers never interleave mid-line.
pub fn progress(msg: &str) {
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let _ = writeln!(out, "{msg}");
}

/// Runs jobs `0..n` with the process-wide worker count ([`jobs`]) and
/// returns their results indexed by job.
///
/// # Panics
///
/// Propagates any job panic to the caller (workers are joined by
/// `std::thread::scope`).
pub fn run<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_with_jobs(n, jobs(), job)
}

/// [`run`] with an explicit worker count.
pub fn run_with_jobs<T, F>(n: usize, num_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if num_jobs <= 1 || n <= 1 {
        // Inline serial path: identical to the historical behavior,
        // including use of the caller's thread-local telemetry.
        return (0..n).map(job).collect();
    }

    let workers = num_jobs.min(n);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // The caller's handle is not Send; capture only whether it is enabled
    // and absorb the workers' snapshots after the scope ends.
    let caller_tel = crate::telemetry::current();
    let record = caller_tel.is_enabled();
    // Workers inherit the caller's trace-event setting so a counter-only
    // sweep stays counter-only (and its absorb stays cheap) in parallel.
    let events_on = caller_tel.trace_events();
    let snapshots: Vec<Mutex<Option<TelemetrySnapshot>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let cursor = &cursor;
            let slots = &slots;
            let snapshots = &snapshots;
            let job = &job;
            scope.spawn(move || {
                let tel = if record {
                    let tel = Telemetry::enabled();
                    tel.set_trace_events(events_on);
                    crate::telemetry::set(&tel);
                    Some(tel)
                } else {
                    None
                };
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = job(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                }
                if let Some(tel) = tel {
                    *snapshots[worker].lock().expect("snapshot slot poisoned") =
                        Some(tel.snapshot());
                }
            });
        }
    });

    for slot in snapshots {
        if let Some(snap) = slot.into_inner().expect("snapshot slot poisoned") {
            caller_tel.absorb(&snap);
        }
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was claimed and completed")
        })
        .collect()
}

// ---------------------------------------------------------------------
// Resilient execution: panic isolation, bounded retry, checkpoint/resume.
// ---------------------------------------------------------------------

/// Retry policy for [`run_resilient`] / [`run_checkpointed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPolicy {
    /// How many times a panicking job is re-attempted before it is
    /// recorded as failed (so each job runs at most `1 + max_retries`
    /// times).
    pub max_retries: u32,
    /// Cap on the exponential spin backoff between attempts, in
    /// `spin_loop` iterations. The backoff is deterministic busy-work —
    /// no clocks — so sweeps stay reproducible.
    pub backoff_cap: u64,
}

impl Default for SweepPolicy {
    fn default() -> Self {
        SweepPolicy {
            max_retries: 1,
            backoff_cap: 1 << 16,
        }
    }
}

/// One job that kept panicking past its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The job index that failed.
    pub index: usize,
    /// Attempts made (always `1 + max_retries` here).
    pub attempts: u32,
    /// The final panic message.
    pub message: String,
}

/// Results of a resilient sweep: per-job slots (`None` where the job
/// failed) plus the failure records.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// Job results in index order; `None` marks a failed job.
    pub results: Vec<Option<T>>,
    /// Jobs that exhausted their retry budget, in index order.
    pub failures: Vec<JobFailure>,
}

impl<T> SweepOutcome<T> {
    /// Whether every job produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Renders a caught panic payload (the `&str`/`String` cases cover every
/// `panic!`/`assert!` in this workspace).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Deterministic capped-exponential busy-wait before retry `attempt`
/// (1-based): 128, 256, ... `spin_loop` iterations, capped at `cap`.
fn retry_backoff(attempt: u32, cap: u64) {
    let iters = (64u64 << attempt.min(16)).min(cap);
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

/// Runs `job(index)` with panic isolation and bounded retry.
fn attempt_job<T>(
    index: usize,
    policy: &SweepPolicy,
    job: &(impl Fn(usize) -> T + Sync),
) -> Result<T, JobFailure> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match std::panic::catch_unwind(AssertUnwindSafe(|| job(index))) {
            Ok(value) => return Ok(value),
            Err(payload) => {
                let message = panic_message(payload);
                if attempts > policy.max_retries {
                    return Err(JobFailure {
                        index,
                        attempts,
                        message,
                    });
                }
                progress(&format!(
                    "  job {index} panicked (attempt {attempts}): {message}; retrying"
                ));
                retry_backoff(attempts, policy.backoff_cap);
            }
        }
    }
}

/// [`run`], but one panicking job costs one result instead of the sweep:
/// each job runs behind `catch_unwind` with up to `policy.max_retries`
/// re-attempts, and jobs that keep panicking are reported as
/// [`JobFailure`]s alongside everyone else's results.
pub fn run_resilient<T, F>(n: usize, policy: SweepPolicy, job: F) -> SweepOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let attempted = run_with_jobs(n, jobs(), |i| attempt_job(i, &policy, &job));
    let mut results = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for outcome in attempted {
        match outcome {
            Ok(value) => results.push(Some(value)),
            Err(failure) => {
                results.push(None);
                failures.push(failure);
            }
        }
    }
    SweepOutcome { results, failures }
}

/// Checkpoint header line: identifies the sweep, its parameterisation
/// (`tag`), and the job count. A mismatch on resume means the checkpoint
/// belongs to a different configuration and is discarded.
fn checkpoint_header(name: &str, tag: &str, n: usize) -> String {
    let mut line = String::from("{\"sweep\":");
    encode::json_string(&mut line, name);
    line.push_str(",\"tag\":");
    encode::json_string(&mut line, tag);
    let _ = write!(line, ",\"jobs\":{n}}}");
    line
}

/// Checkpoint record line for one finished job.
fn checkpoint_record(index: usize, row: &str) -> String {
    let mut line = format!("{{\"job\":{index},\"row\":");
    encode::json_string(&mut line, row);
    line.push('}');
    line
}

/// Parses a [`checkpoint_record`] line; `None` for malformed input (a
/// torn final line from a killed run is expected and skipped).
fn parse_checkpoint_line(line: &str) -> Option<(usize, String)> {
    let rest = line.strip_prefix("{\"job\":")?;
    let comma = rest.find(',')?;
    let index: usize = rest[..comma].parse().ok()?;
    let rest = rest[comma..].strip_prefix(",\"row\":\"")?;
    let body = rest.strip_suffix("\"}")?;
    let mut row = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            // An unescaped quote would have ended the string: torn line.
            if c == '"' {
                return None;
            }
            row.push(c);
            continue;
        }
        match chars.next()? {
            '"' => row.push('"'),
            '\\' => row.push('\\'),
            'n' => row.push('\n'),
            'r' => row.push('\r'),
            't' => row.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                row.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some((index, row))
}

/// [`run_resilient`] with crash-resumable progress: every finished job is
/// appended (and flushed) to `<name>.partial.jsonl` under `dir`
/// (experiments pass [`crate::output::results_dir`]), and a rerun with
/// the same `name`, `tag`, and `n` skips jobs the journal already covers.
/// Rows cross the journal as strings via `encode_row`/`decode_row` (one
/// line per job; `decode_row` returning `None` re-runs that job). The
/// journal is removed when the sweep finishes with zero failures, so
/// `*.partial` files only linger for interrupted or failing sweeps.
///
/// # Errors
///
/// Returns an error if the journal cannot be written. Job panics never
/// surface here — they are [`JobFailure`]s.
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed<T, F>(
    dir: &std::path::Path,
    name: &str,
    tag: &str,
    n: usize,
    policy: SweepPolicy,
    encode_row: impl Fn(&T) -> String + Sync,
    decode_row: impl Fn(&str) -> Option<T>,
    job: F,
) -> std::io::Result<SweepOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.partial.jsonl"));
    let header = checkpoint_header(name, tag, n);

    let mut done: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if let Ok(text) = std::fs::read_to_string(&path) {
        let mut lines = text.lines();
        if lines.next() == Some(header.as_str()) {
            for line in lines {
                if let Some((index, row)) = parse_checkpoint_line(line) {
                    if index < n {
                        done[index] = decode_row(&row);
                    }
                }
            }
        }
    }
    let resumed = done.iter().filter(|d| d.is_some()).count();
    if resumed > 0 {
        progress(&format!(
            "  resuming {name}: {resumed}/{n} jobs restored from checkpoint"
        ));
    }

    // Rewrite the journal from the trusted rows, dropping a stale header
    // or torn tail before new records append.
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{header}")?;
    for (index, row) in done.iter().enumerate() {
        if let Some(row) = row {
            writeln!(file, "{}", checkpoint_record(index, &encode_row(row)))?;
        }
    }
    file.flush()?;
    let file = Mutex::new(file);

    let todo: Vec<usize> = (0..n).filter(|&i| done[i].is_none()).collect();
    let fresh = run_resilient(todo.len(), policy, |k| {
        let index = todo[k];
        let row = job(index);
        let record = checkpoint_record(index, &encode_row(&row));
        let mut f = file.lock().expect("checkpoint journal poisoned");
        let _ = writeln!(f, "{record}");
        let _ = f.flush();
        (index, row)
    });

    let failures: Vec<JobFailure> = fresh
        .failures
        .into_iter()
        .map(|f| JobFailure {
            index: todo[f.index],
            ..f
        })
        .collect();
    for (index, row) in fresh.results.into_iter().flatten() {
        done[index] = Some(row);
    }
    if failures.is_empty() {
        drop(file);
        let _ = std::fs::remove_file(&path);
    }
    Ok(SweepOutcome {
        results: done,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_land_by_job_index() {
        // Jobs with deliberately inverted costs: later jobs finish first
        // under parallel execution, yet results stay index-ordered.
        let job = |i: usize| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            i * 10
        };
        let serial = run_with_jobs(8, 1, job);
        let parallel = run_with_jobs(8, 4, job);
        assert_eq!(serial, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        // More workers than jobs must not deadlock or drop results.
        assert_eq!(run_with_jobs(2, 16, |i| i), vec![0, 1]);
        assert_eq!(run_with_jobs(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn jobs_override_round_trips() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn worker_telemetry_merges_into_caller_handle() {
        let tel = crate::telemetry::enable();
        let before = tel
            .registry()
            .unwrap()
            .counter_value("sweep_test_total", &[])
            .unwrap_or(0);
        run_with_jobs(6, 3, |_| {
            let worker_tel = crate::telemetry::current();
            worker_tel
                .registry()
                .unwrap()
                .counter("sweep_test_total", "Test.", &[])
                .inc();
        });
        assert_eq!(
            tel.registry()
                .unwrap()
                .counter_value("sweep_test_total", &[]),
            Some(before + 6)
        );
        crate::telemetry::disable();
    }

    #[test]
    fn disabled_telemetry_stays_disabled_in_workers() {
        crate::telemetry::disable();
        let enabled = run_with_jobs(4, 2, |_| crate::telemetry::current().is_enabled());
        assert_eq!(enabled, vec![false; 4]);
    }

    /// The default panic hook prints a message per caught panic; silence
    /// it for panicking-job tests so test output stays readable. Process
    /// global, so tests using it serialize on this lock.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static QUIET: Mutex<()> = Mutex::new(());
        let _guard = QUIET.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        std::panic::set_hook(prev);
        result
    }

    #[test]
    fn resilient_sweep_survives_a_panicking_job() {
        with_quiet_panics(|| {
            let policy = SweepPolicy {
                max_retries: 1,
                backoff_cap: 1 << 8,
            };
            let out = run_resilient(6, policy, |i| {
                assert!(i != 3, "job 3 always dies");
                i * 2
            });
            assert!(!out.is_complete());
            assert_eq!(out.results.len(), 6);
            assert_eq!(out.results[2], Some(4));
            assert_eq!(out.results[3], None);
            assert_eq!(out.failures.len(), 1);
            let f = &out.failures[0];
            assert_eq!((f.index, f.attempts), (3, 2));
            assert!(f.message.contains("job 3 always dies"), "{}", f.message);
        });
    }

    #[test]
    fn resilient_retry_rescues_a_transient_panic() {
        with_quiet_panics(|| {
            // Panics on every first attempt, succeeds on the retry.
            let tried: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            let out = run_resilient(4, SweepPolicy::default(), |i| {
                if tried[i].fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                i
            });
            assert!(out.is_complete());
            assert_eq!(
                out.results
                    .into_iter()
                    .map(Option::unwrap)
                    .collect::<Vec<_>>(),
                vec![0, 1, 2, 3]
            );
        });
    }

    #[test]
    fn checkpoint_lines_roundtrip() {
        let line = checkpoint_record(7, "a|b\"c\\d\ne");
        assert_eq!(
            parse_checkpoint_line(&line),
            Some((7, "a|b\"c\\d\ne".into()))
        );
        // Torn tails (killed mid-write) and garbage are skipped, not fatal.
        assert_eq!(parse_checkpoint_line(&line[..line.len() - 3]), None);
        assert_eq!(parse_checkpoint_line("not json"), None);
        assert_eq!(parse_checkpoint_line(""), None);
    }

    #[test]
    fn checkpointed_sweep_resumes_without_rerunning_done_jobs() {
        let dir = std::env::temp_dir().join("tc-sweep-ckpt-test");
        let _ = std::fs::remove_dir_all(&dir);

        let encode = |v: &usize| v.to_string();
        let decode = |s: &str| s.parse::<usize>().ok();
        let runs = AtomicUsize::new(0);
        let job = |i: usize| {
            runs.fetch_add(1, Ordering::Relaxed);
            i + 100
        };

        // Seed a checkpoint covering jobs 0 and 2 (plus a torn tail).
        let path = dir.join("ckpt_test.partial.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            &path,
            format!(
                "{}\n{}\n{}\n{{\"job\":4,\"row\":\"tor",
                checkpoint_header("ckpt_test", "v1", 5),
                checkpoint_record(0, "100"),
                checkpoint_record(2, "102"),
            ),
        )
        .unwrap();

        let out = run_checkpointed(
            &dir,
            "ckpt_test",
            "v1",
            5,
            SweepPolicy::default(),
            encode,
            decode,
            job,
        )
        .unwrap();
        assert!(out.is_complete());
        let values: Vec<usize> = out.results.into_iter().map(Option::unwrap).collect();
        assert_eq!(values, vec![100, 101, 102, 103, 104]);
        // Jobs 0 and 2 came from the journal; only 1, 3, 4 (torn) ran.
        assert_eq!(runs.load(Ordering::Relaxed), 3);
        // A clean finish removes the journal.
        assert!(!path.exists());

        // A tag change invalidates the journal: everything reruns.
        std::fs::write(
            &path,
            format!(
                "{}\n{}\n",
                checkpoint_header("ckpt_test", "v1", 5),
                checkpoint_record(0, "100"),
            ),
        )
        .unwrap();
        runs.store(0, Ordering::Relaxed);
        let out = run_checkpointed(
            &dir,
            "ckpt_test",
            "v2",
            5,
            SweepPolicy::default(),
            encode,
            decode,
            job,
        )
        .unwrap();
        assert!(out.is_complete());
        assert_eq!(runs.load(Ordering::Relaxed), 5);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_sweep_keeps_journal_on_failure() {
        with_quiet_panics(|| {
            let dir = std::env::temp_dir().join("tc-sweep-ckpt-fail-test");
            let _ = std::fs::remove_dir_all(&dir);

            let policy = SweepPolicy {
                max_retries: 0,
                backoff_cap: 1 << 8,
            };
            let out = run_checkpointed(
                &dir,
                "ckpt_fail",
                "v1",
                4,
                policy,
                |v: &usize| v.to_string(),
                |s| s.parse().ok(),
                |i| {
                    assert!(i != 1, "boom");
                    i
                },
            )
            .unwrap();
            assert_eq!(out.failures.len(), 1);
            assert_eq!(out.failures[0].index, 1);
            assert_eq!(out.results[1], None);
            // The journal survives for a later resume...
            let path = dir.join("ckpt_fail.partial.jsonl");
            assert!(path.exists());
            // ...and a rerun picks up the three finished jobs.
            let out = run_checkpointed(
                &dir,
                "ckpt_fail",
                "v1",
                4,
                policy,
                |v: &usize| v.to_string(),
                |s| s.parse().ok(),
                |i| i,
            )
            .unwrap();
            assert!(out.is_complete());
            assert!(!path.exists());

            let _ = std::fs::remove_dir_all(&dir);
        });
    }
}
