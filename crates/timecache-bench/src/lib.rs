//! # timecache-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! TimeCache paper's evaluation, plus dependency-free micro-benchmarks for
//! the mechanism itself (see [`microbench`]).
//!
//! Run experiments via the `experiments` binary:
//!
//! ```text
//! cargo run --release -p timecache-bench --bin experiments -- all
//! cargo run --release -p timecache-bench --bin experiments -- fig7
//! ```
//!
//! Each experiment prints a paper-style table to stdout and writes a CSV
//! under `results/`. Sweeps over independent runs are fanned across cores
//! by the [`sweep`] engine (`--jobs N` controls the worker count;
//! `--jobs 1` reproduces serial execution bit-for-bit). Passing
//! `--telemetry` (or running the dedicated `telemetry-demo` experiment)
//! additionally writes metrics, event-trace, profile, and manifest
//! artifacts via [`telemetry`]. See `DESIGN.md` for the experiment index
//! and `EXPERIMENTS.md` for paper-vs-measured records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp;
pub mod microbench;
pub mod output;
pub mod runner;
pub mod sweep;
pub mod telemetry;
