//! Run-scoped telemetry for the experiment harness.
//!
//! The harness keeps one [`Telemetry`] handle per *thread* (each simulated
//! run is single-threaded; sweeps parallelize across runs).
//! [`crate::runner`] hands the thread's current handle to every
//! [`timecache_os::System`] it builds, so enabling telemetry before an
//! experiment makes the entire run observable without threading a handle
//! through every experiment signature. Parallel sweeps via [`crate::sweep`]
//! give each worker thread its own enabled handle and merge the workers'
//! snapshots back into the caller's handle at join, so merged counter,
//! histogram, and profile totals equal a serial run's. After the run,
//! [`write_artifacts`] snapshots everything into [`crate::output::results_dir`]:
//!
//! * `<id>_metrics.prom` — Prometheus text exposition of all counters,
//!   gauges, and histograms;
//! * `<id>_metrics.json` — the same registry as JSON;
//! * `<id>_events.jsonl` — the bounded event trace, one JSON object per
//!   line;
//! * `<id>_profile.json` — per-process / per-context phase cycles;
//! * `<id>_manifest.json` — the run manifest tying the artifacts together
//!   (experiment id, event counts, artifact list).

use crate::output::results_dir;
use std::cell::RefCell;
use std::fs;
use std::io;
use std::path::PathBuf;
use timecache_telemetry::{encode, Telemetry};

thread_local! {
    static CURRENT: RefCell<Telemetry> = RefCell::new(Telemetry::disabled());
}

/// Installs a fresh enabled handle as the current run telemetry and
/// returns it.
pub fn enable() -> Telemetry {
    let tel = Telemetry::enabled();
    set(&tel);
    tel
}

/// Installs `tel` (a clone shares its sinks) as the current run telemetry.
pub fn set(tel: &Telemetry) {
    CURRENT.with(|c| *c.borrow_mut() = tel.clone());
}

/// Resets the current run telemetry to disabled.
pub fn disable() {
    set(&Telemetry::disabled());
}

/// The current run telemetry (disabled unless [`enable`]/[`set`] was
/// called). [`crate::runner`] attaches this to every system it builds.
pub fn current() -> Telemetry {
    CURRENT.with(|c| c.borrow().clone())
}

/// Writes the current telemetry state as artifacts named after `id` under
/// [`results_dir`], returning the written paths. A disabled handle writes
/// nothing and returns an empty list.
///
/// # Errors
///
/// Returns the underlying error if any artifact cannot be written.
pub fn write_artifacts(id: &str) -> io::Result<Vec<PathBuf>> {
    write_artifacts_from(id, &current())
}

/// [`write_artifacts`] for an explicit handle.
///
/// # Errors
///
/// Returns the underlying error if any artifact cannot be written.
pub fn write_artifacts_from(id: &str, tel: &Telemetry) -> io::Result<Vec<PathBuf>> {
    let (Some(reg), Some(tracer), Some(prof)) = (tel.registry(), tel.tracer(), tel.profiler())
    else {
        return Ok(Vec::new());
    };
    let dir = results_dir()?;
    let mut written = Vec::new();
    for (suffix, body) in [
        ("metrics.prom", reg.render_prometheus()),
        ("metrics.json", reg.render_json()),
        ("events.jsonl", tracer.to_jsonl()),
        ("profile.json", prof.render_json()),
    ] {
        let path = dir.join(format!("{id}_{suffix}"));
        fs::write(&path, body)?;
        written.push(path);
    }

    let mut manifest = String::from("{");
    encode::json_string(&mut manifest, "experiment");
    manifest.push(':');
    encode::json_string(&mut manifest, id);
    manifest.push_str(&format!(
        ",\"events_recorded\":{},\"events_dropped\":{},\"events_retained\":{}",
        tracer.recorded(),
        tracer.dropped(),
        tracer.len()
    ));
    manifest.push_str(",\"artifacts\":[");
    for (i, path) in written.iter().enumerate() {
        if i > 0 {
            manifest.push(',');
        }
        encode::json_string(&mut manifest, &path.file_name().unwrap().to_string_lossy());
    }
    manifest.push_str("]}");
    let path = dir.join(format!("{id}_manifest.json"));
    fs::write(&path, manifest)?;
    written.push(path);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_writes_nothing() {
        assert!(write_artifacts_from("noop", &Telemetry::disabled())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn artifacts_cover_all_sinks() {
        std::env::set_var("TIMECACHE_RESULTS", std::env::temp_dir().join("tc-results"));
        let tel = Telemetry::enabled();
        tel.registry()
            .unwrap()
            .counter("demo_total", "Demo.", &[])
            .add(3);
        tel.emit_at(
            7,
            timecache_telemetry::TraceEvent::Probe {
                attack: "demo",
                latency: 2,
                hit: true,
            },
        );
        let written = write_artifacts_from("unit_demo", &tel).unwrap();
        assert_eq!(written.len(), 5);
        let prom = fs::read_to_string(&written[0]).unwrap();
        assert!(prom.contains("demo_total 3"));
        let manifest = fs::read_to_string(written.last().unwrap()).unwrap();
        assert!(manifest.contains("\"experiment\":\"unit_demo\""));
        assert!(manifest.contains("\"events_recorded\":1"));
        assert!(manifest.contains("unit_demo_events.jsonl"));
        std::env::remove_var("TIMECACHE_RESULTS");
    }

    #[test]
    fn current_handle_is_swappable() {
        disable();
        assert!(!current().is_enabled());
        let tel = enable();
        assert!(current().is_enabled());
        tel.registry().unwrap().counter("x_total", "x", &[]).inc();
        assert_eq!(
            current().registry().unwrap().counter_value("x_total", &[]),
            Some(1)
        );
        disable();
        assert!(!current().is_enabled());
    }
}
