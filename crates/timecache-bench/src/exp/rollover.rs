//! Section VI-C: timestamp rollover. Narrow counters roll over constantly;
//! the defense must stay *correct* (the attack remains blind) at the cost
//! of extra first-access misses. This experiment sweeps the counter width
//! and reports both.

use crate::output::{print_table, write_csv};
use crate::runner::{compare_spec_pair, RunParams};
use crate::sweep;
use timecache_attacks::harness::run_microbenchmark;
use timecache_core::TimeCacheConfig;
use timecache_sim::SecurityMode;
use timecache_workloads::mixes;

/// Counter widths to sweep: 32 bits (the paper's choice, never rolls over
/// within a run), down to widths that roll over every few quanta.
pub const WIDTHS: [u8; 4] = [32, 26, 22, 20];

/// Runs the width sweep on one representative pair and re-checks security
/// at every width.
pub fn run(params: &RunParams) {
    let spec = mixes::all_pairs()
        .into_iter()
        .find(|p| p.label() == "2Xperlbench")
        .expect("perlbench pair exists");

    let header = ["ts-width", "overhead", "llc-fa-mpki", "attack-hits"];
    // One engine job per counter width; the security re-check rides along
    // in the job so an assertion failure surfaces at join.
    let rows = sweep::run(WIDTHS.len(), |i| {
        let width = WIDTHS[i];
        sweep::progress(&format!("  width {width} bits ..."));
        let p = RunParams {
            timestamp_bits: width,
            ..*params
        };
        let cmp = compare_spec_pair(&spec, &p);
        // Security must hold at every width: rollover only adds misses.
        let mb = run_microbenchmark(SecurityMode::TimeCache(TimeCacheConfig::new(width)), 3);
        assert_eq!(mb.hits, 0, "rollover must never re-open the channel");
        vec![
            format!("{width}"),
            format!("{:.4}", cmp.overhead()),
            format!("{:.4}", cmp.timecache.llc_first_access_mpki()),
            format!("{}/{}", mb.hits, mb.probes),
        ]
    });
    print_table(
        "Section VI-C: timestamp width sweep (2Xperlbench; rollover adds misses, never hits)",
        &header,
        &rows,
    );
    let path = write_csv("vi_c_rollover.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
