//! Fig. 10: sensitivity of the overhead to LLC size. The paper reports the
//! geometric-mean overhead falling from 1.13 % at 2 MB to 0.4 % at 4 MB
//! and 0.1 % at 8 MB — larger caches evict shared lines less often, so
//! fewer first-access misses recur.

use crate::exp::spec_sweep;
use crate::output::{geomean, print_table, write_csv};
use crate::runner::{Comparison, RunParams};

/// Paper-reported geomean overheads per LLC size.
pub const PAPER_OVERHEADS: [(u64, f64); 3] = [
    (2 * 1024 * 1024, 1.0113),
    (4 * 1024 * 1024, 1.004),
    (8 * 1024 * 1024, 1.001),
];

/// Runs the SPEC sweep at each LLC size and prints the trend.
pub fn run(params: &RunParams) {
    let header = ["llc", "geomean-overhead", "paper"];
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for (bytes, paper) in PAPER_OVERHEADS {
        eprintln!("LLC = {} MB", bytes >> 20);
        let p = RunParams {
            llc_bytes: bytes,
            ..*params
        };
        let sweep = spec_sweep(&p);
        let overheads: Vec<f64> = sweep.iter().map(Comparison::overhead).collect();
        let g = geomean(&overheads);
        measured.push(g);
        rows.push(vec![
            format!("{} MB", bytes >> 20),
            format!("{g:.4}"),
            format!("{paper:.4}"),
        ]);
    }
    print_table("Fig. 10: overhead vs LLC size", &header, &rows);
    if measured.windows(2).all(|w| w[1] <= w[0] + 0.002) {
        println!("trend: overhead shrinks with LLC size (matches the paper)");
    } else {
        println!("trend: WARNING — overhead did not shrink monotonically");
    }
    let path = write_csv("fig10_llc_sensitivity.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
