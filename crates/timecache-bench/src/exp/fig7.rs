//! Fig. 7: single-core SPEC2006 normalized execution time under TimeCache
//! (paper: geometric-mean overhead 1.13 %).

use crate::output::{geomean, print_table, write_csv};
use crate::runner::Comparison;
use timecache_workloads::mixes;

/// Renders Fig. 7's series (normalized execution time per workload pair)
/// from a completed SPEC sweep.
pub fn run(sweep: &[Comparison]) {
    let specs = mixes::all_pairs();
    let header = ["workload", "normalized-exec-time", "paper"];
    let rows: Vec<Vec<String>> = specs
        .iter()
        .zip(sweep)
        .map(|(spec, cmp)| {
            vec![
                spec.label(),
                format!("{:.4}", cmp.overhead()),
                format!("{:.4}", spec.paper_overhead),
            ]
        })
        .collect();
    print_table(
        "Fig. 7: normalized execution time (TimeCache / baseline), single core",
        &header,
        &rows,
    );
    let overheads: Vec<f64> = sweep.iter().map(Comparison::overhead).collect();
    println!(
        "geomean overhead: measured {:.2}%  paper {:.2}%",
        (geomean(&overheads) - 1.0) * 100.0,
        (mixes::PAPER_SPEC_GEOMEAN_OVERHEAD - 1.0) * 100.0
    );
    let path = write_csv("fig7_normalized_time.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
