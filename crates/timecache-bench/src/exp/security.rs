//! Section VI-A: security evaluation — the microbenchmark (VI-A.1) and
//! the RSA flush+reload key extraction (VI-A.2), under both modes.

use crate::output::{print_table, write_csv};
use crate::telemetry;
use timecache_attacks::harness::{run_microbenchmark_with_telemetry, timecache_mode};
use timecache_attacks::rsa_attack::run_rsa_attack;
use timecache_sim::SecurityMode;
use timecache_workloads::rsa::Mpi;

/// Runs both security demonstrations and prints pass/fail rows.
pub fn run() {
    let header = ["experiment", "mode", "signal", "verdict"];
    let mut rows = Vec::new();

    // VI-A.1 microbenchmark: 256-line shared array, 5 rounds.
    for (mode, name) in [
        (SecurityMode::Baseline, "baseline"),
        (timecache_mode(), "timecache"),
    ] {
        let r = run_microbenchmark_with_telemetry(mode, 5, &telemetry::current());
        let leaked = r.hits > 0;
        rows.push(vec![
            "microbenchmark (VI-A.1)".into(),
            name.into(),
            format!("{}/{} probe hits", r.hits, r.probes),
            if leaked {
                "LEAKS".into()
            } else {
                "defended".into()
            },
        ]);
    }

    // VI-A.2 RSA: 64-bit exponent for a quick but meaningful extraction.
    let key = Mpi::from_u64(0xC3A5_96E7_D188_3C2B);
    for (mode, name) in [
        (SecurityMode::Baseline, "baseline"),
        (timecache_mode(), "timecache"),
    ] {
        let r = run_rsa_attack(mode, &key);
        rows.push(vec![
            "rsa flush+reload (VI-A.2)".into(),
            name.into(),
            format!(
                "{:.1}% key bits, {}/{} windows decoded",
                r.accuracy * 100.0,
                r.decoded_windows,
                r.total_windows
            ),
            if r.decoded_windows > 0 {
                "LEAKS".into()
            } else {
                "defended".into()
            },
        ]);
    }

    print_table("Security evaluation (Section VI-A)", &header, &rows);
    println!("expected: baseline rows LEAK (attack works), timecache rows are defended");
    let path = write_csv("security_vi_a.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
