//! Ablation study of TimeCache's design choices:
//!
//! 1. **Snapshot save/restore** (Section V-B argues it is essential): with
//!    snapshots discarded, every context switch resets the caching context
//!    — behaviourally equivalent to flushing visibility — and the overhead
//!    balloons.
//! 2. **Bit-serial vs line-serial comparison** (Section V-C): cycles per
//!    context switch scale with timestamp width instead of line count.

use crate::exp::sweep_pairs;
use crate::output::{geomean, print_table, write_csv};
use crate::runner::{Comparison, RunParams};
use timecache_core::BitSerialComparator;
use timecache_workloads::mixes;

/// Runs the save/restore ablation over a few representative pairs and
/// prints the comparator-cost table analytically.
pub fn run(params: &RunParams) {
    // --- Ablation 1: discard snapshots. ---
    let labels = ["2Xperlbench", "2Xwrf", "2Xgobmk", "2Xh264ref"];
    let pairs: Vec<_> = mixes::all_pairs()
        .into_iter()
        .filter(|p| labels.contains(&p.label().as_str()))
        .collect();

    // Two engine sweeps over the same pairs: snapshots kept vs discarded.
    let kept = sweep_pairs(&pairs, params);
    let dropped = sweep_pairs(
        &pairs,
        &RunParams {
            discard_snapshots: true,
            ..*params
        },
    );

    let header = ["workload", "timecache", "no-save/restore"];
    let mut rows = Vec::new();
    let (mut with, mut without) = (Vec::new(), Vec::new());
    for (keep, drop) in kept.iter().zip(&dropped) {
        with.push(keep.overhead());
        without.push(drop.overhead());
        rows.push(vec![
            keep.label.clone(),
            format!("{:.4}", keep.overhead()),
            format!("{:.4}", drop.overhead()),
        ]);
    }
    rows.push(vec![
        "geomean".into(),
        format!("{:.4}", geomean(&with)),
        format!("{:.4}", geomean(&without)),
    ]);
    print_table(
        "Ablation: snapshot save/restore vs reset-on-switch (normalized time)",
        &header,
        &rows,
    );
    let path = write_csv("ablation_save_restore.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());

    // --- Ablation 2: comparator organisation. ---
    let header = ["cache", "lines", "bit-serial cycles", "line-serial cycles"];
    let rows: Vec<Vec<String>> = [
        ("32 KB L1", 512u64),
        ("2 MB LLC", 32768),
        ("8 MB LLC", 131072),
    ]
    .into_iter()
    .map(|(name, lines)| {
        vec![
            name.into(),
            lines.to_string(),
            BitSerialComparator::sweep_cycles(32).to_string(),
            // A line-serial comparator reads and compares one timestamp
            // per cycle.
            lines.to_string(),
        ]
    })
    .collect();
    print_table(
        "Ablation: bit-serial (O(width)) vs line-serial (O(lines)) comparison",
        &header,
        &rows,
    );
    let path = write_csv("ablation_comparator.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
    let _ = Comparison::overhead; // referenced for doc-link stability
}
