//! Section VI-D: s-bit save/restore cost at context switches.
//!
//! The paper computes the snapshot copy sizes per cache capacity (two
//! 64-byte transfers for a 64 KB L1, 256 for an 8 MB LLC), prices the DMA
//! at 1.08 µs per switch, and measures the resulting bookkeeping overhead
//! at 0.024 % of execution time. This experiment reproduces the transfer
//! table analytically and the bookkeeping share by measurement.

use crate::output::{print_table, write_csv};
use crate::runner::{run_spec_pair_mode, timecache_mode, Comparison, RunParams};
use crate::sweep;
use timecache_core::{SBitArray, Snapshot, TimestampWidth};
use timecache_sim::SecurityMode;
use timecache_workloads::mixes;

/// Prints the per-cache-size transfer table and the measured bookkeeping
/// share for one workload pair.
pub fn run(params: &RunParams) {
    // Analytical transfer table (Section VI-D). The per-line column shows
    // how a single-channel DMA would scale; the paper itself charges a
    // constant 1.08 us (2160 cycles) per switch, which is the default
    // model used by the performance runs.
    let header = [
        "cache",
        "lines",
        "s-bit bytes",
        "64B transfers",
        "per-line dma cycles (save+restore)",
    ];
    let per_line = 16u64; // ~1.08 us for the Table I hierarchy
    let mut rows = Vec::new();
    for (name, bytes) in [
        ("64 KB L1", 64 * 1024u64),
        ("32 KB L1 (Table I)", 32 * 1024),
        ("2 MB LLC (Table I)", 2 * 1024 * 1024),
        ("4 MB LLC", 4 * 1024 * 1024),
        ("8 MB LLC", 8 * 1024 * 1024),
    ] {
        let lines = (bytes / 64) as usize;
        let snap = Snapshot::new(SBitArray::new(lines), 0, TimestampWidth::default());
        let transfers = snap.transfer_lines() as u64;
        rows.push(vec![
            name.into(),
            lines.to_string(),
            snap.sbits().storage_bytes().to_string(),
            transfers.to_string(),
            (2 * transfers * per_line).to_string(),
        ]);
    }
    print_table(
        "Section VI-D: s-bit snapshot transfer costs",
        &header,
        &rows,
    );
    let path = write_csv("vi_d_transfer_costs.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());

    // Measured bookkeeping share (paper: ~0.024 % of execution time).
    let spec = &mixes::all_pairs()[1]; // 2Xlbm: plenty of switches
    sweep::progress(&format!(
        "  measuring bookkeeping share on {} ...",
        spec.label()
    ));
    // The two modes are independent: run them as engine jobs.
    let mut metrics = sweep::run(2, |i| {
        let mode = if i == 0 {
            SecurityMode::Baseline
        } else {
            timecache_mode(params)
        };
        run_spec_pair_mode(spec, mode, params)
    })
    .into_iter();
    let cmp = Comparison {
        label: spec.label(),
        baseline: metrics.next().expect("baseline run"),
        timecache: metrics.next().expect("timecache run"),
    };
    let share = cmp.timecache.tc_switch_cycles as f64 / cmp.timecache.cycles.max(1) as f64;
    println!(
        "context-switch bookkeeping: {} cycles over {} ({:.4}% of execution; paper 0.024%)",
        cmp.timecache.tc_switch_cycles,
        cmp.timecache.cycles,
        share * 100.0
    );
    let path = write_csv(
        "vi_d_bookkeeping.csv",
        &[
            "workload",
            "tc-switch-cycles",
            "total-cycles",
            "share-%",
            "paper-%",
        ],
        &[vec![
            spec.label(),
            cmp.timecache.tc_switch_cycles.to_string(),
            cmp.timecache.cycles.to_string(),
            format!("{:.4}", share * 100.0),
            "0.024".into(),
        ]],
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
