//! Fault-injection matrix: does the defense stay *safe* when its own
//! machinery misbehaves?
//!
//! Sweeps every fault scenario (forced/deferred rollover, dropped and
//! corrupted snapshots at save and restore, comparator glitches, mid-save
//! aborts) against both security modes, with the runtime security-invariant
//! checker ([`timecache_os::invariant`]) watching every access. The
//! expected asymmetry is the experiment's result:
//!
//! * **TimeCache**: zero invariant violations in every cell — injected
//!   faults degrade to conservative full s-bit resets (extra first-access
//!   misses), never to stale visibility;
//! * **Baseline**: violations in every cell — with no defense the second
//!   process freeloads on the first one's fills regardless of faults.
//!
//! The sweep runs through [`sweep::run_checkpointed`], so a killed run
//! resumes from `fault_matrix.partial.jsonl` and a panicking cell (see
//! `TIMECACHE_FAULT_SWEEP_PANIC` below) costs one row, not the matrix.
//! Artifacts: `fault_matrix.csv` and `fault_matrix.json`.
//!
//! Setting the env var `TIMECACHE_FAULT_SWEEP_PANIC=<job index>` makes
//! that cell panic on every attempt — a test/CI hook for exercising the
//! resilient engine's failure path end to end.

use crate::output::{print_table, results_dir, write_csv};
use crate::runner::RunParams;
use crate::sweep::{self, JobFailure, SweepPolicy};
use timecache_core::{FaultKind, FaultPlan, TimeCacheConfig, TriggerPoint};
use timecache_os::{programs::StridedLoop, System, SystemConfig};
use timecache_sim::{HierarchyConfig, SecurityMode};
use timecache_telemetry::encode;

/// The fault scenarios: every kind at its interesting trigger point(s),
/// plus a fault-free control row.
pub const SCENARIOS: [(&str, Option<(FaultKind, TriggerPoint)>); 9] = [
    ("none", None),
    (
        "force_rollover@rollover",
        Some((FaultKind::ForceRollover, TriggerPoint::Rollover)),
    ),
    (
        "defer_rollover@rollover",
        Some((FaultKind::DeferRollover, TriggerPoint::Rollover)),
    ),
    (
        "drop_snapshot@save",
        Some((FaultKind::DropSnapshot, TriggerPoint::Save)),
    ),
    (
        "drop_snapshot@restore",
        Some((FaultKind::DropSnapshot, TriggerPoint::Restore)),
    ),
    (
        "corrupt_snapshot@save",
        Some((FaultKind::CorruptSnapshot, TriggerPoint::Save)),
    ),
    (
        "corrupt_snapshot@restore",
        Some((FaultKind::CorruptSnapshot, TriggerPoint::Restore)),
    ),
    (
        "flip_comparator@compare",
        Some((FaultKind::FlipComparator, TriggerPoint::Compare)),
    ),
    (
        "abort_save@save",
        Some((FaultKind::AbortSave, TriggerPoint::Save)),
    ),
];

/// Jobs in the matrix: each scenario under baseline and TimeCache.
pub const JOBS: usize = SCENARIOS.len() * 2;

/// One completed matrix cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Scenario label from [`SCENARIOS`].
    pub scenario: String,
    /// "baseline" or "timecache".
    pub mode: String,
    /// Faults injected during the run.
    pub injected: u64,
    /// Injected faults the defense detected and neutralised.
    pub detected: u64,
    /// Security-invariant violations observed.
    pub violations: u64,
    /// Total simulated cycles.
    pub cycles: u64,
}

impl Row {
    /// One-line journal encoding (fields are pipe-free).
    fn encode(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.scenario, self.mode, self.injected, self.detected, self.violations, self.cycles
        )
    }

    fn decode(line: &str) -> Option<Row> {
        let mut parts = line.split('|');
        let scenario = parts.next()?.to_owned();
        let mode = parts.next()?.to_owned();
        let injected = parts.next()?.parse().ok()?;
        let detected = parts.next()?.parse().ok()?;
        let violations = parts.next()?.parse().ok()?;
        let cycles = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Row {
            scenario,
            mode,
            injected,
            detected,
            violations,
            cycles,
        })
    }

    /// The cell's security verdict, given its mode.
    fn verdict(&self) -> &'static str {
        match (self.mode.as_str(), self.violations) {
            ("timecache", 0) => "secure",
            ("timecache", _) => "VIOLATED",
            (_, 0) => "quiet",
            (_, _) => "leaks",
        }
    }
}

/// What the matrix established, for the driver's exit policy.
#[derive(Debug)]
pub struct FaultSweepSummary {
    /// Violations summed over completed TimeCache cells (must be 0).
    pub timecache_violations: u64,
    /// Violations summed over completed baseline cells (must be > 0: the
    /// checker has to catch the undefended leak, or it proves nothing).
    pub baseline_violations: u64,
    /// Completed baseline cells (guards the check above when cells fail).
    pub baseline_rows_completed: usize,
    /// Faults injected across all completed cells.
    pub total_injected: u64,
    /// Cells that kept panicking past the retry budget.
    pub failures: Vec<JobFailure>,
}

/// Instructions per process for one cell: enough for dozens of quanta
/// (and, at 14-bit timestamps, many rollovers) without dominating `all`.
fn cell_instructions(params: &RunParams) -> u64 {
    (params.measure_instructions / 1_000).clamp(2_000, 16_000)
}

/// Runs one cell of the matrix.
fn run_cell(index: usize, params: &RunParams) -> Row {
    if std::env::var("TIMECACHE_FAULT_SWEEP_PANIC").as_deref() == Ok(index.to_string().as_str()) {
        panic!("injected worker panic in fault-sweep job {index}");
    }
    let (label, fault) = SCENARIOS[index / 2];
    let timecache = index % 2 == 1;
    // 14-bit timestamps roll over every 16 Ki cycles — every few quanta —
    // so the rollover fault scenarios exercise real rollover traffic.
    let (mode_name, security) = if timecache {
        (
            "timecache",
            SecurityMode::TimeCache(TimeCacheConfig::new(14)),
        )
    } else {
        ("baseline", SecurityMode::Baseline)
    };
    let mut hier = HierarchyConfig::with_cores(1);
    hier.security = security;
    let cfg = SystemConfig {
        hierarchy: hier,
        quantum_cycles: 6_000,
        check_invariants: true,
        fault_plan: fault.map(|(kind, trigger)| {
            FaultPlan::new(kind, trigger, 0xFA17 + index as u64).with_rate(0.5)
        }),
        telemetry: crate::telemetry::current(),
        ..SystemConfig::default()
    };
    let mut sys = System::new(cfg).expect("fault-sweep config is valid");
    let instructions = cell_instructions(params);
    // Two processes time-sliced on one core over the *same* buffer: the
    // canonical sharing pattern the invariant checker must judge.
    sys.spawn(
        Box::new(StridedLoop::new(0x10_0000, 32 * 1024, 64)),
        0,
        0,
        Some(instructions),
    );
    sys.spawn(
        Box::new(StridedLoop::new(0x10_0000, 32 * 1024, 64)),
        0,
        0,
        Some(instructions),
    );
    let report = sys.run(u64::MAX);
    assert!(report.all_completed(), "fault-sweep cell did not complete");
    Row {
        scenario: label.to_owned(),
        mode: mode_name.to_owned(),
        injected: sys.fault_injections(),
        detected: sys.fault_detections(),
        violations: sys.invariant_violations(),
        cycles: report.total_cycles,
    }
}

/// Runs the matrix, prints it, writes `fault_matrix.csv` /
/// `fault_matrix.json`, and returns the summary for the exit policy.
pub fn run(params: &RunParams) -> FaultSweepSummary {
    eprintln!(
        "running fault-injection matrix ({} scenarios x 2 modes, {} jobs)...",
        SCENARIOS.len(),
        sweep::jobs()
    );
    let dir = results_dir().expect("results dir");
    let tag = format!("mi{}", cell_instructions(params));
    let outcome = sweep::run_checkpointed(
        &dir,
        "fault_matrix",
        &tag,
        JOBS,
        SweepPolicy::default(),
        Row::encode,
        Row::decode,
        |i| {
            let (label, _) = SCENARIOS[i / 2];
            let mode = if i % 2 == 1 { "timecache" } else { "baseline" };
            sweep::progress(&format!("  running {label} [{mode}] ..."));
            run_cell(i, params)
        },
    )
    .expect("fault-matrix checkpoint journal");

    let failed: std::collections::HashMap<usize, &JobFailure> =
        outcome.failures.iter().map(|f| (f.index, f)).collect();
    let header = [
        "scenario",
        "mode",
        "injected",
        "detected",
        "violations",
        "cycles",
        "verdict",
    ];
    let mut table = Vec::with_capacity(JOBS);
    let mut summary = FaultSweepSummary {
        timecache_violations: 0,
        baseline_violations: 0,
        baseline_rows_completed: 0,
        total_injected: 0,
        failures: outcome.failures.clone(),
    };
    for (i, slot) in outcome.results.iter().enumerate() {
        let (label, _) = SCENARIOS[i / 2];
        let mode = if i % 2 == 1 { "timecache" } else { "baseline" };
        match slot {
            Some(row) => {
                if mode == "timecache" {
                    summary.timecache_violations += row.violations;
                } else {
                    summary.baseline_violations += row.violations;
                    summary.baseline_rows_completed += 1;
                }
                summary.total_injected += row.injected;
                table.push(vec![
                    row.scenario.clone(),
                    row.mode.clone(),
                    row.injected.to_string(),
                    row.detected.to_string(),
                    row.violations.to_string(),
                    row.cycles.to_string(),
                    row.verdict().to_owned(),
                ]);
            }
            None => {
                let message = failed
                    .get(&i)
                    .map(|f| f.message.as_str())
                    .unwrap_or("unknown failure");
                table.push(vec![
                    label.to_owned(),
                    mode.to_owned(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("failed: {message}"),
                ]);
            }
        }
    }
    print_table(
        "Fault-injection matrix (invariant: no unpaid fast access; TimeCache must stay secure)",
        &header,
        &table,
    );
    let path = write_csv("fault_matrix.csv", &header, &table).expect("write csv");
    println!("wrote {}", path.display());

    let mut json = String::from("{\"jobs\":");
    let _ = std::fmt::Write::write_fmt(&mut json, format_args!("{JOBS}"));
    json.push_str(",\"failed\":[");
    for (k, f) in summary.failures.iter().enumerate() {
        if k > 0 {
            json.push(',');
        }
        let _ = std::fmt::Write::write_fmt(
            &mut json,
            format_args!(
                "{{\"job\":{},\"attempts\":{},\"message\":",
                f.index, f.attempts
            ),
        );
        encode::json_string(&mut json, &f.message);
        json.push('}');
    }
    let _ = std::fmt::Write::write_fmt(
        &mut json,
        format_args!(
            "],\"total_injected\":{},\"timecache_violations\":{},\"baseline_violations\":{}}}",
            summary.total_injected, summary.timecache_violations, summary.baseline_violations
        ),
    );
    let json_path = dir.join("fault_matrix.json");
    std::fs::write(&json_path, &json).expect("write fault_matrix.json");
    println!("wrote {}", json_path.display());

    if !summary.failures.is_empty() {
        eprintln!(
            "{} of {JOBS} cells failed after retries (see fault_matrix.csv)",
            summary.failures.len()
        );
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_roundtrip_through_the_journal_encoding() {
        let row = Row {
            scenario: "corrupt_snapshot@restore".into(),
            mode: "timecache".into(),
            injected: 12,
            detected: 12,
            violations: 0,
            cycles: 987654,
        };
        assert_eq!(Row::decode(&row.encode()), Some(row.clone()));
        assert_eq!(row.verdict(), "secure");
        assert_eq!(Row::decode("only|three|fields"), None);
        assert_eq!(Row::decode("a|b|1|2|3|4|extra"), None);
    }

    #[test]
    fn verdicts_reflect_mode_expectations() {
        let mut row = Row {
            scenario: "none".into(),
            mode: "baseline".into(),
            injected: 0,
            detected: 0,
            violations: 5,
            cycles: 1,
        };
        assert_eq!(row.verdict(), "leaks");
        row.violations = 0;
        assert_eq!(row.verdict(), "quiet");
        row.mode = "timecache".into();
        assert_eq!(row.verdict(), "secure");
        row.violations = 1;
        assert_eq!(row.verdict(), "VIOLATED");
    }

    #[test]
    fn one_cell_of_each_mode_behaves() {
        let params = RunParams::quick();
        // corrupt_snapshot@restore under TimeCache: faults fire, all are
        // detected, and the invariant holds.
        let tc = run_cell(13, &params);
        assert_eq!(tc.mode, "timecache");
        assert_eq!(tc.scenario, "corrupt_snapshot@restore");
        assert!(tc.injected > 0);
        assert_eq!(tc.violations, 0, "TimeCache cell must stay secure");
        // The same scenario under baseline leaks regardless of faults.
        let base = run_cell(12, &params);
        assert_eq!(base.mode, "baseline");
        assert!(base.violations > 0, "undefended sharing must be caught");
    }
}
