//! One module per paper artifact (table or figure), each exposing a
//! `run(params)` that prints the regenerated table and writes a CSV.

pub mod ablation;
pub mod area;
pub mod bench_sweep;
pub mod fault_sweep;
pub mod fig10;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod ftm;
pub mod leakage_sweep;
pub mod other_attacks;
pub mod rollover;
pub mod security;
pub mod switchcost;
pub mod table1;
pub mod table2;
pub mod telemetry_demo;

use crate::runner::{run_spec_pair_mode, timecache_mode, Comparison, RunParams};
use crate::sweep;
use timecache_sim::SecurityMode;
use timecache_workloads::mixes::{self, PairSpec};

/// Runs the full Table II SPEC sweep once — every pair from
/// [`mixes::all_pairs`] (15 same-benchmark + 9 mixed = 24 pairs as of this
/// writing; the count is whatever `all_pairs()` returns) under both
/// security modes. The results feed Fig. 7, Fig. 8, and Table II.
///
/// Each `(pair, mode)` run is an independent job fanned across cores by
/// [`crate::sweep`]; results are returned in pair order regardless of the
/// worker count.
pub fn spec_sweep(params: &RunParams) -> Vec<Comparison> {
    sweep_pairs(&mixes::all_pairs(), params)
}

/// [`spec_sweep`] over an explicit pair list (ablations and tests sweep
/// subsets).
pub fn sweep_pairs(pairs: &[PairSpec], params: &RunParams) -> Vec<Comparison> {
    let metrics = sweep::run(pairs.len() * 2, |i| {
        let spec = &pairs[i / 2];
        let (mode, name) = if i % 2 == 0 {
            (SecurityMode::Baseline, "baseline")
        } else {
            (timecache_mode(params), "timecache")
        };
        sweep::progress(&format!("  running {} [{name}] ...", spec.label()));
        run_spec_pair_mode(spec, mode, params)
    });
    let mut metrics = metrics.into_iter();
    pairs
        .iter()
        .map(|spec| {
            let baseline = metrics.next().expect("two runs per pair");
            let timecache = metrics.next().expect("two runs per pair");
            Comparison {
                label: spec.label(),
                baseline,
                timecache,
            }
        })
        .collect()
}
