//! One module per paper artifact (table or figure), each exposing a
//! `run(params)` that prints the regenerated table and writes a CSV.

pub mod ablation;
pub mod area;
pub mod fig10;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod ftm;
pub mod other_attacks;
pub mod rollover;
pub mod security;
pub mod switchcost;
pub mod table1;
pub mod table2;
pub mod telemetry_demo;

use crate::runner::{compare_spec_pair, Comparison, RunParams};
use timecache_workloads::mixes;

/// Runs the full Table II SPEC sweep (24 pairs, both modes) once; the
/// results feed Fig. 7, Fig. 8, and Table II.
pub fn spec_sweep(params: &RunParams) -> Vec<Comparison> {
    mixes::all_pairs()
        .iter()
        .map(|spec| {
            eprintln!("  running {} ...", spec.label());
            compare_spec_pair(spec, params)
        })
        .collect()
}
