//! Fig. 9: 2-core, 2-thread PARSEC normalized execution time (paper:
//! average overhead 0.8 %) and per-cache delayed-access MPKI.

use crate::output::{geomean, print_table, write_csv};
use crate::runner::{run_parsec_mode, timecache_mode, Comparison, RunParams};
use crate::sweep as engine;
use timecache_sim::SecurityMode;
use timecache_workloads::mixes;
use timecache_workloads::parsec::ParsecBenchmark;

/// Runs all PARSEC benchmarks under both modes, fanning each
/// `(benchmark, mode)` run across cores as an independent job.
pub fn sweep(params: &RunParams) -> Vec<Comparison> {
    let benches = ParsecBenchmark::ALL;
    let metrics = engine::run(benches.len() * 2, |i| {
        let bench = benches[i / 2];
        let (mode, name) = if i % 2 == 0 {
            (SecurityMode::Baseline, "baseline")
        } else {
            (timecache_mode(params), "timecache")
        };
        engine::progress(&format!("  running {bench} [{name}] ..."));
        run_parsec_mode(bench, mode, params)
    });
    let mut metrics = metrics.into_iter();
    benches
        .into_iter()
        .map(|bench| {
            let baseline = metrics.next().expect("two runs per benchmark");
            let timecache = metrics.next().expect("two runs per benchmark");
            Comparison {
                label: bench.name().to_owned(),
                baseline,
                timecache,
            }
        })
        .collect()
}

/// Renders Fig. 9a (normalized time) and Fig. 9b (per-cache first-access
/// MPKI) from a completed PARSEC sweep.
pub fn run(sweep: &[Comparison]) {
    // Fig. 9a.
    let header_a = ["benchmark", "normalized-exec-time", "paper"];
    let rows_a: Vec<Vec<String>> = ParsecBenchmark::ALL
        .into_iter()
        .zip(sweep)
        .map(|(b, cmp)| {
            vec![
                b.name().to_owned(),
                format!("{:.4}", cmp.overhead()),
                format!("{:.4}", b.paper_overhead()),
            ]
        })
        .collect();
    print_table(
        "Fig. 9a: PARSEC normalized execution time (2 threads, 2 cores)",
        &header_a,
        &rows_a,
    );
    let overheads: Vec<f64> = sweep.iter().map(Comparison::overhead).collect();
    println!(
        "mean overhead: measured {:.2}%  paper {:.2}%",
        (geomean(&overheads) - 1.0) * 100.0,
        (mixes::PAPER_PARSEC_MEAN_OVERHEAD - 1.0) * 100.0
    );
    let path =
        write_csv("fig9a_parsec_normalized_time.csv", &header_a, &rows_a).expect("write csv");
    println!("wrote {}", path.display());

    // Fig. 9b: per-cache delayed-access MPKI; L1s must be zero because the
    // threads never share a core.
    let header_b = ["benchmark", "l1i-fa-mpki", "l1d-fa-mpki", "llc-fa-mpki"];
    let rows_b: Vec<Vec<String>> = sweep
        .iter()
        .map(|cmp| {
            vec![
                cmp.label.clone(),
                format!("{:.4}", cmp.timecache.l1i_first_access_mpki()),
                format!("{:.4}", cmp.timecache.l1d_first_access_mpki()),
                format!("{:.4}", cmp.timecache.llc_first_access_mpki()),
            ]
        })
        .collect();
    print_table(
        "Fig. 9b: PARSEC delayed-access MPKI per cache",
        &header_b,
        &rows_b,
    );
    let path =
        write_csv("fig9b_parsec_first_access_mpki.csv", &header_b, &rows_b).expect("write csv");
    println!("wrote {}", path.display());
}
