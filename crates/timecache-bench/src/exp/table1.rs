//! Table I: the evaluation setup. Echoes the simulated-system
//! configuration so runs are self-describing.

use crate::output::{print_table, write_csv};
use timecache_os::SystemConfig;

/// Prints the simulated-system parameters (the gem5 half of Table I; the
/// "real processor" half has no analogue here — everything is simulated).
pub fn run() {
    let cfg = SystemConfig::default();
    let h = &cfg.hierarchy;
    let rows: Vec<Vec<String>> = vec![
        vec![
            "core model".into(),
            "in-order, 1 cycle/instr + memory stalls (TimingSimpleCPU-like)".into(),
        ],
        vec!["cores".into(), h.cores.to_string()],
        vec!["smt per core".into(), h.smt_per_core.to_string()],
        vec!["L1I".into(), h.l1i.geometry.to_string()],
        vec!["L1D".into(), h.l1d.geometry.to_string()],
        vec!["LLC".into(), h.llc.geometry.to_string()],
        vec!["L1 hit".into(), format!("{} cycles", h.latencies.l1_hit)],
        vec!["LLC hit".into(), format!("{} cycles", h.latencies.llc_hit)],
        vec!["DRAM".into(), format!("{} cycles", h.latencies.dram)],
        vec![
            "remote L1".into(),
            format!("{} cycles", h.latencies.remote_l1),
        ],
        vec![
            "scheduler quantum".into(),
            format!("{} cycles (1 ms @ 2 GHz)", cfg.quantum_cycles),
        ],
        vec!["timestamp width".into(), "32 bits".into()],
    ];
    print_table(
        "Table I: evaluation setup (simulated system)",
        &["parameter", "value"],
        &rows,
    );
    let path = write_csv("table1_setup.csv", &["parameter", "value"], &rows).expect("write csv");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_prints_without_panicking() {
        std::env::set_var("TIMECACHE_RESULTS", std::env::temp_dir().join("tc-results"));
        super::run();
        std::env::remove_var("TIMECACHE_RESULTS");
    }
}
