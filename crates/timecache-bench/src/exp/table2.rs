//! Table II: per-workload normalized execution time and LLC MPKI
//! (baseline vs TimeCache), paper-reported values alongside measured ones.

use crate::output::{geomean, print_table, write_csv};
use crate::runner::Comparison;
use timecache_workloads::mixes;

/// Renders Table II from a completed SPEC sweep (and optionally the PARSEC
/// comparisons appended below, as the paper's table does).
pub fn run(sweep: &[Comparison], parsec: &[Comparison]) {
    let specs = mixes::all_pairs();
    assert_eq!(sweep.len(), specs.len(), "sweep must cover all pairs");

    let header = [
        "workload",
        "overhead",
        "mpki-base",
        "mpki-tc",
        "paper-ovh",
        "paper-mpki-base",
        "paper-mpki-tc",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (spec, cmp) in specs.iter().zip(sweep) {
        rows.push(vec![
            spec.label(),
            format!("{:.4}", cmp.overhead()),
            format!("{:.4}", cmp.baseline.llc_mpki()),
            format!("{:.4}", cmp.timecache.llc_mpki()),
            format!("{:.4}", spec.paper_overhead),
            format!("{:.4}", spec.paper_mpki_baseline),
            format!("{:.4}", spec.paper_mpki_timecache),
        ]);
    }
    let overheads: Vec<f64> = sweep.iter().map(Comparison::overhead).collect();
    rows.push(vec![
        "geomean(spec)".into(),
        format!("{:.4}", geomean(&overheads)),
        String::new(),
        String::new(),
        format!("{:.4}", mixes::PAPER_SPEC_GEOMEAN_OVERHEAD),
        String::new(),
        String::new(),
    ]);

    for cmp in parsec {
        let bench = timecache_workloads::parsec::ParsecBenchmark::ALL
            .into_iter()
            .find(|b| b.name() == cmp.label)
            .expect("parsec label");
        rows.push(vec![
            cmp.label.clone(),
            format!("{:.4}", cmp.overhead()),
            format!("{:.4}", cmp.baseline.llc_mpki()),
            format!("{:.4}", cmp.timecache.llc_mpki()),
            format!("{:.4}", bench.paper_overhead()),
            format!("{:.4}", bench.paper_baseline_mpki()),
            String::new(),
        ]);
    }
    if !parsec.is_empty() {
        let po: Vec<f64> = parsec.iter().map(Comparison::overhead).collect();
        rows.push(vec![
            "geomean(parsec)".into(),
            format!("{:.4}", geomean(&po)),
            String::new(),
            String::new(),
            format!("{:.4}", mixes::PAPER_PARSEC_MEAN_OVERHEAD),
            String::new(),
            String::new(),
        ]);
    }

    print_table(
        "Table II: execution-time overhead and LLC MPKI (measured vs paper)",
        &header,
        &rows,
    );
    let path = write_csv("table2_overhead_mpki.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
