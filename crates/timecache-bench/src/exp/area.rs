//! Area scaling (Section VI-C): the cost of the timestamp/s-bit SRAM
//! array as a fraction of the data array, for the full per-context bit map
//! and for the limited-pointer alternative the paper points at for
//! many-context server LLCs.

use crate::output::{print_table, write_csv};
use timecache_core::{AreaModel, TimestampWidth};

/// Prints the area table across context counts for the Table I LLC.
pub fn run() {
    let header = [
        "contexts",
        "full map (% of data array)",
        "limited k=2 (%)",
        "limited k=4 (%)",
    ];
    let mut rows = Vec::new();
    for contexts in [2usize, 4, 8, 16, 32, 64, 128] {
        let m = AreaModel::new(32768, contexts, TimestampWidth::new(32), 64);
        let lk2 = if contexts >= 2 {
            format!("{:.2}", m.limited_overhead_fraction(2) * 100.0)
        } else {
            String::new()
        };
        let lk4 = if contexts >= 4 {
            format!("{:.2}", m.limited_overhead_fraction(4) * 100.0)
        } else {
            String::new()
        };
        rows.push(vec![
            contexts.to_string(),
            format!("{:.2}", m.total_overhead_fraction() * 100.0),
            lk2,
            lk4,
        ]);
    }
    print_table(
        "Section VI-C: area overhead of the 8-T timestamp/s-bit array (2 MB LLC)",
        &header,
        &rows,
    );
    println!("the full map grows linearly with hardware contexts; limited pointers");
    println!("(Agarwal et al.) keep it O(k log n) — the paper's scaling suggestion.");
    let path = write_csv("vi_c_area.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    #[test]
    fn area_table_prints() {
        std::env::set_var("TIMECACHE_RESULTS", std::env::temp_dir().join("tc-results"));
        super::run();
        std::env::remove_var("TIMECACHE_RESULTS");
    }
}
