//! FTM comparison (Section VIII-B2): the paper argues its threat model is
//! strictly stronger than First Time Miss's. This experiment makes the
//! comparison executable: a security matrix (which attacker placements each
//! defense stops) and a performance comparison on the Table II pairs.

use crate::output::{geomean, print_table, write_csv};
use crate::runner::{run_spec_pair_mode, RunParams};
use timecache_attacks::harness::timecache_mode;
use timecache_attacks::rsa_attack::run_rsa_attack;
use timecache_attacks::spectre::run_spectre;
use timecache_sim::SecurityMode;
use timecache_workloads::mixes;
use timecache_workloads::rsa::Mpi;

/// Runs the security matrix and the overhead comparison.
pub fn run(params: &RunParams) {
    // --- Security matrix: same-core RSA extraction + spectre. ---
    let key = Mpi::from_u64(0xB5C3_9A6D);
    let secret = b"ftm-test";
    let header = ["attack (same core)", "baseline", "ftm", "timecache"];
    let mut rows = Vec::new();

    eprintln!("  same-core rsa extraction under three modes ...");
    let rsa = |mode: SecurityMode| {
        let r = run_rsa_attack(mode, &key);
        format!("{:.0}% of key", r.accuracy * 100.0)
    };
    rows.push(vec![
        "rsa flush+reload".into(),
        rsa(SecurityMode::Baseline),
        rsa(SecurityMode::Ftm),
        rsa(timecache_mode()),
    ]);

    eprintln!("  same-core spectre-v1 under three modes ...");
    let sp = |mode: SecurityMode| {
        let r = run_spectre(mode, secret);
        format!("{:.0}% of secret", r.accuracy() * 100.0)
    };
    rows.push(vec![
        "spectre-v1".into(),
        sp(SecurityMode::Baseline),
        sp(SecurityMode::Ftm),
        sp(timecache_mode()),
    ]);

    print_table(
        "FTM comparison (VIII-B2): same-core attacks (FTM requires core isolation)",
        &header,
        &rows,
    );
    let path = write_csv("viii_b2_ftm_security.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());

    // --- Overhead comparison on a few representative pairs. ---
    let labels = ["2Xperlbench", "2Xlbm", "2Xgobmk", "2Xnamd"];
    let pairs: Vec<_> = mixes::all_pairs()
        .into_iter()
        .filter(|p| labels.contains(&p.label().as_str()))
        .collect();
    let header = ["workload", "ftm", "timecache"];
    let mut rows = Vec::new();
    let (mut f_ovh, mut t_ovh) = (Vec::new(), Vec::new());
    for spec in &pairs {
        eprintln!("  measuring {} ...", spec.label());
        let base = run_spec_pair_mode(spec, SecurityMode::Baseline, params);
        let ftm = run_spec_pair_mode(spec, SecurityMode::Ftm, params);
        let tc = run_spec_pair_mode(spec, timecache_mode(), params);
        let fo = ftm.cycles as f64 / base.cycles.max(1) as f64;
        let to = tc.cycles as f64 / base.cycles.max(1) as f64;
        f_ovh.push(fo);
        t_ovh.push(to);
        rows.push(vec![spec.label(), format!("{fo:.4}"), format!("{to:.4}")]);
    }
    rows.push(vec![
        "geomean".into(),
        format!("{:.4}", geomean(&f_ovh)),
        format!("{:.4}", geomean(&t_ovh)),
    ]);
    print_table(
        "FTM comparison: normalized execution time (both defenses are cheap; \
         only TimeCache also covers same-core and SMT attackers)",
        &header,
        &rows,
    );
    let path = write_csv("viii_b2_ftm_overhead.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
