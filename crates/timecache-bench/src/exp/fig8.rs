//! Fig. 8: delayed-access (first-access) MPKI at each cache level for the
//! single-core SPEC runs.

use crate::output::{print_table, write_csv};
use crate::runner::Comparison;

/// Renders Fig. 8's per-level first-access MPKI series from a completed
/// SPEC sweep (TimeCache runs; the baseline has no first accesses by
/// construction).
pub fn run(sweep: &[Comparison]) {
    let header = ["workload", "l1i-fa-mpki", "l1d-fa-mpki", "llc-fa-mpki"];
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|cmp| {
            vec![
                cmp.label.clone(),
                format!("{:.4}", cmp.timecache.l1i_first_access_mpki()),
                format!("{:.4}", cmp.timecache.l1d_first_access_mpki()),
                format!("{:.4}", cmp.timecache.llc_first_access_mpki()),
            ]
        })
        .collect();
    print_table(
        "Fig. 8: delayed-access (first-access) MPKI per cache level",
        &header,
        &rows,
    );
    // The paper's qualitative observation: the LLC retains more shared
    // content, so its first-access MPKI dominates the L1s' for most
    // workloads.
    let llc_dominates = sweep
        .iter()
        .filter(|c| {
            c.timecache.llc_first_access_mpki()
                >= c.timecache.l1d_first_access_mpki().max(0.0001) * 0.5
        })
        .count();
    println!(
        "LLC first-access MPKI >= half of L1D's in {llc_dominates}/{} workloads",
        sweep.len()
    );
    let path = write_csv("fig8_first_access_mpki.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
