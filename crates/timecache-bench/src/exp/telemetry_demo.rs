//! `telemetry-demo`: an end-to-end tour of the observability spine.
//!
//! Runs a SPEC pair under TimeCache and the Section VI-A.1 flush+reload
//! microbenchmark with telemetry enabled, prints the headline counters and
//! the per-process phase breakdown, and writes the full artifact set
//! (Prometheus text + JSON metrics, JSONL event trace, phase profile, run
//! manifest) under `results/`.

use crate::output::print_table;
use crate::runner::{compare_spec_pair, RunParams};
use crate::telemetry;
use timecache_attacks::harness::{run_microbenchmark_with_telemetry, timecache_mode};
use timecache_telemetry::Phase;
use timecache_workloads::mixes;

/// Runs the demo and writes the `telemetry_demo_*` artifacts.
pub fn run(params: &RunParams) {
    let tel = telemetry::enable();

    let spec = &mixes::same_benchmark_pairs()[0];
    eprintln!("  running {} with telemetry ...", spec.label());
    let cmp = compare_spec_pair(spec, params);
    eprintln!("  running flush+reload microbenchmark with telemetry ...");
    let micro = run_microbenchmark_with_telemetry(timecache_mode(), 3, &tel);

    let reg = tel.registry().expect("telemetry is enabled");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for cache in ["l1i", "l1d", "llc"] {
        for outcome in ["hit", "first_access", "miss"] {
            let v = reg
                .counter_value(
                    "sim_cache_accesses_total",
                    &[("cache", cache), ("outcome", outcome)],
                )
                .unwrap_or(0);
            rows.push(vec![
                format!("sim_cache_accesses_total{{cache={cache},outcome={outcome}}}"),
                v.to_string(),
            ]);
        }
    }
    for name in [
        "os_context_switches_total",
        "os_snapshot_saves_total",
        "sim_switch_restores_total",
        "sim_switch_transfer_lines_total",
        "sim_clflush_total",
    ] {
        rows.push(vec![
            name.to_string(),
            reg.counter_value(name, &[]).unwrap_or(0).to_string(),
        ]);
    }
    print_table(
        "telemetry-demo: headline counters (SPEC pair + flush+reload)",
        &["metric", "value"],
        &rows,
    );

    let prof = tel.profiler().expect("telemetry is enabled");
    let prows: Vec<Vec<String>> = (0..prof.num_processes() as u32)
        .map(|pid| {
            let pc = prof.process_cycles(pid);
            vec![
                format!("pid {pid}"),
                pc.get(Phase::Compute).to_string(),
                pc.get(Phase::MemoryStall).to_string(),
                pc.get(Phase::SwitchCost).to_string(),
                pc.total().to_string(),
            ]
        })
        .collect();
    print_table(
        "telemetry-demo: per-process phase cycles",
        &["process", "compute", "memory-stall", "switch-cost", "total"],
        &prows,
    );

    println!(
        "spec overhead {:.4}; microbenchmark {}/{} probe hits (TimeCache)",
        cmp.overhead(),
        micro.hits,
        micro.probes
    );

    let written = telemetry::write_artifacts("telemetry_demo").expect("write artifacts");
    for path in &written {
        println!("wrote {}", path.display());
    }
    telemetry::disable();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_writes_the_full_artifact_set() {
        std::env::set_var(
            "TIMECACHE_RESULTS",
            std::env::temp_dir().join("tc-results-demo"),
        );
        run(&RunParams::quick());
        let dir = crate::output::results_dir().unwrap();
        for suffix in [
            "metrics.prom",
            "metrics.json",
            "events.jsonl",
            "profile.json",
            "manifest.json",
        ] {
            let path = dir.join(format!("telemetry_demo_{suffix}"));
            let meta = std::fs::metadata(&path).expect("artifact exists");
            assert!(meta.len() > 0, "{path:?} is empty");
        }
        let prom = std::fs::read_to_string(dir.join("telemetry_demo_metrics.prom")).unwrap();
        assert!(prom.contains("sim_cache_accesses_total"));
        assert!(prom.contains("attack_probe_latency_cycles_bucket"));
        std::env::remove_var("TIMECACHE_RESULTS");
    }
}
