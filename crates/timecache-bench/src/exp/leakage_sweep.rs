//! Statistical leakage-assessment matrix (TVLA-style) over the full
//! attack-primitive suite.
//!
//! For every channel in [`timecache_oracle::Channel::ALL`] the sweep runs
//! the oracle's fixed-vs-random style assessment
//! ([`timecache_oracle::assess`]): the attacker's per-round measurements
//! are collected in two arms — victim active vs victim idle — under both
//! the undefended baseline and the channel's own defense configuration,
//! and Welch's t-statistic is computed per arm pair. The expected
//! asymmetry *is* the experiment's result:
//!
//! * **baseline**: |t| > 4.5 for every channel — the primitive works, so
//!   the two arms are distinguishable;
//! * **defended**: |t| < 4.5 for every channel — the defense collapses
//!   the arms into the same distribution.
//!
//! One job per channel (each job runs both arms, so a row is internally
//! consistent even if another row fails). The sweep runs through
//! [`sweep::run_checkpointed`], so a killed run resumes from
//! `leakage_matrix.partial.jsonl`, and the CSV is byte-identical for any
//! `--jobs` value because every cell is a pure function of its index.
//! Artifacts: `leakage_matrix.csv` and `leakage_matrix.json`.

use crate::output::{print_table, results_dir, write_csv};
use crate::runner::RunParams;
use crate::sweep::{self, JobFailure, SweepPolicy};
use timecache_oracle::{assess, Assessment, Channel, LEAKAGE_THRESHOLD};
use timecache_telemetry::encode;

/// Jobs in the matrix: one per attack primitive.
pub const JOBS: usize = Channel::ALL.len();

/// One completed matrix row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Channel name, e.g. "flush+reload".
    pub channel: String,
    /// The defense configuration the defended arm ran under.
    pub defense: String,
    /// Measurement rounds per arm.
    pub rounds: usize,
    /// Welch's t between the active/idle arms at baseline.
    pub t_baseline: f64,
    /// Welch's t between the active/idle arms under the defense.
    pub t_defended: f64,
}

impl Row {
    fn from_assessment(a: &Assessment) -> Row {
        Row {
            channel: a.channel.name().to_owned(),
            defense: a.channel.defense().to_owned(),
            rounds: a.rounds,
            t_baseline: a.t_baseline,
            t_defended: a.t_defended,
        }
    }

    /// One-line journal encoding. The t-statistics use `f64`'s shortest
    /// round-trip `Display`, so decode(encode(row)) == row exactly and a
    /// resumed sweep reproduces the same CSV bytes as a fresh one.
    fn encode(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.channel, self.defense, self.rounds, self.t_baseline, self.t_defended
        )
    }

    fn decode(line: &str) -> Option<Row> {
        let mut parts = line.split('|');
        let channel = parts.next()?.to_owned();
        let defense = parts.next()?.to_owned();
        let rounds = parts.next()?.parse().ok()?;
        let t_baseline = parts.next()?.parse().ok()?;
        let t_defended = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Row {
            channel,
            defense,
            rounds,
            t_baseline,
            t_defended,
        })
    }

    /// The row's verdict against the TVLA threshold: the baseline arm must
    /// leak and the defended arm must not.
    fn verdict(&self) -> &'static str {
        match (
            self.t_baseline.abs() > LEAKAGE_THRESHOLD,
            self.t_defended.abs() < LEAKAGE_THRESHOLD,
        ) {
            (true, true) => "eliminated",
            (true, false) => "STILL LEAKS",
            (false, true) => "NO BASELINE LEAK",
            (false, false) => "BROKEN",
        }
    }
}

/// What the matrix established, for the driver's exit policy.
#[derive(Debug)]
pub struct LeakageSweepSummary {
    /// Completed rows where the baseline arm failed to leak (|t| <= 4.5):
    /// the primitive didn't demonstrate itself, so its defended silence
    /// proves nothing.
    pub baseline_silent: usize,
    /// Completed rows where the defended arm still leaks (|t| >= 4.5).
    pub defended_leaks: usize,
    /// Rows that completed.
    pub rows_completed: usize,
    /// Cells that kept panicking past the retry budget.
    pub failures: Vec<JobFailure>,
}

/// Measurement rounds per arm for one cell. Quick runs use the floor —
/// the arms are deterministic, so the t-statistic saturates quickly and
/// extra rounds only sharpen it.
fn cell_rounds(params: &RunParams) -> usize {
    (params.measure_instructions / 200_000).clamp(24, 96) as usize
}

/// Runs one row of the matrix and records its t-statistics as telemetry
/// gauges when a registry is attached.
fn run_cell(index: usize, params: &RunParams) -> Row {
    let channel = Channel::ALL[index];
    let a = assess(channel, cell_rounds(params));
    if let Some(reg) = crate::telemetry::current().registry() {
        for (config, t) in [("baseline", a.t_baseline), ("defended", a.t_defended)] {
            reg.gauge(
                "leakage_welch_t",
                "Welch's t-statistic between the victim-active and victim-idle arms.",
                &[("channel", channel.name()), ("config", config)],
            )
            .set(t);
        }
    }
    Row::from_assessment(&a)
}

/// Runs the matrix, prints it, writes `leakage_matrix.csv` /
/// `leakage_matrix.json`, and returns the summary for the exit policy.
pub fn run(params: &RunParams) -> LeakageSweepSummary {
    eprintln!(
        "running leakage-assessment matrix ({} channels x 2 configs, {} jobs)...",
        Channel::ALL.len(),
        sweep::jobs()
    );
    let dir = results_dir().expect("results dir");
    let tag = format!("r{}", cell_rounds(params));
    let outcome = sweep::run_checkpointed(
        &dir,
        "leakage_matrix",
        &tag,
        JOBS,
        SweepPolicy::default(),
        Row::encode,
        Row::decode,
        |i| {
            sweep::progress(&format!("  assessing {} ...", Channel::ALL[i].name()));
            run_cell(i, params)
        },
    )
    .expect("leakage-matrix checkpoint journal");

    let failed: std::collections::HashMap<usize, &JobFailure> =
        outcome.failures.iter().map(|f| (f.index, f)).collect();
    let header = [
        "channel",
        "defense",
        "rounds",
        "t_baseline",
        "t_defended",
        "verdict",
    ];
    let mut table = Vec::with_capacity(JOBS);
    let mut summary = LeakageSweepSummary {
        baseline_silent: 0,
        defended_leaks: 0,
        rows_completed: 0,
        failures: outcome.failures.clone(),
    };
    for (i, slot) in outcome.results.iter().enumerate() {
        let channel = Channel::ALL[i];
        match slot {
            Some(row) => {
                summary.rows_completed += 1;
                if row.t_baseline.abs() <= LEAKAGE_THRESHOLD {
                    summary.baseline_silent += 1;
                }
                if row.t_defended.abs() >= LEAKAGE_THRESHOLD {
                    summary.defended_leaks += 1;
                }
                table.push(vec![
                    row.channel.clone(),
                    row.defense.clone(),
                    row.rounds.to_string(),
                    format!("{:.2}", row.t_baseline),
                    format!("{:.2}", row.t_defended),
                    row.verdict().to_owned(),
                ]);
            }
            None => {
                let message = failed
                    .get(&i)
                    .map(|f| f.message.as_str())
                    .unwrap_or("unknown failure");
                table.push(vec![
                    channel.name().to_owned(),
                    channel.defense().to_owned(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("failed: {message}"),
                ]);
            }
        }
    }
    print_table(
        &format!(
            "Leakage assessment (Welch's t, threshold {LEAKAGE_THRESHOLD}: baseline must \
             exceed it, defended must stay below)"
        ),
        &header,
        &table,
    );
    let path = write_csv("leakage_matrix.csv", &header, &table).expect("write csv");
    println!("wrote {}", path.display());

    let mut json = String::from("{\"jobs\":");
    let _ = std::fmt::Write::write_fmt(&mut json, format_args!("{JOBS}"));
    let _ = std::fmt::Write::write_fmt(
        &mut json,
        format_args!(",\"threshold\":{LEAKAGE_THRESHOLD},\"rows\":["),
    );
    let mut first = true;
    for slot in outcome.results.iter() {
        let Some(row) = slot else { continue };
        if !first {
            json.push(',');
        }
        first = false;
        json.push_str("{\"channel\":");
        encode::json_string(&mut json, &row.channel);
        json.push_str(",\"defense\":");
        encode::json_string(&mut json, &row.defense);
        let _ = std::fmt::Write::write_fmt(
            &mut json,
            format_args!(
                ",\"rounds\":{},\"t_baseline\":{},\"t_defended\":{},\"verdict\":",
                row.rounds, row.t_baseline, row.t_defended
            ),
        );
        encode::json_string(&mut json, row.verdict());
        json.push('}');
    }
    json.push_str("],\"failed\":[");
    for (k, f) in summary.failures.iter().enumerate() {
        if k > 0 {
            json.push(',');
        }
        let _ = std::fmt::Write::write_fmt(
            &mut json,
            format_args!(
                "{{\"job\":{},\"attempts\":{},\"message\":",
                f.index, f.attempts
            ),
        );
        encode::json_string(&mut json, &f.message);
        json.push('}');
    }
    let _ = std::fmt::Write::write_fmt(
        &mut json,
        format_args!(
            "],\"baseline_silent\":{},\"defended_leaks\":{}}}",
            summary.baseline_silent, summary.defended_leaks
        ),
    );
    let json_path = dir.join("leakage_matrix.json");
    std::fs::write(&json_path, &json).expect("write leakage_matrix.json");
    println!("wrote {}", json_path.display());

    if !summary.failures.is_empty() {
        eprintln!(
            "{} of {JOBS} cells failed after retries (see leakage_matrix.csv)",
            summary.failures.len()
        );
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_roundtrip_through_the_journal_encoding() {
        let row = Row {
            channel: "flush+reload".into(),
            defense: "timecache".into(),
            rounds: 40,
            t_baseline: 123.456789012345,
            t_defended: 0.0,
        };
        assert_eq!(Row::decode(&row.encode()), Some(row.clone()));
        assert_eq!(row.verdict(), "eliminated");
        assert_eq!(Row::decode("only|three|fields"), None);
        assert_eq!(Row::decode("a|b|1|2.0|3.0|extra"), None);
    }

    #[test]
    fn verdicts_cover_both_failure_directions() {
        let mut row = Row {
            channel: "covert".into(),
            defense: "timecache".into(),
            rounds: 24,
            t_baseline: 80.0,
            t_defended: 9.0,
        };
        assert_eq!(row.verdict(), "STILL LEAKS");
        row.t_defended = 0.3;
        assert_eq!(row.verdict(), "eliminated");
        row.t_baseline = 1.0;
        assert_eq!(row.verdict(), "NO BASELINE LEAK");
    }

    #[test]
    fn one_cell_passes_end_to_end() {
        let params = RunParams::quick();
        let row = run_cell(0, &params);
        assert_eq!(row.channel, Channel::ALL[0].name());
        assert_eq!(row.rounds, cell_rounds(&params));
        assert!(row.t_baseline.abs() > LEAKAGE_THRESHOLD);
        assert!(row.t_defended.abs() < LEAKAGE_THRESHOLD);
        assert_eq!(row.verdict(), "eliminated");
    }
}
