//! Performance tracking for the harness itself: end-to-end SPEC-sweep
//! wall-clock at `--jobs 1` vs a parallel worker count (with a
//! byte-identity check on the derived CSV), a host-independent
//! engine-overlap probe, plus per-access simulator timings — written to
//! `BENCH_sweep.json` so the perf trajectory is tracked from run to run.
//!
//! # Reading the sweep numbers honestly
//!
//! The simulation jobs are CPU-bound, so the `sweep.speedup` ceiling is
//! `sweep.host_cpus`: on a single-CPU host the parallel arm *cannot* beat
//! serial no matter how many workers run (and pays a little scheduling
//! overhead). The recorded `jobs_parallel` is the worker count actually
//! handed to the engine — never assumed. The `engine_overlap` section
//! isolates the engine itself from the host's core count by sweeping jobs
//! that *wait* instead of compute (sleeps overlap even on one CPU): its
//! speedup shows what the worker pool delivers the moment jobs stop being
//! CPU-bound or more CPUs appear.

use crate::exp::spec_sweep;
use crate::microbench::Bencher;
use crate::runner::{Comparison, RunParams};
use crate::sweep;
use std::hint::black_box;
use std::time::Instant;
use timecache_core::TimeCacheConfig;
use timecache_sim::{AccessKind, BatchClock, Hierarchy, HierarchyConfig, SecurityMode};
use timecache_telemetry::encode;

/// Worker count for the parallel arm when the host (or a `--jobs 1`
/// override) offers no parallelism: still exercise the engine with a real
/// multi-worker pool and let `host_cpus` tell the reader what the speedup
/// ceiling was.
const FALLBACK_PARALLEL_JOBS: usize = 4;

/// Jobs and workers for the engine-overlap probe.
const OVERLAP_JOBS: usize = 8;
const OVERLAP_WORKERS: usize = 4;
const OVERLAP_SLEEP_MS: u64 = 25;

/// Renders a sweep as the CSV the figures derive from; used to verify the
/// parallel engine is byte-identical to serial execution.
fn sweep_csv(sweep: &[Comparison]) -> String {
    let header = ["pair", "baseline-cycles", "timecache-cycles", "overhead"];
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|cmp| {
            vec![
                cmp.label.clone(),
                cmp.baseline.cycles.to_string(),
                cmp.timecache.cycles.to_string(),
                format!("{:.6}", cmp.overhead()),
            ]
        })
        .collect();
    encode::csv_table(&header, &rows)
}

fn hierarchy(security: SecurityMode) -> Hierarchy {
    let mut cfg = HierarchyConfig::with_cores(1);
    cfg.security = security;
    Hierarchy::new(cfg).expect("valid")
}

/// Median ns/iter for an L1-hit access loop and a DRAM-miss stream under
/// one security mode.
fn per_access_ns(b: &mut Bencher, name: &str, security: SecurityMode) -> (f64, f64) {
    let hit = {
        let mut h = hierarchy(security);
        for i in 0..256u64 {
            h.access(0, 0, AccessKind::Load, i * 64, i);
        }
        let mut now = 1_000u64;
        let mut i = 0u64;
        b.bench(&format!("sweep/l1-hit/{name}"), || {
            now += 1;
            i = (i + 1) % 256;
            black_box(h.access(0, 0, AccessKind::Load, i * 64, now))
        })
        .median_ns
    };
    let miss = {
        let mut h = hierarchy(security);
        let mut now = 0u64;
        let mut addr = 0u64;
        b.bench(&format!("sweep/dram-miss/{name}"), || {
            now += 1;
            addr = (addr + 64) % (64 << 20);
            black_box(h.access(0, 0, AccessKind::Load, 0x4000_0000 + addr, now))
        })
        .median_ns
    };
    (hit, miss)
}

/// Median ns per access for the same DRAM-miss stream submitted through
/// [`Hierarchy::access_batch`] in 256-access batches.
fn per_access_ns_batched(b: &mut Bencher, name: &str, security: SecurityMode) -> f64 {
    const BATCH: usize = 256;
    let mut h = hierarchy(security);
    let mut now = 0u64;
    let mut addr = 0u64;
    let mut reqs: Vec<(AccessKind, u64)> = Vec::with_capacity(BATCH);
    b.bench(&format!("sweep/dram-miss-batched/{name}"), || {
        reqs.clear();
        for _ in 0..BATCH {
            addr = (addr + 64) % (64 << 20);
            reqs.push((AccessKind::Load, 0x4000_0000 + addr));
        }
        now += BATCH as u64;
        black_box(h.access_batch(0, 0, &reqs, now, BatchClock::Stride(1)).1)
    })
    .median_ns
        / BATCH as f64
}

/// Wall-clock of `OVERLAP_JOBS` sleep-bound jobs under `workers` workers.
/// Sleeping jobs overlap regardless of the host's CPU count, so this times
/// the engine's dispatch/join machinery, not the host.
fn overlap_ms(workers: usize) -> f64 {
    let t0 = Instant::now();
    let done = sweep::run_with_jobs(OVERLAP_JOBS, workers, |i| {
        std::thread::sleep(std::time::Duration::from_millis(OVERLAP_SLEEP_MS));
        i
    });
    assert_eq!(done, (0..OVERLAP_JOBS).collect::<Vec<_>>());
    t0.elapsed().as_secs_f64() * 1e3
}

/// Times the full SPEC sweep serially and in parallel, checks the outputs
/// match byte-for-byte, probes engine overlap with wait-bound jobs,
/// measures per-access cost (looped and batched), and writes
/// `BENCH_sweep.json`.
pub fn run(params: &RunParams) {
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // The worker count the parallel arm will *actually* run with. A host
    // (or --jobs override) without parallelism still gets a real pool so
    // the engine path is exercised; host_cpus is recorded alongside so the
    // speedup reads as what it is.
    let prior_jobs = sweep::jobs();
    let parallel_jobs = match prior_jobs {
        0 | 1 => FALLBACK_PARALLEL_JOBS,
        n => n,
    };

    eprintln!("timing serial sweep (--jobs 1)...");
    sweep::set_jobs(1);
    let t0 = Instant::now();
    let serial = spec_sweep(params);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    eprintln!("timing parallel sweep (--jobs {parallel_jobs}, {host_cpus} host cpus)...");
    sweep::set_jobs(parallel_jobs);
    let t0 = Instant::now();
    let parallel = spec_sweep(params);
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;

    let serial_csv = sweep_csv(&serial);
    let parallel_csv = sweep_csv(&parallel);
    let identical = serial_csv == parallel_csv;
    assert!(
        identical,
        "parallel sweep output must be byte-identical to serial"
    );

    sweep::set_jobs(prior_jobs);

    let speedup = serial_ms / parallel_ms.max(1e-9);
    println!(
        "sweep wall-clock: serial {serial_ms:.0} ms, {parallel_jobs} jobs {parallel_ms:.0} ms \
         ({speedup:.2}x on {host_cpus} host cpus), csv identical: {identical}"
    );

    let overlap_serial_ms = overlap_ms(1);
    let overlap_parallel_ms = overlap_ms(OVERLAP_WORKERS);
    let overlap_speedup = overlap_serial_ms / overlap_parallel_ms.max(1e-9);
    println!(
        "engine overlap ({OVERLAP_JOBS} wait-bound jobs): serial {overlap_serial_ms:.0} ms, \
         {OVERLAP_WORKERS} workers {overlap_parallel_ms:.0} ms ({overlap_speedup:.2}x)"
    );

    let mut b = Bencher::new();
    let (base_hit, base_miss) = per_access_ns(&mut b, "baseline", SecurityMode::Baseline);
    let (tc_hit, tc_miss) = per_access_ns(
        &mut b,
        "timecache",
        SecurityMode::TimeCache(TimeCacheConfig::default()),
    );
    let tc_miss_batched = per_access_ns_batched(
        &mut b,
        "timecache",
        SecurityMode::TimeCache(TimeCacheConfig::default()),
    );

    let mut json = String::from("{");
    encode::json_string(&mut json, "sweep");
    json.push_str(&format!(
        ":{{\"pairs\":{},\"runs\":{},\"host_cpus\":{host_cpus},\
         \"jobs_parallel\":{parallel_jobs},\
         \"serial_ms\":{serial_ms:.1},\"parallel_ms\":{parallel_ms:.1},\
         \"speedup\":{speedup:.3},\"csv_identical\":{identical}}},",
        serial.len(),
        serial.len() * 2,
    ));
    encode::json_string(&mut json, "engine_overlap");
    json.push_str(&format!(
        ":{{\"jobs\":{OVERLAP_JOBS},\"workers\":{OVERLAP_WORKERS},\
         \"serial_ms\":{overlap_serial_ms:.1},\"parallel_ms\":{overlap_parallel_ms:.1},\
         \"speedup\":{overlap_speedup:.3}}},"
    ));
    encode::json_string(&mut json, "per_access_ns");
    json.push_str(&format!(
        ":{{\"l1_hit_baseline\":{base_hit:.2},\"l1_hit_timecache\":{tc_hit:.2},\
         \"dram_miss_baseline\":{base_miss:.2},\"dram_miss_timecache\":{tc_miss:.2},\
         \"dram_miss_timecache_batched\":{tc_miss_batched:.2}}}}}"
    ));

    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json");
}
