//! Performance tracking for the harness itself: end-to-end SPEC-sweep
//! wall-clock at `--jobs 1` vs the configured parallel job count (with a
//! byte-identity check on the derived CSV), plus per-access simulator
//! timings — written to `BENCH_sweep.json` so the perf trajectory is
//! tracked from run to run.

use crate::exp::spec_sweep;
use crate::microbench::Bencher;
use crate::runner::{Comparison, RunParams};
use crate::sweep;
use std::hint::black_box;
use std::time::Instant;
use timecache_core::TimeCacheConfig;
use timecache_sim::{AccessKind, Hierarchy, HierarchyConfig, SecurityMode};
use timecache_telemetry::encode;

/// Renders a sweep as the CSV the figures derive from; used to verify the
/// parallel engine is byte-identical to serial execution.
fn sweep_csv(sweep: &[Comparison]) -> String {
    let header = ["pair", "baseline-cycles", "timecache-cycles", "overhead"];
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|cmp| {
            vec![
                cmp.label.clone(),
                cmp.baseline.cycles.to_string(),
                cmp.timecache.cycles.to_string(),
                format!("{:.6}", cmp.overhead()),
            ]
        })
        .collect();
    encode::csv_table(&header, &rows)
}

fn hierarchy(security: SecurityMode) -> Hierarchy {
    let mut cfg = HierarchyConfig::with_cores(1);
    cfg.security = security;
    Hierarchy::new(cfg).expect("valid")
}

/// Median ns/iter for an L1-hit access loop and a DRAM-miss stream under
/// one security mode.
fn per_access_ns(b: &mut Bencher, name: &str, security: SecurityMode) -> (f64, f64) {
    let hit = {
        let mut h = hierarchy(security);
        for i in 0..256u64 {
            h.access(0, 0, AccessKind::Load, i * 64, i);
        }
        let mut now = 1_000u64;
        let mut i = 0u64;
        b.bench(&format!("sweep/l1-hit/{name}"), || {
            now += 1;
            i = (i + 1) % 256;
            black_box(h.access(0, 0, AccessKind::Load, i * 64, now))
        })
        .median_ns
    };
    let miss = {
        let mut h = hierarchy(security);
        let mut now = 0u64;
        let mut addr = 0u64;
        b.bench(&format!("sweep/dram-miss/{name}"), || {
            now += 1;
            addr = (addr + 64) % (64 << 20);
            black_box(h.access(0, 0, AccessKind::Load, 0x4000_0000 + addr, now))
        })
        .median_ns
    };
    (hit, miss)
}

/// Times the full SPEC sweep serially and in parallel, checks the outputs
/// match byte-for-byte, measures per-access cost, and writes
/// `BENCH_sweep.json`.
pub fn run(params: &RunParams) {
    let parallel_jobs = sweep::jobs().max(1);

    eprintln!("timing serial sweep (--jobs 1)...");
    sweep::set_jobs(1);
    let t0 = Instant::now();
    let serial = spec_sweep(params);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    eprintln!("timing parallel sweep (--jobs {parallel_jobs})...");
    sweep::set_jobs(parallel_jobs);
    let t0 = Instant::now();
    let parallel = spec_sweep(params);
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;

    let serial_csv = sweep_csv(&serial);
    let parallel_csv = sweep_csv(&parallel);
    let identical = serial_csv == parallel_csv;
    assert!(
        identical,
        "parallel sweep output must be byte-identical to serial"
    );

    let speedup = serial_ms / parallel_ms.max(1e-9);
    println!(
        "sweep wall-clock: serial {serial_ms:.0} ms, {parallel_jobs} jobs {parallel_ms:.0} ms \
         ({speedup:.2}x), csv identical: {identical}"
    );

    let mut b = Bencher::new();
    let (base_hit, base_miss) = per_access_ns(&mut b, "baseline", SecurityMode::Baseline);
    let (tc_hit, tc_miss) = per_access_ns(
        &mut b,
        "timecache",
        SecurityMode::TimeCache(TimeCacheConfig::default()),
    );

    let mut json = String::from("{");
    encode::json_string(&mut json, "sweep");
    json.push_str(&format!(
        ":{{\"pairs\":{},\"runs\":{},\"jobs_parallel\":{parallel_jobs},\
         \"serial_ms\":{serial_ms:.1},\"parallel_ms\":{parallel_ms:.1},\
         \"speedup\":{speedup:.3},\"csv_identical\":{identical}}},",
        serial.len(),
        serial.len() * 2,
    ));
    encode::json_string(&mut json, "per_access_ns");
    json.push_str(&format!(
        ":{{\"l1_hit_baseline\":{base_hit:.2},\"l1_hit_timecache\":{tc_hit:.2},\
         \"dram_miss_baseline\":{base_miss:.2},\"dram_miss_timecache\":{tc_miss:.2}}}}}"
    ));

    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json");
}
