//! Section VII: the other attacks on shared software — LRU state,
//! invalidate+transfer, flush+flush, evict+time — plus prime+probe to
//! delimit the defense. Each attack reports whether it leaks under the
//! baseline, under TimeCache, and (where applicable) under the documented
//! complementary mitigation.

use crate::output::{print_table, write_csv};
use timecache_attacks::{
    coherence, covert, evict_reload, evict_time, flush_flush, lru, prime_probe, spectre,
};

/// Runs every Section VII demonstration and prints the status matrix.
pub fn run() {
    let header = ["attack", "mode", "leaks", "detail"];
    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    eprintln!("  evict+reload ...");
    outcomes.extend(evict_reload::demo());
    eprintln!("  spectre-v1 ...");
    outcomes.extend(spectre::demo());
    eprintln!("  reuse covert channel ...");
    outcomes.extend(covert::demo());
    eprintln!("  lru-state ...");
    outcomes.extend(lru::demo());
    eprintln!("  invalidate+transfer ...");
    outcomes.extend(coherence::demo());
    eprintln!("  flush+flush ...");
    outcomes.extend(flush_flush::demo());
    eprintln!("  evict+time ...");
    outcomes.extend(evict_time::demo());
    eprintln!("  prime+probe ...");
    outcomes.extend(prime_probe::demo());

    for o in &outcomes {
        rows.push(vec![
            o.attack.clone(),
            o.mode.clone(),
            if o.leaked { "yes".into() } else { "no".into() },
            o.detail.clone(),
        ]);
    }
    print_table(
        "Section VII: other attacks on shared software",
        &header,
        &rows,
    );
    println!("paper's position: reuse channels close under TimeCache; LRU and");
    println!("contention channels need a randomizing cache (keyed index rows);");
    println!("flush+flush needs constant-time clflush; evict+time remains noisy.");
    let path = write_csv("vii_other_attacks.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
