//! Shared machinery for the performance experiments: build a system, run a
//! warm-up phase, then measure a fixed instruction budget under both
//! security modes.

use timecache_core::TimeCacheConfig;
use timecache_os::{System, SystemConfig, Trace};
use timecache_sim::{AccessOutcome, Hierarchy, HierarchyConfig, HierarchyStats, SecurityMode};
use timecache_workloads::mixes::PairSpec;
use timecache_workloads::parsec::ParsecBenchmark;

/// Parameters of one measured run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunParams {
    /// Instructions per process before measurement starts (cache and s-bit
    /// state reaches steady state).
    pub warmup_instructions: u64,
    /// Instructions per process in the measured phase.
    pub measure_instructions: u64,
    /// LLC capacity in bytes (Fig. 10 sweeps this).
    pub llc_bytes: u64,
    /// Scheduler quantum in cycles.
    pub quantum_cycles: u64,
    /// TimeCache timestamp width in bits.
    pub timestamp_bits: u8,
    /// Ablation: discard snapshots at context switches (see
    /// [`SystemConfig::discard_snapshots`]).
    pub discard_snapshots: bool,
}

impl Default for RunParams {
    /// The measurement profile: a 1 M-cycle quantum (0.5 ms at 2 GHz, a
    /// busy-system CFS slice) and a 16 M-instruction measured phase per
    /// process, giving each run tens of quanta so the paper's steady-state
    /// (not transient) overhead is what gets measured; the 4 M-instruction
    /// warm-up absorbs the initial mutual first-access transient. The
    /// context-switch DMA is priced as the paper does: a constant 1.08 us
    /// per switch.
    fn default() -> Self {
        RunParams {
            warmup_instructions: 4_000_000,
            measure_instructions: 16_000_000,
            llc_bytes: 2 * 1024 * 1024,
            quantum_cycles: 1_000_000,
            timestamp_bits: 32,
            discard_snapshots: false,
        }
    }
}

impl RunParams {
    /// A faster profile for tests and smoke runs (transient-heavy: treat
    /// its absolute overheads as smoke signals only).
    pub fn quick() -> Self {
        RunParams {
            warmup_instructions: 200_000,
            measure_instructions: 800_000,
            quantum_cycles: 500_000,
            ..RunParams::default()
        }
    }
}

/// Measured-phase metrics for one (workload pair, security mode) run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeMetrics {
    /// Cycles consumed by the measured phase.
    pub cycles: u64,
    /// Instructions retired in the measured phase (both processes).
    pub instructions: u64,
    /// Cache statistics for the measured phase only.
    pub stats: HierarchyStats,
    /// TimeCache context-switch bookkeeping cycles over the whole run.
    pub tc_switch_cycles: u64,
    /// Context switches over the whole run.
    pub context_switches: u64,
}

impl ModeMetrics {
    /// LLC MPKI (misses + first-access misses per kilo-instruction).
    pub fn llc_mpki(&self) -> f64 {
        self.stats.llc.mpki(self.instructions)
    }

    /// First-access MPKI at the LLC.
    pub fn llc_first_access_mpki(&self) -> f64 {
        self.stats.llc.first_access_mpki(self.instructions)
    }

    /// First-access MPKI at the (aggregated) L1I.
    pub fn l1i_first_access_mpki(&self) -> f64 {
        self.stats.l1i_total().first_access_mpki(self.instructions)
    }

    /// First-access MPKI at the (aggregated) L1D.
    pub fn l1d_first_access_mpki(&self) -> f64 {
        self.stats.l1d_total().first_access_mpki(self.instructions)
    }
}

/// Baseline + TimeCache measurements for one workload pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Row label ("2Xlbm", "fluidanimate", ...).
    pub label: String,
    /// Conventional-cache metrics.
    pub baseline: ModeMetrics,
    /// TimeCache metrics.
    pub timecache: ModeMetrics,
}

impl Comparison {
    /// Normalized execution time: TimeCache cycles / baseline cycles (the
    /// y-axis of Figs. 7 and 9a; Table II's overhead column).
    pub fn overhead(&self) -> f64 {
        self.timecache.cycles as f64 / self.baseline.cycles.max(1) as f64
    }
}

/// The TimeCache security mode a parameter set selects (the counterpart of
/// [`SecurityMode::Baseline`] in every comparison). Public so sweep jobs
/// can run the two modes of a comparison as independent units of work.
pub fn timecache_mode(params: &RunParams) -> SecurityMode {
    SecurityMode::TimeCache(TimeCacheConfig::new(params.timestamp_bits))
}

fn build_system(params: &RunParams, cores: usize, security: SecurityMode) -> System {
    let mut hier = HierarchyConfig::with_cores(cores).with_llc_bytes(params.llc_bytes);
    hier.security = security;
    let cfg = SystemConfig {
        hierarchy: hier,
        quantum_cycles: params.quantum_cycles,
        discard_snapshots: params.discard_snapshots,
        telemetry: crate::telemetry::current(),
        ..SystemConfig::default()
    };
    System::new(cfg).expect("experiment config is valid")
}

/// Runs one mode of a SPEC pair: two processes time-sliced on one core.
pub fn run_spec_pair_mode(
    spec: &PairSpec,
    security: SecurityMode,
    params: &RunParams,
) -> ModeMetrics {
    let mut sys = build_system(params, 1, security);
    let a = sys.spawn(
        Box::new(spec.a.workload(0)),
        0,
        0,
        Some(params.warmup_instructions),
    );
    let b = sys.spawn(
        Box::new(spec.b.workload(1)),
        0,
        0,
        Some(params.warmup_instructions),
    );
    let warm = sys.run(u64::MAX);
    assert!(warm.all_completed(), "warmup did not complete");
    let warm_cycles = sys.total_cycles();
    let warm_tc = warm.timecache_switch_cycles;

    sys.reset_stats();
    sys.extend_target(a, params.measure_instructions);
    sys.extend_target(b, params.measure_instructions);
    let report = sys.run(u64::MAX);
    assert!(report.all_completed(), "measurement did not complete");

    ModeMetrics {
        cycles: report.total_cycles - warm_cycles,
        instructions: 2 * params.measure_instructions,
        stats: report.stats,
        tc_switch_cycles: report.timecache_switch_cycles - warm_tc,
        context_switches: report.context_switches,
    }
}

/// Runs a SPEC pair under both modes.
pub fn compare_spec_pair(spec: &PairSpec, params: &RunParams) -> Comparison {
    Comparison {
        label: spec.label(),
        baseline: run_spec_pair_mode(spec, SecurityMode::Baseline, params),
        timecache: run_spec_pair_mode(spec, timecache_mode(params), params),
    }
}

/// Runs one mode of a PARSEC benchmark: two threads on two cores.
pub fn run_parsec_mode(
    bench: ParsecBenchmark,
    security: SecurityMode,
    params: &RunParams,
) -> ModeMetrics {
    let mut sys = build_system(params, 2, security);
    let t0 = sys.spawn(
        Box::new(bench.thread_workload(0)),
        0,
        0,
        Some(params.warmup_instructions),
    );
    let t1 = sys.spawn(
        Box::new(bench.thread_workload(1)),
        1,
        0,
        Some(params.warmup_instructions),
    );
    let warm = sys.run(u64::MAX);
    assert!(warm.all_completed(), "warmup did not complete");
    let warm_cycles = sys.total_cycles();
    let warm_tc = warm.timecache_switch_cycles;

    sys.reset_stats();
    sys.extend_target(t0, params.measure_instructions);
    sys.extend_target(t1, params.measure_instructions);
    let report = sys.run(u64::MAX);
    assert!(report.all_completed(), "measurement did not complete");

    ModeMetrics {
        cycles: report.total_cycles - warm_cycles,
        instructions: 2 * params.measure_instructions,
        stats: report.stats,
        tc_switch_cycles: report.timecache_switch_cycles - warm_tc,
        context_switches: report.context_switches,
    }
}

/// Runs a PARSEC benchmark under both modes.
pub fn compare_parsec(bench: ParsecBenchmark, params: &RunParams) -> Comparison {
    Comparison {
        label: bench.name().to_owned(),
        baseline: run_parsec_mode(bench, SecurityMode::Baseline, params),
        timecache: run_parsec_mode(bench, timecache_mode(params), params),
    }
}

/// Replays a recorded instruction trace straight into a bare [`Hierarchy`]
/// (no scheduler) as hardware context `(core, thread)`, starting the clock
/// at `start`. The measurement-side entry point to the batched replay fast
/// path ([`Trace::replay_hierarchy`] → `Hierarchy::access_batch`); returns
/// the per-access outcomes and the final cycle.
pub fn replay_trace(
    hier: &mut Hierarchy,
    trace: &Trace,
    core: usize,
    thread: usize,
    start: u64,
) -> (Vec<AccessOutcome>, u64) {
    trace.replay_hierarchy(hier, core, thread, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timecache_workloads::mixes;

    #[test]
    fn spec_pair_produces_sane_metrics() {
        let spec = &mixes::same_benchmark_pairs()[0]; // 2Xspecrand: cheap
        let cmp = compare_spec_pair(spec, &RunParams::quick());
        assert_eq!(cmp.label, "2Xspecrand");
        assert!(cmp.baseline.cycles > 0);
        assert!(
            cmp.overhead() > 0.5 && cmp.overhead() < 2.0,
            "{}",
            cmp.overhead()
        );
        // Baseline never sees first-access misses.
        assert_eq!(cmp.baseline.stats.total_first_access(), 0);
        assert!(cmp.baseline.context_switches > 0);
    }

    #[test]
    fn parsec_two_cores_have_no_l1_first_access() {
        let cmp = compare_parsec(ParsecBenchmark::Blackscholes, &RunParams::quick());
        // Threads never share a core: L1 first-access misses are zero
        // (Fig. 9b), LLC may have some.
        assert_eq!(cmp.timecache.l1i_first_access_mpki(), 0.0);
        assert_eq!(cmp.timecache.l1d_first_access_mpki(), 0.0);
        assert_eq!(cmp.timecache.context_switches, 0);
    }
}
