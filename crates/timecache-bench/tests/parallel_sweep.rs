//! The parallel sweep engine's contract: worker count changes wall-clock
//! only, never results — and per-worker telemetry merges to the same
//! counters a serial run records.

use std::sync::Mutex;
use timecache_bench::exp::sweep_pairs;
use timecache_bench::runner::RunParams;
use timecache_bench::{sweep, telemetry};
use timecache_workloads::mixes;

/// `sweep::set_jobs` is process-wide; serialize the tests that toggle it.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// A reduced profile so the sweep finishes in seconds.
fn tiny_params() -> RunParams {
    RunParams {
        warmup_instructions: 20_000,
        measure_instructions: 80_000,
        quantum_cycles: 50_000,
        ..RunParams::default()
    }
}

#[test]
fn jobs_1_and_jobs_4_produce_identical_comparisons() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let pairs = &mixes::all_pairs()[..4];
    let params = tiny_params();

    sweep::set_jobs(1);
    let serial = sweep_pairs(pairs, &params);
    sweep::set_jobs(4);
    let parallel = sweep_pairs(pairs, &params);
    sweep::set_jobs(0);

    assert_eq!(serial.len(), pairs.len());
    // Comparison derives PartialEq: every metric of every run must match
    // bit-for-bit, in pair order.
    assert_eq!(serial, parallel);
}

#[test]
fn wait_bound_jobs_overlap_regardless_of_host_cpus() {
    // The engine's scalability contract, separated from the host's core
    // count: jobs that *wait* (sleep) instead of compute overlap under the
    // worker pool even on a single-CPU machine. Eight 20 ms jobs take
    // ~160 ms serially; four workers should finish two rounds in ~40 ms.
    // The 2.5x floor leaves headroom for scheduler jitter (the ideal is
    // 4x) while still failing if workers ever serialize.
    let job = |i: usize| {
        std::thread::sleep(std::time::Duration::from_millis(20));
        i
    };

    let t0 = std::time::Instant::now();
    let serial = sweep::run_with_jobs(8, 1, job);
    let serial_s = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let parallel = sweep::run_with_jobs(8, 4, job);
    let parallel_s = t0.elapsed().as_secs_f64();

    assert_eq!(serial, (0..8).collect::<Vec<_>>());
    assert_eq!(serial, parallel);
    let speedup = serial_s / parallel_s;
    assert!(
        speedup >= 2.5,
        "4-worker pool overlapped wait-bound jobs only {speedup:.2}x \
         (serial {serial_s:.3}s, parallel {parallel_s:.3}s)"
    );
}

#[test]
fn parallel_sweep_telemetry_matches_serial_counters() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let pairs = &mixes::all_pairs()[..2];
    let params = tiny_params();

    // Serial run with a fresh handle.
    sweep::set_jobs(1);
    let serial_tel = telemetry::enable();
    let serial = sweep_pairs(pairs, &params);
    telemetry::disable();

    // Parallel run with another fresh handle; workers record into their
    // own registries, merged back at join.
    sweep::set_jobs(4);
    let parallel_tel = telemetry::enable();
    let parallel = sweep_pairs(pairs, &params);
    telemetry::disable();
    sweep::set_jobs(0);

    assert_eq!(serial, parallel);
    let serial_reg = serial_tel.registry().unwrap();
    let parallel_reg = parallel_tel.registry().unwrap();
    for (cache, outcome) in [
        ("l1d", "hit"),
        ("l1d", "miss"),
        ("l1d", "first_access"),
        ("llc", "hit"),
        ("llc", "miss"),
        ("llc", "first_access"),
    ] {
        let labels = [("cache", cache), ("outcome", outcome)];
        let s = serial_reg.counter_value("sim_cache_accesses_total", &labels);
        let p = parallel_reg.counter_value("sim_cache_accesses_total", &labels);
        assert_eq!(s, p, "counter mismatch for {cache}/{outcome}");
        assert!(
            s.unwrap_or(0) > 0 || outcome == "first_access",
            "serial run recorded nothing for {cache}/{outcome}"
        );
    }
    assert_eq!(
        serial_reg.counter_value("sim_switch_restores_total", &[]),
        parallel_reg.counter_value("sim_switch_restores_total", &[]),
    );
}
