//! The batched replay fast path's contract: pushing a recorded trace
//! through `Hierarchy::access_batch` (via `runner::replay_trace`) yields
//! exactly the per-access loop's observables — the `AccessOutcome`
//! sequence, the final clock, the hierarchy statistics, and the merged
//! telemetry counters — whether the replay runs on the caller's thread
//! (`--jobs 1`) or across sweep workers (`--jobs 4`).

use timecache_bench::runner::replay_trace;
use timecache_bench::{sweep, telemetry};
use timecache_core::TimeCacheConfig;
use timecache_os::{DataKind, Op, Trace};
use timecache_sim::{
    AccessKind, AccessOutcome, Hierarchy, HierarchyConfig, HierarchyStats, SecurityMode,
};

/// A deterministic ~600-op trace mixing tight loops (L1 hits), a working
/// set beyond the L1 (LLC hits), a streaming region (DRAM misses), and
/// periodic flushes, so the replay exercises every latency class.
fn mixed_trace() -> Trace {
    let mut t = Trace::new();
    let mut rng = 0x9e37_79b9_u64;
    let mut step = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for i in 0..200u64 {
        let pc = 0x1000 + (i % 32) * 4;
        let r = step();
        let addr = match r % 4 {
            0 => 0x4000 + (r % 8) * 64,      // hot lines: L1 hits
            1 => 0x10_0000 + (r % 512) * 64, // beyond L1: LLC traffic
            2 => 0x4000_0000 + i * 64,       // streaming: DRAM misses
            _ => 0x4000 + (r % 64) * 64,     // warm set
        };
        let kind = if r % 3 == 0 {
            DataKind::Store
        } else {
            DataKind::Load
        };
        t.push(Op::Instr {
            pc,
            data: Some((kind, addr)),
        });
        if i % 37 == 36 {
            t.push(Op::Flush {
                pc: pc + 4,
                target: 0x4000 + (r % 8) * 64,
            });
        }
        if i % 51 == 50 {
            t.push(Op::Yield { pc: pc + 4 });
        }
    }
    t.push(Op::Done);
    t
}

fn hierarchy() -> Hierarchy {
    let mut cfg = HierarchyConfig::with_cores(1);
    cfg.security = SecurityMode::TimeCache(TimeCacheConfig::default());
    Hierarchy::new(cfg).expect("valid config")
}

/// The per-access reference: the same op stream through
/// `Hierarchy::access` one call at a time, with the batched replay's
/// serial clock rule (`now += latency`; clflush adds its own latency).
fn replay_per_access(trace: &Trace) -> (Vec<AccessOutcome>, u64, HierarchyStats) {
    let mut h = hierarchy();
    let mut now = 1u64;
    let mut outs = Vec::new();
    let one = |h: &mut Hierarchy, now: &mut u64, kind, addr| {
        let o = h.access(0, 0, kind, addr, *now);
        *now += o.latency;
        o
    };
    for op in trace.ops() {
        match *op {
            Op::Instr { pc, data } => {
                outs.push(one(&mut h, &mut now, AccessKind::IFetch, pc));
                if let Some((kind, addr)) = data {
                    let kind = match kind {
                        DataKind::Load => AccessKind::Load,
                        DataKind::Store => AccessKind::Store,
                    };
                    outs.push(one(&mut h, &mut now, kind, addr));
                }
            }
            Op::Flush { pc, target } => {
                outs.push(one(&mut h, &mut now, AccessKind::IFetch, pc));
                now += h.clflush(target);
            }
            Op::Yield { pc } => {
                outs.push(one(&mut h, &mut now, AccessKind::IFetch, pc));
            }
            Op::Done => break,
        }
    }
    let stats = h.stats();
    (outs, now, stats)
}

/// One batched replay with an instrumented hierarchy; returns observables
/// plus the worker-local telemetry's view of the access counters.
fn replay_batched(trace: &Trace) -> (Vec<AccessOutcome>, u64, HierarchyStats) {
    let mut h = hierarchy();
    h.attach_telemetry(&telemetry::current());
    let (outs, end) = replay_trace(&mut h, trace, 0, 0, 1);
    let stats = h.stats();
    (outs, end, stats)
}

fn access_counter(tel: &timecache_telemetry::Telemetry, cache: &str, outcome: &str) -> u64 {
    tel.registry()
        .expect("telemetry enabled")
        .counter_value(
            "sim_cache_accesses_total",
            &[("cache", cache), ("outcome", outcome)],
        )
        .unwrap_or(0)
}

#[test]
fn batched_replay_matches_per_access_loop_serial_and_parallel() {
    let trace = mixed_trace();
    let (ref_outs, ref_end, ref_stats) = replay_per_access(&trace);
    assert!(ref_outs.len() > 200, "trace too small to be interesting");

    // An instrumented per-access run gives the reference telemetry totals.
    let ref_tel = telemetry::enable();
    {
        let mut h = hierarchy();
        h.attach_telemetry(&telemetry::current());
        let mut now = 1u64;
        for op in trace.ops() {
            match *op {
                Op::Instr { pc, data } => {
                    now += h.access(0, 0, AccessKind::IFetch, pc, now).latency;
                    if let Some((kind, addr)) = data {
                        let kind = match kind {
                            DataKind::Load => AccessKind::Load,
                            DataKind::Store => AccessKind::Store,
                        };
                        now += h.access(0, 0, kind, addr, now).latency;
                    }
                }
                Op::Flush { pc, target } => {
                    now += h.access(0, 0, AccessKind::IFetch, pc, now).latency;
                    now += h.clflush(target);
                }
                Op::Yield { pc } => {
                    now += h.access(0, 0, AccessKind::IFetch, pc, now).latency;
                }
                Op::Done => break,
            }
        }
    }
    telemetry::disable();

    for jobs in [1usize, 4] {
        // Four independent replays of the same trace fanned across the
        // sweep engine; each worker records into its own telemetry handle,
        // merged into `tel` at join.
        let tel = telemetry::enable();
        let runs = sweep::run_with_jobs(4, jobs, |_| replay_batched(&trace));
        telemetry::disable();

        for (outs, end, stats) in &runs {
            assert_eq!(
                outs, &ref_outs,
                "outcome sequence diverged at --jobs {jobs}"
            );
            assert_eq!(*end, ref_end, "final clock diverged at --jobs {jobs}");
            assert_eq!(stats, &ref_stats, "stats diverged at --jobs {jobs}");
        }

        // Merged telemetry = 4x the single per-access run's counters.
        for (cache, outcome) in [
            ("l1i", "hit"),
            ("l1d", "hit"),
            ("l1d", "miss"),
            ("llc", "hit"),
            ("llc", "miss"),
        ] {
            let reference = access_counter(&ref_tel, cache, outcome);
            let merged = access_counter(&tel, cache, outcome);
            assert_eq!(
                merged,
                4 * reference,
                "telemetry counter {cache}/{outcome} diverged at --jobs {jobs}"
            );
        }
        assert!(
            access_counter(&ref_tel, "l1d", "miss") > 0,
            "trace never missed the L1D; counters are vacuous"
        );
    }
}
