//! Calibration harness: checks that each SPEC preset's measured *baseline*
//! LLC MPKI lands near the paper's Table II column.
//!
//! These tests run multi-million-instruction simulations and are `#[ignore]`d
//! by default; run them when retuning presets:
//!
//! ```text
//! cargo test --release -p timecache-bench --test calibration -- --ignored
//! ```

use timecache_bench::runner::{run_spec_pair_mode, RunParams};
use timecache_sim::SecurityMode;
use timecache_workloads::mixes;

/// Factor by which a measured baseline MPKI may deviate from the paper's
/// value before the preset is considered miscalibrated. Generous because
/// the substrate is synthetic; the point is matching magnitude, not
/// digits.
const TOLERANCE_FACTOR: f64 = 2.0;

/// Workloads below this MPKI are in the noise floor where ratios are
/// meaningless; they only need to stay small.
const NOISE_FLOOR: f64 = 0.05;

#[test]
#[ignore = "multi-minute calibration sweep; run with -- --ignored when retuning presets"]
fn same_benchmark_baseline_mpki_tracks_table_ii() {
    let params = RunParams {
        warmup_instructions: 1_000_000,
        measure_instructions: 4_000_000,
        ..RunParams::default()
    };
    let mut failures = Vec::new();
    for spec in mixes::same_benchmark_pairs() {
        let paper = spec
            .a
            .paper_baseline_mpki()
            .expect("same-benchmark pairs have paper values");
        let measured = run_spec_pair_mode(&spec, SecurityMode::Baseline, &params).llc_mpki();
        eprintln!(
            "{:<16} measured {:>9.4}  paper {:>9.4}",
            spec.label(),
            measured,
            paper
        );
        if paper < NOISE_FLOOR {
            if measured > NOISE_FLOOR * 10.0 {
                failures.push(format!(
                    "{}: measured {measured:.4} far above noise floor (paper {paper:.4})",
                    spec.label()
                ));
            }
            continue;
        }
        let ratio = measured / paper;
        if !(1.0 / TOLERANCE_FACTOR..=TOLERANCE_FACTOR).contains(&ratio) {
            failures.push(format!(
                "{}: measured {measured:.4} vs paper {paper:.4} (ratio {ratio:.2})",
                spec.label()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "miscalibrated presets:\n{}",
        failures.join("\n")
    );
}
