//! End-to-end contract of the fault-injection matrix: the artifact is
//! complete even when a worker panics, an interrupted run resumes from the
//! checkpoint journal to a byte-identical final CSV, and the security
//! verdicts come out with the expected asymmetry (TimeCache secure,
//! baseline leaky) under every injected fault.
//!
//! Everything lives in ONE `#[test]` because the scenario toggles
//! process-wide environment variables (`TIMECACHE_RESULTS`,
//! `TIMECACHE_FAULT_SWEEP_PANIC`); a single test body keeps them
//! race-free without cross-test locking.

use std::fs;
use timecache_bench::exp::fault_sweep::{self, JOBS};
use timecache_bench::runner::RunParams;

#[test]
fn fault_matrix_is_resilient_checkpointed_and_secure() {
    let dir = std::env::temp_dir().join(format!("tc-fault-sweep-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    std::env::set_var("TIMECACHE_RESULTS", &dir);
    let csv = dir.join("fault_matrix.csv");
    let json = dir.join("fault_matrix.json");
    let journal = dir.join("fault_matrix.partial.jsonl");
    let params = RunParams::quick();

    // --- Clean run: full matrix, expected verdicts, journal cleaned up.
    let summary = fault_sweep::run(&params);
    assert!(summary.failures.is_empty(), "clean run must not fail cells");
    assert_eq!(
        summary.timecache_violations, 0,
        "TimeCache must stay invariant-clean under every fault scenario"
    );
    assert!(
        summary.baseline_violations > 0,
        "the checker must catch the undefended baseline leak"
    );
    assert_eq!(summary.baseline_rows_completed, JOBS / 2);
    assert!(
        summary.total_injected > 0,
        "fault scenarios must actually inject faults"
    );
    let clean_csv = fs::read(&csv).unwrap();
    let clean_text = String::from_utf8(clean_csv.clone()).unwrap();
    assert_eq!(
        clean_text.lines().count(),
        JOBS + 1,
        "header + one row per cell"
    );
    assert!(!clean_text.contains("VIOLATED"));
    assert!(clean_text.contains("leaks"));
    assert!(!journal.exists(), "clean finish must remove the journal");
    let json_text = fs::read_to_string(&json).unwrap();
    assert!(json_text.contains("\"timecache_violations\":0"));
    assert!(json_text.contains("\"failed\":[]"));

    // --- Forced worker panic: the cell fails past its retries, but the
    // artifact is still complete (the failed row is listed) and the
    // journal survives for resumption.
    fs::remove_file(&csv).unwrap();
    std::env::set_var("TIMECACHE_FAULT_SWEEP_PANIC", "4");
    let broken = fault_sweep::run(&params);
    std::env::remove_var("TIMECACHE_FAULT_SWEEP_PANIC");
    assert_eq!(broken.failures.len(), 1);
    assert_eq!(broken.failures[0].index, 4);
    assert!(broken.failures[0].message.contains("injected worker panic"));
    assert_eq!(
        broken.baseline_rows_completed,
        JOBS / 2 - 1,
        "job 4 is a baseline cell and did not complete"
    );
    let broken_text = fs::read_to_string(&csv).unwrap();
    assert_eq!(
        broken_text.lines().count(),
        JOBS + 1,
        "failed cell still gets a row"
    );
    assert!(broken_text.contains("failed: injected worker panic"));
    assert!(
        journal.exists(),
        "failures must keep the checkpoint journal"
    );
    assert!(fs::read_to_string(&json).unwrap().contains("\"job\":4"));

    // --- Resume: only the failed cell reruns (the journal already holds
    // the other 17 rows) and the final CSV is byte-identical to the
    // uninterrupted run's.
    let resumed = fault_sweep::run(&params);
    assert!(resumed.failures.is_empty());
    assert_eq!(resumed.timecache_violations, 0);
    assert!(resumed.baseline_violations > 0);
    assert_eq!(
        fs::read(&csv).unwrap(),
        clean_csv,
        "resumed run must reproduce the clean CSV byte-for-byte"
    );
    assert!(!journal.exists());

    let _ = fs::remove_dir_all(&dir);
}
