//! Micro-bench: hierarchy access throughput, baseline vs TimeCache.
//!
//! The defense's common-case cost is one extra bit checked in parallel
//! with the tag; the simulator should likewise show near-identical
//! per-access cost with the mechanism engaged.

use std::hint::black_box;
use timecache_bench::microbench::Bencher;
use timecache_core::TimeCacheConfig;
use timecache_sim::{AccessKind, Hierarchy, HierarchyConfig, SecurityMode};

fn hierarchy(security: SecurityMode) -> Hierarchy {
    let mut cfg = HierarchyConfig::with_cores(1);
    cfg.security = security;
    Hierarchy::new(cfg).expect("valid")
}

fn main() {
    let mut b = Bencher::new();
    for (name, security) in [
        ("baseline", SecurityMode::Baseline),
        (
            "timecache",
            SecurityMode::TimeCache(TimeCacheConfig::default()),
        ),
    ] {
        // Hot-loop hits over a 16 KiB working set (all L1-resident).
        {
            let mut h = hierarchy(security);
            for i in 0..256u64 {
                h.access(0, 0, AccessKind::Load, i * 64, i);
            }
            let mut now = 1_000u64;
            let mut i = 0u64;
            b.bench(&format!("hierarchy-access/l1-hit/{name}"), || {
                now += 1;
                i = (i + 1) % 256;
                black_box(h.access(0, 0, AccessKind::Load, i * 64, now))
            });
        }
        // Streaming misses through a 64 MiB region.
        {
            let mut h = hierarchy(security);
            let mut now = 0u64;
            let mut addr = 0u64;
            b.bench(&format!("hierarchy-access/dram-miss/{name}"), || {
                now += 1;
                addr = (addr + 64) % (64 << 20);
                black_box(h.access(0, 0, AccessKind::Load, 0x4000_0000 + addr, now))
            });
        }
    }
}
