//! Micro-bench: the MPI (bignum) substrate driving the RSA victim —
//! square, multiply, reduce, and a full modular exponentiation.

use std::hint::black_box;
use timecache_bench::microbench::Bencher;
use timecache_workloads::rsa::{ModExp, Mpi};

fn operand(limbs: usize, seed: u64) -> Mpi {
    let mut v = Vec::with_capacity(limbs);
    let mut x = seed | 1;
    for _ in 0..limbs {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push(x as u32);
    }
    Mpi::from_limbs(v)
}

fn main() {
    // 512-bit operands: 16 limbs.
    let a = operand(16, 0xA5A5);
    let m = operand(16, 0x5A5A);
    let wide = a.mul(&a);

    let mut b = Bencher::new();
    b.bench("mpi/square-512b", || black_box(a.square()));
    b.bench("mpi/mul-512b", || black_box(a.mul(&m)));
    b.bench("mpi/reduce-1024b-by-512b", || black_box(wide.rem(&m)));
    b.bench("mpi/modexp-64b-exponent", || {
        let mut me = ModExp::new(a.clone(), Mpi::from_u64(0xC3A5_96E7), m.clone());
        while me.step().is_some() {}
        black_box(me.result().clone())
    });
}
