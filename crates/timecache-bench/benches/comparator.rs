//! Micro-bench: the bit-serial, timestamp-parallel comparator against
//! a naive line-serial software comparison, across cache sizes.
//!
//! The hardware argument of Section V-C is that comparison cost must not
//! scale with the number of lines; this bench shows the simulated
//! bit-serial sweep is also computationally cheap (it touches 64 lines per
//! word operation), while the naive model walks every line.

use std::hint::black_box;
use timecache_bench::microbench::Bencher;
use timecache_core::{BitSerialComparator, TimestampWidth, TransposeArray, WrappingTime};

fn main() {
    let width = TimestampWidth::new(32);
    let mut b = Bencher::new();
    for lines in [512usize, 32_768, 131_072] {
        let mut arr = TransposeArray::new(lines, width);
        for i in 0..lines {
            arr.write_word(i, (i as u64).wrapping_mul(2654435761));
        }
        let ts = WrappingTime::from_cycle(1_000_000, width);
        // Pre-sync so the bench times the sweep itself, not the one-off
        // lazy re-transposition of the fill loop above.
        arr.sync_planes();

        b.bench(&format!("comparator/bit-serial/{lines}"), || {
            black_box(BitSerialComparator::compare(&mut arr, ts))
        });
        b.bench(&format!("comparator/line-serial/{lines}"), || {
            let mut resets = 0u64;
            for i in 0..lines {
                if arr.read_word(i) > ts.value() {
                    resets += 1;
                }
            }
            black_box(resets)
        });
    }
}
