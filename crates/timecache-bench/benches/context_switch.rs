//! Criterion bench: context-switch save/restore cost across LLC sizes —
//! the Section VI-D bookkeeping path (snapshot copy + comparator sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use timecache_core::TimeCacheConfig;
use timecache_sim::{AccessKind, Hierarchy, HierarchyConfig, SecurityMode};

fn switch_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("context-switch");
    for llc_mb in [2u64, 4, 8] {
        let mut cfg =
            HierarchyConfig::with_cores(1).with_llc_bytes(llc_mb * 1024 * 1024);
        cfg.security = SecurityMode::TimeCache(TimeCacheConfig::default());
        let mut h = Hierarchy::new(cfg).expect("valid");
        // Populate some state so snapshots are non-trivial.
        for i in 0..4096u64 {
            h.access(0, 0, AccessKind::Load, i * 64, i);
        }
        let snap = h.save_context(0, 0, 5_000);

        group.bench_with_input(BenchmarkId::new("save", llc_mb), &llc_mb, |b, _| {
            b.iter(|| black_box(h.save_context(0, 0, 10_000)))
        });
        group.bench_with_input(BenchmarkId::new("restore", llc_mb), &llc_mb, |b, _| {
            let mut now = 10_000u64;
            b.iter(|| {
                now += 1;
                black_box(h.restore_context(0, 0, Some(&snap), now))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, switch_cost);
criterion_main!(benches);
