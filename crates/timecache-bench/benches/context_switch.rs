//! Micro-bench: context-switch save/restore cost across LLC sizes —
//! the Section VI-D bookkeeping path (snapshot copy + comparator sweep).

use std::hint::black_box;
use timecache_bench::microbench::Bencher;
use timecache_core::TimeCacheConfig;
use timecache_sim::{AccessKind, Hierarchy, HierarchyConfig, SecurityMode};

fn main() {
    let mut b = Bencher::new();
    for llc_mb in [2u64, 4, 8] {
        let mut cfg = HierarchyConfig::with_cores(1).with_llc_bytes(llc_mb * 1024 * 1024);
        cfg.security = SecurityMode::TimeCache(TimeCacheConfig::default());
        let mut h = Hierarchy::new(cfg).expect("valid");
        // Populate some state so snapshots are non-trivial.
        for i in 0..4096u64 {
            h.access(0, 0, AccessKind::Load, i * 64, i);
        }
        let snap = h.save_context(0, 0, 5_000);

        b.bench(&format!("context-switch/save/{llc_mb}MiB"), || {
            black_box(h.save_context(0, 0, 10_000))
        });
        let mut now = 10_000u64;
        b.bench(&format!("context-switch/restore/{llc_mb}MiB"), || {
            now += 1;
            black_box(h.restore_context(0, 0, Some(&snap), now))
        });
    }
}
