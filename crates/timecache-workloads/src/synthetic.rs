//! Parametric synthetic workload generator.
//!
//! The generator produces an instruction stream whose cache-visible
//! behaviour is controlled by a handful of knobs that map directly onto the
//! quantities the paper's evaluation depends on:
//!
//! * **baseline miss rate** — `fresh_line_per_kinstr` data accesses per
//!   thousand instructions touch a never-before-seen line (a compulsory /
//!   capacity miss at every level), which pins the baseline LLC MPKI to a
//!   target value (Table II's third column);
//! * **resident reuse** — all other data accesses hit a small hot working
//!   set (`resident_bytes`), mostly resident in L1/LLC;
//! * **shared-software footprint** — instruction fetches periodically run
//!   bursts through shared-library text (`shared_code_lines` at
//!   `shared_code_frac`), and two instances of the same benchmark share
//!   their binary text (`bench_code_lines`). These shared lines are what
//!   incur *first-access misses* when processes context-switch under
//!   TimeCache;
//! * **shared data** — an optional shared data segment
//!   (deduplicated pages), accessed at `shared_data_frac`.

use crate::layout;
use crate::rng::FastRng;
use timecache_os::{DataKind, Op, Program};
use timecache_sim::Addr;

/// Knobs for one synthetic process. See the [module docs](self) for what
/// each controls.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticParams {
    /// Display name (benchmark name for presets).
    pub name: String,
    /// Data accesses per instruction (loads+stores), e.g. 0.3.
    pub mem_ratio: f64,
    /// Of data accesses, fraction that are stores.
    pub store_ratio: f64,
    /// Never-before-seen lines touched per 1000 instructions: the baseline
    /// LLC MPKI driver.
    pub fresh_line_per_kinstr: f64,
    /// Hot working set for reuse accesses, in bytes.
    pub resident_bytes: u64,
    /// Private hot code footprint, in lines.
    pub code_lines: u64,
    /// Shared-library text touched by this workload, in lines.
    pub shared_code_lines: u64,
    /// Probability per instruction of fetching from the shared library
    /// (fetches come in short bursts, like a libc call).
    pub shared_code_frac: f64,
    /// Shared benchmark-binary text, in lines (shared only between
    /// instances of the same benchmark).
    pub bench_code_lines: u64,
    /// Probability per data access of touching the shared data segment.
    pub shared_data_frac: f64,
    /// Shared data segment size in bytes.
    pub shared_data_bytes: u64,
    /// Probability that a *fresh* (streaming) access reads the sibling
    /// instance's recently streamed lines instead of this instance's own —
    /// models threads consuming each other's freshly produced data
    /// (PARSEC-style pipelines). Those touches are ordinary LLC hits at
    /// baseline and first-access misses under TimeCache, which is exactly
    /// the small cross-thread delayed-access rate of the paper's Fig. 9b.
    pub peer_fresh_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            name: "synthetic".to_owned(),
            mem_ratio: 0.3,
            store_ratio: 0.3,
            fresh_line_per_kinstr: 1.0,
            resident_bytes: 64 * 1024,
            code_lines: 64,
            shared_code_lines: 256,
            shared_code_frac: 0.02,
            bench_code_lines: 128,
            shared_data_frac: 0.0,
            shared_data_bytes: 0,
            peer_fresh_frac: 0.0,
            seed: 42,
        }
    }
}

impl SyntheticParams {
    /// Validates ranges (probabilities in `[0,1]`, nonzero footprints).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters; presets are validated in tests.
    pub fn validate(&self) {
        for (v, n) in [
            (self.mem_ratio, "mem_ratio"),
            (self.store_ratio, "store_ratio"),
            (self.shared_code_frac, "shared_code_frac"),
            (self.shared_data_frac, "shared_data_frac"),
            (self.peer_fresh_frac, "peer_fresh_frac"),
        ] {
            assert!((0.0..=1.0).contains(&v), "{n} must be in [0,1], got {v}");
        }
        assert!(self.fresh_line_per_kinstr >= 0.0, "negative fresh rate");
        assert!(
            self.resident_bytes >= layout::LINE,
            "resident set too small"
        );
        assert!(self.code_lines > 0, "need at least one code line");
    }
}

/// An executing synthetic workload (one process).
///
/// Construct via [`SyntheticWorkload::new`] with the process `instance`
/// number (0 or 1 for the paper's two-instance runs) and the benchmark id
/// that selects the shared binary-text region.
#[derive(Debug)]
pub struct SyntheticWorkload {
    params: SyntheticParams,
    rng: FastRng,
    /// Private arena base.
    private_base: Addr,
    /// Sibling instance's arena base (for `peer_fresh_frac` touches).
    peer_base: Addr,
    /// Shared benchmark text base.
    bench_code_base: Addr,
    /// Cursor for fresh (never reused) lines.
    fresh_cursor: u64,
    /// Private code loop cursor.
    code_cursor: u64,
    /// Remaining lines of an in-progress shared-library burst.
    lib_burst_left: u64,
    /// Cursor within the shared library.
    lib_cursor: u64,
    /// Cursor within the shared benchmark text (walked in bursts too).
    bench_burst_left: u64,
    bench_cursor: u64,
    /// Per-instruction probability of a fresh-line access.
    fresh_prob: f64,
}

/// Lines of a shared-library burst (a short libc routine).
const LIB_BURST: u64 = 8;
/// Lines of a benchmark-text burst (a longer stretch of the binary).
const BENCH_BURST: u64 = 16;
/// Probability per instruction of jumping into benchmark text.
const BENCH_FRAC: f64 = 0.05;

impl SyntheticWorkload {
    /// Builds instance `instance` (0-based) of benchmark `bench_id`.
    ///
    /// Two workloads with the same `bench_id` share their binary text; all
    /// workloads share the library text; private data never overlaps.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    pub fn new(params: SyntheticParams, bench_id: usize, instance: usize) -> Self {
        params.validate();
        let fresh_prob = (params.fresh_line_per_kinstr / 1000.0).min(1.0);
        // Instances pair up 0<->1, 2<->3, ... for peer-fresh touches.
        let peer = instance ^ 1;
        SyntheticWorkload {
            rng: FastRng::seed_from_u64(params.seed ^ (instance as u64) << 32),
            private_base: layout::private_base(instance),
            peer_base: layout::private_base(peer),
            bench_code_base: layout::bench_code_base(bench_id),
            fresh_cursor: 0,
            code_cursor: 0,
            lib_burst_left: 0,
            lib_cursor: 0,
            bench_burst_left: 0,
            bench_cursor: 0,
            fresh_prob,
            params,
        }
    }

    /// The parameters this workload was built with.
    pub fn params(&self) -> &SyntheticParams {
        &self.params
    }

    fn next_pc(&mut self) -> Addr {
        // Finish any in-progress burst first.
        if self.lib_burst_left > 0 {
            self.lib_burst_left -= 1;
            self.lib_cursor = (self.lib_cursor + 1) % self.params.shared_code_lines.max(1);
            return layout::code_line(layout::SHARED_LIB_CODE, self.lib_cursor);
        }
        if self.bench_burst_left > 0 {
            self.bench_burst_left -= 1;
            self.bench_cursor = (self.bench_cursor + 1) % self.params.bench_code_lines.max(1);
            return layout::code_line(self.bench_code_base, self.bench_cursor);
        }
        let r: f64 = self.rng.next_f64();
        if self.params.shared_code_lines > 0 && r < self.params.shared_code_frac {
            // Jump to a random library routine and walk it.
            self.lib_cursor = self.rng.next_below(self.params.shared_code_lines);
            self.lib_burst_left = LIB_BURST.min(self.params.shared_code_lines);
            return layout::code_line(layout::SHARED_LIB_CODE, self.lib_cursor);
        }
        if self.params.bench_code_lines > 0 && r < self.params.shared_code_frac + BENCH_FRAC {
            self.bench_cursor = self.rng.next_below(self.params.bench_code_lines);
            self.bench_burst_left = BENCH_BURST.min(self.params.bench_code_lines);
            return layout::code_line(self.bench_code_base, self.bench_cursor);
        }
        // Private hot loop.
        self.code_cursor = (self.code_cursor + 1) % self.params.code_lines;
        layout::code_line(self.private_base + 0x4000_0000, self.code_cursor)
    }

    fn next_data(&mut self) -> Option<(DataKind, Addr)> {
        if self.rng.next_f64() >= self.params.mem_ratio {
            return None;
        }
        let kind = if self.rng.next_f64() < self.params.store_ratio {
            DataKind::Store
        } else {
            DataKind::Load
        };
        // Fresh-line accesses drive the baseline miss rate. The probability
        // is per *instruction*; we are inside the mem_ratio branch, so
        // rescale.
        let fresh_here = self.fresh_prob / self.params.mem_ratio.max(1e-9);
        if self.rng.next_f64() < fresh_here {
            // Optionally consume the sibling's recent stream instead of
            // producing our own line (guarded so the common frac == 0 case
            // draws no random number and streams stay bit-identical).
            if self.params.peer_fresh_frac > 0.0
                && self.rng.next_f64() < self.params.peer_fresh_frac
            {
                let lag = 16 + self.rng.next_below(64);
                let line = self.fresh_cursor.saturating_sub(lag) % (1 << 24);
                return Some((
                    DataKind::Load,
                    self.peer_base + 0x8000_0000 + line * layout::LINE,
                ));
            }
            let addr = self.private_base + 0x8000_0000 + self.fresh_cursor * layout::LINE;
            // Wrap far beyond any LLC size so lines are effectively never
            // revisited before eviction (1 GiB of distinct lines).
            self.fresh_cursor = (self.fresh_cursor + 1) % (1 << 24);
            return Some((kind, addr));
        }
        if self.params.shared_data_bytes > 0 && self.rng.next_f64() < self.params.shared_data_frac {
            let lines = self.params.shared_data_bytes / layout::LINE;
            let line = self.rng.next_below(lines.max(1));
            return Some((kind, layout::SHARED_SEGMENT + line * layout::LINE));
        }
        // Hot-set reuse.
        let lines = (self.params.resident_bytes / layout::LINE).max(1);
        let line = self.rng.next_below(lines);
        Some((kind, self.private_base + line * layout::LINE))
    }
}

impl Program for SyntheticWorkload {
    fn next_op(&mut self) -> Op {
        let pc = self.next_pc();
        let data = self.next_data();
        Op::Instr { pc, data }
    }

    fn name(&self) -> &str {
        &self.params.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_ops(w: &mut SyntheticWorkload, n: usize) -> Vec<Op> {
        (0..n).map(|_| w.next_op()).collect()
    }

    #[test]
    fn deterministic_given_seed() {
        let p = SyntheticParams::default();
        let mut a = SyntheticWorkload::new(p.clone(), 0, 0);
        let mut b = SyntheticWorkload::new(p, 0, 0);
        assert_eq!(collect_ops(&mut a, 500), collect_ops(&mut b, 500));
    }

    #[test]
    fn instances_have_disjoint_private_data() {
        let p = SyntheticParams::default();
        let mut a = SyntheticWorkload::new(p.clone(), 0, 0);
        let mut b = SyntheticWorkload::new(p, 0, 1);
        let pa = layout::private_base(0);
        let pb = layout::private_base(1);
        for op in collect_ops(&mut a, 2000) {
            if let Op::Instr {
                data: Some((_, addr)),
                ..
            } = op
            {
                if addr < layout::SHARED_SEGMENT {
                    assert!((pa..pa + layout::PRIVATE_STRIDE).contains(&addr));
                }
            }
        }
        for op in collect_ops(&mut b, 2000) {
            if let Op::Instr {
                data: Some((_, addr)),
                ..
            } = op
            {
                if addr < layout::SHARED_SEGMENT {
                    assert!((pb..pb + layout::PRIVATE_STRIDE).contains(&addr));
                }
            }
        }
    }

    #[test]
    fn same_bench_shares_text_different_bench_does_not() {
        let p = SyntheticParams::default();
        let w0 = SyntheticWorkload::new(p.clone(), 3, 0);
        let w1 = SyntheticWorkload::new(p.clone(), 3, 1);
        let w2 = SyntheticWorkload::new(p, 4, 0);
        assert_eq!(w0.bench_code_base, w1.bench_code_base);
        assert_ne!(w0.bench_code_base, w2.bench_code_base);
    }

    #[test]
    fn mem_ratio_controls_data_accesses() {
        let p = SyntheticParams {
            mem_ratio: 0.5,
            ..SyntheticParams::default()
        };
        let mut w = SyntheticWorkload::new(p, 0, 0);
        let n = 20_000;
        let with_data = collect_ops(&mut w, n)
            .iter()
            .filter(|op| matches!(op, Op::Instr { data: Some(_), .. }))
            .count();
        let frac = with_data as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "frac {frac}");
    }

    #[test]
    fn fresh_rate_matches_target() {
        let p = SyntheticParams {
            fresh_line_per_kinstr: 20.0,
            ..SyntheticParams::default()
        };
        let mut w = SyntheticWorkload::new(p, 0, 0);
        let n = 200_000usize;
        let fresh_base = layout::private_base(0) + 0x8000_0000;
        let fresh = collect_ops(&mut w, n)
            .iter()
            .filter(|op| {
                matches!(op, Op::Instr { data: Some((_, a)), .. }
                if (fresh_base..fresh_base + (1 << 30)).contains(a))
            })
            .count();
        let per_kinstr = fresh as f64 * 1000.0 / n as f64;
        assert!(
            (15.0..25.0).contains(&per_kinstr),
            "fresh/kinstr {per_kinstr}"
        );
    }

    #[test]
    fn shared_lib_fetches_present() {
        let p = SyntheticParams::default();
        let mut w = SyntheticWorkload::new(p, 0, 0);
        let lib = collect_ops(&mut w, 10_000)
            .iter()
            .filter(|op| matches!(op, Op::Instr { pc, .. } if *pc >= layout::SHARED_LIB_CODE))
            .count();
        assert!(lib > 100, "only {lib} shared-lib fetches");
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn params_validated() {
        let p = SyntheticParams {
            mem_ratio: 1.5,
            ..SyntheticParams::default()
        };
        SyntheticWorkload::new(p, 0, 0);
    }
}
