//! A small, fast, deterministic RNG for workload generation.
//!
//! Workload generators draw several random numbers per simulated
//! instruction, so generator speed directly bounds simulation throughput.
//! The generator itself now lives in `timecache-core` (the fault injector
//! needs the same seed-reproducible stream and core cannot depend on this
//! crate); this module re-exports it so workload code and its historical
//! import path keep working unchanged.
//!
//! # Examples
//!
//! ```
//! use timecache_workloads::rng::FastRng;
//!
//! let mut a = FastRng::seed_from_u64(7);
//! let mut b = FastRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let f = a.next_f64();
//! assert!((0.0..1.0).contains(&f));
//! ```

pub use timecache_core::FastRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_core_generator() {
        let mut here = FastRng::seed_from_u64(99);
        let mut there = timecache_core::FastRng::seed_from_u64(99);
        assert_eq!(here.next_u64(), there.next_u64());
    }
}
