//! # timecache-workloads
//!
//! Workload generation for the TimeCache reproduction (Ojha & Dwarkadas,
//! ISCA 2021).
//!
//! The paper evaluates on SPEC2006 and PARSEC binaries under gem5 and
//! attacks the GnuPG RSA implementation. Neither the benchmark suites nor
//! gem5 checkpoints are redistributable here, so this crate provides:
//!
//! * [`synthetic`] — a parametric, execution-driven workload generator
//!   (working-set size, fresh-line rate, shared-library footprint, code
//!   locality) whose knobs map directly onto the cache-visible quantities
//!   the paper's results depend on;
//! * [`spec`] — per-benchmark presets for the SPEC2006 workloads of
//!   Table II, calibrated against the table's *baseline LLC MPKI* column;
//! * [`parsec`] — 2-thread shared-memory presets for the PARSEC workloads
//!   of Fig. 9;
//! * [`mixes`] — the exact same-benchmark and mixed pairings Table II runs;
//! * [`rsa`] — a from-scratch multi-precision integer library and
//!   left-to-right square-and-multiply modular exponentiation whose
//!   Square/Multiply/Reduce routines occupy distinct shared-code cache
//!   lines: the victim of the classic flush+reload key-extraction attack
//!   (Section VI-A.2).
//!
//! All randomness is seeded; identical parameters produce identical access
//! streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod mixes;
pub mod parsec;
pub mod rng;
pub mod rsa;
pub mod spec;
pub mod synthetic;

pub use spec::SpecBenchmark;
pub use synthetic::{SyntheticParams, SyntheticWorkload};
