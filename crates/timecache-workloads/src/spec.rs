//! SPEC2006 workload presets.
//!
//! Each preset is a [`SyntheticParams`] tuned to the corresponding row of
//! the paper's Table II: `fresh_line_per_kinstr` and `resident_bytes` are
//! chosen so the *baseline* LLC MPKI of a two-instance run on the Table I
//! hierarchy lands near the table's baseline column, and the code-footprint
//! knobs reflect the paper's qualitative notes (wrf and perlbench have the
//! largest shared instruction footprints; h264 leans on libc file
//! routines).

use crate::synthetic::{SyntheticParams, SyntheticWorkload};

/// The SPEC2006 benchmarks used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    Specrand,
    Lbm,
    Leslie3d,
    Gobmk,
    Libquantum,
    Wrf,
    Calculix,
    Sjeng,
    Perlbench,
    Astar,
    H264ref,
    Milc,
    Sphinx3,
    Namd,
    Gromacs,
    Zeusmp,
    Cactus,
}

impl SpecBenchmark {
    /// Every benchmark, in Table II order.
    pub const ALL: [SpecBenchmark; 17] = [
        SpecBenchmark::Specrand,
        SpecBenchmark::Lbm,
        SpecBenchmark::Leslie3d,
        SpecBenchmark::Gobmk,
        SpecBenchmark::Libquantum,
        SpecBenchmark::Wrf,
        SpecBenchmark::Calculix,
        SpecBenchmark::Sjeng,
        SpecBenchmark::Perlbench,
        SpecBenchmark::Astar,
        SpecBenchmark::H264ref,
        SpecBenchmark::Milc,
        SpecBenchmark::Sphinx3,
        SpecBenchmark::Namd,
        SpecBenchmark::Gromacs,
        SpecBenchmark::Zeusmp,
        SpecBenchmark::Cactus,
    ];

    /// Lower-case display name as Table II writes it.
    pub fn name(self) -> &'static str {
        match self {
            SpecBenchmark::Specrand => "specrand",
            SpecBenchmark::Lbm => "lbm",
            SpecBenchmark::Leslie3d => "leslie3d",
            SpecBenchmark::Gobmk => "gobmk",
            SpecBenchmark::Libquantum => "libquantum",
            SpecBenchmark::Wrf => "wrf",
            SpecBenchmark::Calculix => "calculix",
            SpecBenchmark::Sjeng => "sjeng",
            SpecBenchmark::Perlbench => "perlbench",
            SpecBenchmark::Astar => "astar",
            SpecBenchmark::H264ref => "h264ref",
            SpecBenchmark::Milc => "milc",
            SpecBenchmark::Sphinx3 => "sphinx3",
            SpecBenchmark::Namd => "namd",
            SpecBenchmark::Gromacs => "gromacs",
            SpecBenchmark::Zeusmp => "zeusmp",
            SpecBenchmark::Cactus => "cactus",
        }
    }

    /// A stable id selecting the benchmark's shared binary-text region.
    pub fn bench_id(self) -> usize {
        Self::ALL.iter().position(|&b| b == self).expect("in ALL")
    }

    /// The calibrated synthetic parameters for this benchmark.
    ///
    /// `fresh_line_per_kinstr` approximates the benchmark's compulsory/
    /// capacity miss traffic and is the primary baseline-MPKI knob;
    /// `resident_bytes` is the reusable hot set, sized so a *pair* of
    /// instances fits the 2 MB LLC (reuse hits, fresh lines miss — keeping
    /// the measured baseline MPKI pinned to Table II's column); the code
    /// knobs scale the shared footprint that produces first-access misses.
    pub fn params(self) -> SyntheticParams {
        let mut p = SyntheticParams {
            name: self.name().to_owned(),
            seed: 0xC0FFEE ^ self.bench_id() as u64,
            ..SyntheticParams::default()
        };
        match self {
            SpecBenchmark::Specrand => {
                p.fresh_line_per_kinstr = 0.003;
                p.resident_bytes = 16 * 1024;
                p.code_lines = 16;
                p.bench_code_lines = 32;
            }
            SpecBenchmark::Lbm => {
                // Streaming stencil: high compulsory traffic, little reuse.
                p.fresh_line_per_kinstr = 13.5;
                p.resident_bytes = 256 * 1024;
                p.code_lines = 32;
                p.bench_code_lines = 64;
                p.store_ratio = 0.45;
            }
            SpecBenchmark::Leslie3d => {
                p.fresh_line_per_kinstr = 20.0;
                p.resident_bytes = 512 * 1024;
                p.code_lines = 96;
                p.bench_code_lines = 192;
            }
            SpecBenchmark::Gobmk => {
                p.fresh_line_per_kinstr = 3.1;
                p.resident_bytes = 384 * 1024;
                p.code_lines = 512; // large game-tree code
                p.bench_code_lines = 1024;
            }
            SpecBenchmark::Libquantum => {
                p.fresh_line_per_kinstr = 5.75;
                p.resident_bytes = 384 * 1024;
                p.code_lines = 24;
                p.bench_code_lines = 48;
            }
            SpecBenchmark::Wrf => {
                // Paper: large shared instruction footprint.
                p.fresh_line_per_kinstr = 4.6;
                p.resident_bytes = 384 * 1024;
                p.code_lines = 1024;
                p.bench_code_lines = 2048;
                p.shared_code_lines = 512;
                p.shared_code_frac = 0.03;
            }
            SpecBenchmark::Calculix => {
                p.fresh_line_per_kinstr = 0.2;
                p.resident_bytes = 256 * 1024;
                p.code_lines = 128;
                p.bench_code_lines = 256;
            }
            SpecBenchmark::Sjeng => {
                p.fresh_line_per_kinstr = 16.5;
                p.resident_bytes = 384 * 1024;
                p.code_lines = 256;
                p.bench_code_lines = 512;
            }
            SpecBenchmark::Perlbench => {
                // Paper: large shared instruction footprint, libc-heavy.
                p.fresh_line_per_kinstr = 0.9;
                p.resident_bytes = 256 * 1024;
                p.code_lines = 1024;
                p.bench_code_lines = 1600;
                p.shared_code_lines = 512;
                p.shared_code_frac = 0.04;
            }
            SpecBenchmark::Astar => {
                p.fresh_line_per_kinstr = 0.55;
                p.resident_bytes = 256 * 1024;
                p.code_lines = 64;
                p.bench_code_lines = 128;
            }
            SpecBenchmark::H264ref => {
                // libc file routines (fopen, lseek, memset, free).
                p.fresh_line_per_kinstr = 0.5;
                p.resident_bytes = 256 * 1024;
                p.code_lines = 256;
                p.bench_code_lines = 512;
                p.shared_code_frac = 0.03;
            }
            SpecBenchmark::Milc => {
                p.fresh_line_per_kinstr = 16.2;
                p.resident_bytes = 384 * 1024;
                p.code_lines = 64;
                p.bench_code_lines = 128;
            }
            SpecBenchmark::Sphinx3 => {
                p.fresh_line_per_kinstr = 0.26;
                p.resident_bytes = 256 * 1024;
                p.code_lines = 128;
                p.bench_code_lines = 256;
            }
            SpecBenchmark::Namd => {
                p.fresh_line_per_kinstr = 0.16;
                p.resident_bytes = 256 * 1024;
                p.code_lines = 96;
                p.bench_code_lines = 192;
            }
            SpecBenchmark::Gromacs => {
                p.fresh_line_per_kinstr = 0.28;
                p.resident_bytes = 256 * 1024;
                p.code_lines = 96;
                p.bench_code_lines = 192;
            }
            SpecBenchmark::Zeusmp => {
                p.fresh_line_per_kinstr = 8.6;
                p.resident_bytes = 384 * 1024;
                p.code_lines = 96;
                p.bench_code_lines = 192;
            }
            SpecBenchmark::Cactus => {
                p.fresh_line_per_kinstr = 21.5;
                p.resident_bytes = 384 * 1024;
                p.code_lines = 96;
                p.bench_code_lines = 192;
            }
        }
        p
    }

    /// Builds instance `instance` (0 or 1) of this benchmark as a runnable
    /// program.
    pub fn workload(self, instance: usize) -> SyntheticWorkload {
        SyntheticWorkload::new(self.params(), self.bench_id(), instance)
    }

    /// The paper's Table II *baseline* LLC MPKI for the two-instance run of
    /// this benchmark, where reported (used for calibration checks and
    /// EXPERIMENTS.md). `None` for zeusmp/cactus, which only appear in
    /// mixed pairs.
    pub fn paper_baseline_mpki(self) -> Option<f64> {
        match self {
            SpecBenchmark::Specrand => Some(0.0035),
            SpecBenchmark::Lbm => Some(14.0349),
            SpecBenchmark::Leslie3d => Some(20.6163),
            SpecBenchmark::Gobmk => Some(3.2832),
            SpecBenchmark::Libquantum => Some(5.8532),
            SpecBenchmark::Wrf => Some(4.7286),
            SpecBenchmark::Calculix => Some(0.2099),
            SpecBenchmark::Sjeng => Some(16.7773),
            SpecBenchmark::Perlbench => Some(1.021),
            SpecBenchmark::Astar => Some(0.5654),
            SpecBenchmark::H264ref => Some(0.555),
            SpecBenchmark::Milc => Some(16.4722),
            SpecBenchmark::Sphinx3 => Some(0.2648),
            SpecBenchmark::Namd => Some(0.1623),
            SpecBenchmark::Gromacs => Some(0.292),
            SpecBenchmark::Zeusmp | SpecBenchmark::Cactus => None,
        }
    }
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for b in SpecBenchmark::ALL {
            b.params().validate();
        }
    }

    #[test]
    fn bench_ids_are_unique() {
        let mut ids: Vec<_> = SpecBenchmark::ALL.iter().map(|b| b.bench_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), SpecBenchmark::ALL.len());
    }

    #[test]
    fn names_match_display() {
        assert_eq!(SpecBenchmark::Lbm.to_string(), "lbm");
        assert_eq!(SpecBenchmark::H264ref.name(), "h264ref");
    }

    #[test]
    fn fresh_rates_track_paper_mpki_ordering() {
        // The calibration must at least preserve Table II's ordering
        // between clearly-separated benchmarks.
        let f = |b: SpecBenchmark| b.params().fresh_line_per_kinstr;
        assert!(f(SpecBenchmark::Leslie3d) > f(SpecBenchmark::Lbm));
        assert!(f(SpecBenchmark::Lbm) > f(SpecBenchmark::Libquantum));
        assert!(f(SpecBenchmark::Libquantum) > f(SpecBenchmark::Perlbench));
        assert!(f(SpecBenchmark::Perlbench) > f(SpecBenchmark::Namd));
    }

    #[test]
    fn workload_instances_share_text() {
        let a = SpecBenchmark::Wrf.workload(0);
        let b = SpecBenchmark::Wrf.workload(1);
        assert_eq!(a.params().name, b.params().name);
    }
}
