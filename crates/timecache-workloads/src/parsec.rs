//! PARSEC workload presets: 2-thread shared-memory programs.
//!
//! The paper runs pthread PARSEC benchmarks with 2 threads on 2 separate
//! cores (system-emulation mode, clone allocating the second thread to the
//! other core). Both threads belong to one process: they share the binary
//! text and the benchmark's shared data arrays, while keeping thread-local
//! stacks and data partitions. TimeCache tracks visibility per *hardware
//! context*, so the threads still incur first-access misses against each
//! other — but only at the shared LLC, since they never co-reside on a
//! core's L1 (Fig. 9b).

use crate::synthetic::{SyntheticParams, SyntheticWorkload};

/// The PARSEC benchmarks of Fig. 9 / Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ParsecBenchmark {
    Fluidanimate,
    Raytrace,
    Blackscholes,
    X264,
    Swaptions,
    Facesim,
}

impl ParsecBenchmark {
    /// Every benchmark, in Table II order.
    pub const ALL: [ParsecBenchmark; 6] = [
        ParsecBenchmark::Fluidanimate,
        ParsecBenchmark::Raytrace,
        ParsecBenchmark::Blackscholes,
        ParsecBenchmark::X264,
        ParsecBenchmark::Swaptions,
        ParsecBenchmark::Facesim,
    ];

    /// Display name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            ParsecBenchmark::Fluidanimate => "fluidanimate",
            ParsecBenchmark::Raytrace => "raytrace",
            ParsecBenchmark::Blackscholes => "blackscholes",
            ParsecBenchmark::X264 => "x264",
            ParsecBenchmark::Swaptions => "swaptions",
            ParsecBenchmark::Facesim => "facesim",
        }
    }

    /// A stable id selecting the shared binary text region (offset past the
    /// SPEC ids so the suites never alias).
    pub fn bench_id(self) -> usize {
        64 + Self::ALL.iter().position(|&b| b == self).expect("in ALL")
    }

    /// Calibrated parameters for one thread of this benchmark.
    ///
    /// Compared with SPEC presets, the PARSEC ones exercise a shared data
    /// segment (the benchmark's in-memory dataset) and lower overall miss
    /// traffic, matching Table II's much smaller PARSEC MPKI values.
    pub fn params(self) -> SyntheticParams {
        let mut p = SyntheticParams {
            name: self.name().to_owned(),
            seed: 0xBEEF00 ^ self.bench_id() as u64,
            shared_data_frac: 0.25,
            ..SyntheticParams::default()
        };
        match self {
            ParsecBenchmark::Fluidanimate => {
                p.fresh_line_per_kinstr = 0.10;
                p.peer_fresh_frac = 0.25;
                p.resident_bytes = 256 * 1024;
                p.shared_data_bytes = 768 * 1024;
                p.bench_code_lines = 256;
            }
            ParsecBenchmark::Raytrace => {
                p.fresh_line_per_kinstr = 0.25;
                p.peer_fresh_frac = 0.01;
                p.resident_bytes = 192 * 1024;
                p.shared_data_bytes = 512 * 1024;
                p.bench_code_lines = 512;
            }
            ParsecBenchmark::Blackscholes => {
                p.fresh_line_per_kinstr = 0.04;
                p.peer_fresh_frac = 0.10;
                p.resident_bytes = 128 * 1024;
                p.shared_data_bytes = 1 << 20;
                p.bench_code_lines = 64;
            }
            ParsecBenchmark::X264 => {
                p.fresh_line_per_kinstr = 0.8;
                p.peer_fresh_frac = 0.05;
                p.resident_bytes = 256 * 1024;
                p.shared_data_bytes = 512 * 1024;
                p.bench_code_lines = 512;
                p.store_ratio = 0.4;
            }
            ParsecBenchmark::Swaptions => {
                p.fresh_line_per_kinstr = 0.004;
                p.peer_fresh_frac = 0.05;
                p.resident_bytes = 64 * 1024;
                p.shared_data_bytes = 256 * 1024;
                p.bench_code_lines = 64;
            }
            ParsecBenchmark::Facesim => {
                p.fresh_line_per_kinstr = 3.2;
                p.peer_fresh_frac = 0.002;
                p.resident_bytes = 256 * 1024;
                p.shared_data_bytes = 512 * 1024;
                p.bench_code_lines = 512;
            }
        }
        p
    }

    /// Builds thread `thread` (0 or 1) of this benchmark.
    pub fn thread_workload(self, thread: usize) -> SyntheticWorkload {
        // Threads share text (same bench_id) and the shared data segment;
        // the `instance` only separates the thread-local arenas.
        SyntheticWorkload::new(self.params(), self.bench_id(), 16 + thread)
    }

    /// The paper's Table II baseline LLC MPKI for this benchmark.
    pub fn paper_baseline_mpki(self) -> f64 {
        match self {
            ParsecBenchmark::Fluidanimate => 0.1317,
            ParsecBenchmark::Raytrace => 0.2833,
            ParsecBenchmark::Blackscholes => 0.0466,
            ParsecBenchmark::X264 => 0.8264,
            ParsecBenchmark::Swaptions => 0.0051,
            ParsecBenchmark::Facesim => 3.3585,
        }
    }

    /// The paper's Table II normalized execution time (overhead column).
    pub fn paper_overhead(self) -> f64 {
        match self {
            ParsecBenchmark::Fluidanimate => 1.029,
            ParsecBenchmark::Raytrace => 1.0015,
            ParsecBenchmark::Blackscholes => 1.0013,
            ParsecBenchmark::X264 => 1.0052,
            ParsecBenchmark::Swaptions => 1.0025,
            ParsecBenchmark::Facesim => 1.0086,
        }
    }
}

impl std::fmt::Display for ParsecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBenchmark;

    #[test]
    fn presets_validate() {
        for b in ParsecBenchmark::ALL {
            b.params().validate();
        }
    }

    #[test]
    fn ids_disjoint_from_spec() {
        for p in ParsecBenchmark::ALL {
            for s in SpecBenchmark::ALL {
                assert_ne!(p.bench_id(), s.bench_id());
            }
        }
    }

    #[test]
    fn threads_share_data_segment() {
        for b in ParsecBenchmark::ALL {
            assert!(b.params().shared_data_bytes > 0, "{b}");
            assert!(b.params().shared_data_frac > 0.0, "{b}");
        }
    }

    #[test]
    fn paper_values_in_expected_ranges() {
        for b in ParsecBenchmark::ALL {
            assert!(b.paper_overhead() >= 1.0 && b.paper_overhead() < 1.05);
            assert!(b.paper_baseline_mpki() < 4.0);
        }
    }
}
