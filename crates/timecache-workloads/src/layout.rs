//! Address-space layout conventions for generated workloads.
//!
//! The simulator is physically addressed, so "shared software" simply means
//! two programs emitting accesses to the same addresses — exactly what a
//! shared library mapping, a deduplicated page, or a forked address space
//! produces on real hardware.
//!
//! Regions are spaced far apart so distinct regions never share a cache
//! line, and each process's private regions are disjoint by construction.

use timecache_sim::Addr;

/// Cache line size assumed by the layout helpers (matches Table I).
pub const LINE: u64 = 64;

/// Base of the system-wide shared library text (libc et al.): shared by
/// *every* process, like the single physical copy of a shared library.
pub const SHARED_LIB_CODE: Addr = 0x7F00_0000_0000;

/// Base of the shared-library *data* (e.g. deduplicated pages, page-cache
/// pages served to multiple readers).
pub const SHARED_LIB_DATA: Addr = 0x7E00_0000_0000;

/// Base of explicitly shared memory segments (`mmap(MAP_SHARED)`), used by
/// the attack microbenchmarks and PARSEC-style thread workloads.
pub const SHARED_SEGMENT: Addr = 0x6000_0000_0000;

/// Base of per-benchmark binary text. Two instances of the *same* benchmark
/// share their text (same physical pages); different benchmarks do not.
pub const BENCH_CODE: Addr = 0x5000_0000_0000;

/// Base of per-process private memory.
pub const PRIVATE: Addr = 0x1000_0000_0000;

/// Stride between per-benchmark code regions (16 MiB is far larger than
/// any generated text footprint).
pub const BENCH_CODE_STRIDE: u64 = 16 << 20;

/// Stride between per-process private arenas (64 GiB).
pub const PRIVATE_STRIDE: u64 = 64 << 30;

/// The text base for benchmark number `bench_id`.
pub fn bench_code_base(bench_id: usize) -> Addr {
    BENCH_CODE + bench_id as u64 * BENCH_CODE_STRIDE
}

/// The private arena base for process instance `instance`.
pub fn private_base(instance: usize) -> Addr {
    PRIVATE + instance as u64 * PRIVATE_STRIDE
}

/// The address of code line `i` within a region.
pub fn code_line(base: Addr, i: u64) -> Addr {
    base + i * LINE
}

// The shared regions are ordered and disjoint by construction; checked at
// compile time so a layout edit cannot silently overlap them.
const _: () = assert!(SHARED_SEGMENT < SHARED_LIB_DATA);
const _: () = assert!(SHARED_LIB_DATA < SHARED_LIB_CODE);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        // Private arenas never reach the shared segments for any plausible
        // instance count (up to 256 processes), and bench code regions
        // never collide.
        assert!(private_base(255) + PRIVATE_STRIDE < BENCH_CODE);
        assert!(bench_code_base(255) + BENCH_CODE_STRIDE < SHARED_SEGMENT);
    }

    #[test]
    fn bench_code_bases_are_distinct() {
        assert_ne!(bench_code_base(0), bench_code_base(1));
        assert_eq!(bench_code_base(2) - bench_code_base(1), BENCH_CODE_STRIDE);
    }

    #[test]
    fn code_lines_step_by_line_size() {
        assert_eq!(code_line(SHARED_LIB_CODE, 0), SHARED_LIB_CODE);
        assert_eq!(code_line(SHARED_LIB_CODE, 3), SHARED_LIB_CODE + 192);
    }
}
