//! Multi-precision unsigned integers.
//!
//! A small, dependency-free bignum sufficient for modular exponentiation:
//! little-endian `u32` limbs with schoolbook multiplication, dedicated
//! squaring, and shift-and-subtract division for modular reduction. The
//! arithmetic is verified against `u128` references and property-tested in
//! the crate's test suite.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u32` limbs,
/// normalized: no trailing zero limbs).
///
/// # Examples
///
/// ```
/// use timecache_workloads::rsa::Mpi;
///
/// let a = Mpi::from_u64(0xFFFF_FFFF_FFFF_FFFF);
/// let b = a.mul(&a);
/// assert_eq!(b.to_hex(), "fffffffffffffffe0000000000000001");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Mpi {
    /// Little-endian limbs; empty means zero.
    limbs: Vec<u32>,
}

impl Mpi {
    /// Zero.
    pub fn zero() -> Self {
        Mpi { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Mpi { limbs: vec![1] }
    }

    /// From a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut m = Mpi {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        m.normalize();
        m
    }

    /// From little-endian limbs.
    pub fn from_limbs(limbs: Vec<u32>) -> Self {
        let mut m = Mpi { limbs };
        m.normalize();
        m
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters.
    pub fn from_hex(s: &str) -> Self {
        assert!(!s.is_empty(), "empty hex string");
        let mut limbs = Vec::with_capacity(s.len().div_ceil(8));
        let bytes = s.as_bytes();
        let mut i = s.len();
        while i > 0 {
            let lo = i.saturating_sub(8);
            let chunk = std::str::from_utf8(&bytes[lo..i]).expect("ascii hex");
            limbs.push(u32::from_str_radix(chunk, 16).expect("hex digit"));
            i = lo;
        }
        Mpi::from_limbs(limbs)
    }

    /// Lowercase hexadecimal rendering (no prefix; "0" for zero).
    pub fn to_hex(&self) -> String {
        if self.limbs.is_empty() {
            return "0".to_owned();
        }
        let mut s = format!("{:x}", self.limbs.last().expect("nonempty"));
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:08x}"));
        }
        s
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 32 - top.leading_zeros() as usize,
        }
    }

    /// Bit `i` (little-endian position; out-of-range bits are zero).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 32)
            .is_some_and(|limb| limb >> (i % 32) & 1 == 1)
    }

    /// The value as a `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// The number of `u32` limbs (0 for zero).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Addition.
    pub fn add(&self, rhs: &Mpi) -> Mpi {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let sum = limb as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        Mpi::from_limbs(out)
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self` (values are unsigned).
    pub fn sub(&self, rhs: &Mpi) -> Mpi {
        assert!(self.cmp_to(rhs) != Ordering::Less, "underflow in Mpi::sub");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - *rhs.limbs.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        Mpi::from_limbs(out)
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, rhs: &Mpi) -> Mpi {
        if self.is_zero() || rhs.is_zero() {
            return Mpi::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        Mpi::from_limbs(out)
    }

    /// Squaring (dedicated routine, as in GnuPG's `mpih_sqr`; numerically
    /// identical to `self.mul(self)` but exercised as its own code path —
    /// the attack distinguishes Square from Multiply by *address*).
    pub fn square(&self) -> Mpi {
        self.mul(self)
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Mpi {
        if self.is_zero() || bits == 0 {
            let mut c = self.clone();
            c.normalize();
            return c;
        }
        let (words, rem) = (bits / 32, bits % 32);
        let mut out = vec![0u32; self.limbs.len() + words + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            let v = (l as u64) << rem;
            out[i + words] |= v as u32;
            out[i + words + 1] |= (v >> 32) as u32;
        }
        Mpi::from_limbs(out)
    }

    /// Comparison (named to avoid clashing with `Ord::cmp`; `Ord` is also
    /// implemented and delegates here).
    pub fn cmp_to(&self, rhs: &Mpi) -> Ordering {
        if self.limbs.len() != rhs.limbs.len() {
            return self.limbs.len().cmp(&rhs.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(rhs.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Remainder: `self mod m`, by shift-and-subtract long division.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &Mpi) -> Mpi {
        assert!(!m.is_zero(), "division by zero");
        if self.cmp_to(m) == Ordering::Less {
            return self.clone();
        }
        let mut r = self.clone();
        let shift = self.bit_len() - m.bit_len();
        let mut d = m.shl(shift);
        for _ in 0..=shift {
            if r.cmp_to(&d) != Ordering::Less {
                r = r.sub(&d);
            }
            d = d.shr1();
        }
        debug_assert!(r.cmp_to(m) == Ordering::Less);
        r
    }

    /// Right shift by one bit.
    fn shr1(&self) -> Mpi {
        let mut out = vec![0u32; self.limbs.len()];
        let mut carry = 0u32;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            out[i] = l >> 1 | carry << 31;
            carry = l & 1;
        }
        Mpi::from_limbs(out)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl PartialOrd for Mpi {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Mpi {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

impl From<u64> for Mpi {
    fn from(v: u64) -> Self {
        Mpi::from_u64(v)
    }
}

impl fmt::Display for Mpi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 0xFFFF_FFFF, 0x1_0000_0000, u64::MAX] {
            assert_eq!(Mpi::from_u64(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn hex_roundtrip() {
        for s in ["0", "1", "deadbeef", "123456789abcdef0123456789abcdef"] {
            assert_eq!(Mpi::from_hex(s).to_hex(), s);
        }
    }

    #[test]
    fn add_sub_inverse() {
        let a = Mpi::from_hex("ffffffffffffffffffffffff");
        let b = Mpi::from_hex("1fffffffffffffff");
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), Mpi::zero());
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0u64, 0u64),
            (1, u64::MAX),
            (0xDEAD_BEEF, 0xCAFE_BABE),
            (u64::MAX, u64::MAX),
        ];
        for (a, b) in cases {
            let got = Mpi::from_u64(a).mul(&Mpi::from_u64(b));
            let want = a as u128 * b as u128;
            assert_eq!(got.to_hex(), format!("{want:x}"), "{a} * {b}");
        }
    }

    #[test]
    fn square_equals_self_mul() {
        let a = Mpi::from_hex("fedcba9876543210fedcba9876543210");
        assert_eq!(a.square(), a.mul(&a));
    }

    #[test]
    fn rem_matches_u128() {
        let cases = [
            (12345u128, 7u64),
            (u64::MAX as u128 * 3 + 5, u64::MAX),
            (0x1234_5678_9ABC_DEF0_u128 << 32, 0xFFFF_FFF1),
        ];
        for (a, m) in cases {
            let am = Mpi::from_hex(&format!("{a:x}"));
            let mm = Mpi::from_u64(m);
            let got = am.rem(&mm);
            let want = a % m as u128;
            assert_eq!(got.to_hex(), format!("{want:x}"), "{a} % {m}");
        }
    }

    #[test]
    fn shl_shifts() {
        let a = Mpi::from_u64(1);
        assert_eq!(a.shl(0), a);
        assert_eq!(a.shl(33).to_u64(), Some(1 << 33));
        assert_eq!(Mpi::from_u64(0b101).shl(31).to_hex(), "280000000");
    }

    #[test]
    fn bits_and_len() {
        let a = Mpi::from_u64(0b1011);
        assert_eq!(a.bit_len(), 4);
        assert!(a.bit(0) && a.bit(1) && !a.bit(2) && a.bit(3));
        assert!(!a.bit(1000));
        assert_eq!(Mpi::zero().bit_len(), 0);
    }

    #[test]
    fn ordering() {
        let a = Mpi::from_hex("100000000");
        let b = Mpi::from_hex("ffffffff");
        assert!(a > b);
        assert_eq!(a.cmp_to(&a), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        Mpi::from_u64(1).sub(&Mpi::from_u64(2));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn rem_by_zero_panics() {
        Mpi::from_u64(1).rem(&Mpi::zero());
    }

    #[test]
    fn display_is_prefixed_hex() {
        assert_eq!(Mpi::from_u64(255).to_string(), "0xff");
    }
}
