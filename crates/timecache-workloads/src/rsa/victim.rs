//! The RSA victim program: executes a modular exponentiation while
//! emitting the instruction fetches of each primitive into shared library
//! code lines.

use super::modexp::{ModExp, PrimitiveOp};
use super::mpi::Mpi;
use crate::layout;
use std::collections::VecDeque;
use timecache_os::{DataKind, Op, Program};
use timecache_sim::Addr;

/// Where the three primitives live in the shared crypto library.
///
/// Each function occupies a contiguous run of cache lines, mirroring a real
/// non-stripped `libgcrypt` where an attacker locates `mpih_sqr`,
/// `mpih_mul`, and `mpih_divrem` by their symbol offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsaCodeLayout {
    /// First code line of the Square routine.
    pub square: Addr,
    /// First code line of the Multiply routine.
    pub multiply: Addr,
    /// First code line of the Reduce routine.
    pub reduce: Addr,
    /// Lines each routine spans.
    pub lines_per_fn: u64,
}

impl RsaCodeLayout {
    /// The first line of the routine implementing `op`.
    pub fn base_of(&self, op: PrimitiveOp) -> Addr {
        match op {
            PrimitiveOp::Square => self.square,
            PrimitiveOp::Multiply => self.multiply,
            PrimitiveOp::Reduce => self.reduce,
        }
    }

    /// The probe address an attacker would watch for `op` (the routine's
    /// entry line).
    pub fn probe_addr(&self, op: PrimitiveOp) -> Addr {
        self.base_of(op)
    }
}

/// The canonical layout used by the experiments: the three routines sit in
/// the shared library region, well separated (distinct cache sets), each
/// spanning 4 lines.
pub fn rsa_code_layout() -> RsaCodeLayout {
    // Offset into the shared library away from the generic libc region the
    // synthetic workloads sweep (they touch the first `shared_code_lines`
    // lines; the crypto routines live 4096 lines in).
    let base = layout::SHARED_LIB_CODE + 4096 * layout::LINE;
    RsaCodeLayout {
        square: base,
        multiply: base + 64 * layout::LINE,
        reduce: base + 128 * layout::LINE,
        lines_per_fn: 4,
    }
}

/// A victim process computing `base ^ key mod modulus` with GnuPG-style
/// square-and-multiply, optionally in a loop (repeated decryptions).
///
/// For every primitive executed it fetches the primitive's code lines and
/// loads the operand limbs from its private heap; between exponentiations
/// it yields (models the victim blocking on I/O for the next request),
/// which is what gives a time-sliced attacker its sampling windows.
pub struct RsaVictim {
    layout: RsaCodeLayout,
    base: Mpi,
    key: Mpi,
    modulus: Mpi,
    exp: ModExp,
    queue: VecDeque<Op>,
    encryptions_left: u64,
    yield_between_bits: bool,
    heap: Addr,
    results: Vec<Mpi>,
}

impl RsaVictim {
    /// Creates a victim that performs `encryptions` exponentiations of
    /// `base ^ key mod modulus`.
    ///
    /// When `yield_between_bits` is set the victim yields after each
    /// exponent bit, modelling the fine-grained preemption a same-core
    /// attacker achieves with a high-priority timer; when clear it yields
    /// only between exponentiations.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or `encryptions` is zero.
    pub fn new(
        base: Mpi,
        key: Mpi,
        modulus: Mpi,
        encryptions: u64,
        yield_between_bits: bool,
    ) -> Self {
        assert!(encryptions > 0, "need at least one encryption");
        let exp = ModExp::new(base.clone(), key.clone(), modulus.clone());
        RsaVictim {
            layout: rsa_code_layout(),
            base,
            key,
            modulus,
            exp,
            queue: VecDeque::new(),
            encryptions_left: encryptions,
            yield_between_bits,
            heap: layout::private_base(8) + 0x1000_0000,
            results: Vec::new(),
        }
    }

    /// The code layout this victim fetches from (attackers probe the same
    /// addresses — that is the point of shared software).
    pub fn code_layout(&self) -> RsaCodeLayout {
        self.layout
    }

    /// Results of completed exponentiations (for correctness checks).
    pub fn results(&self) -> &[Mpi] {
        &self.results
    }

    /// The secret exponent (tests compare attacker recovery against it).
    pub fn key(&self) -> &Mpi {
        &self.key
    }

    /// Queue the instruction fetches and limb loads for one primitive.
    fn enqueue_primitive(&mut self, op: PrimitiveOp) {
        let base = self.layout.base_of(op);
        let limbs = self.exp.operand_limbs() as u64;
        // Walk the routine's code lines; interleave operand-limb loads
        // (4 bytes each, so several per line).
        for i in 0..self.layout.lines_per_fn {
            let pc = base + i * layout::LINE;
            let data_addr = self.heap + (i * 16 % limbs.max(1)) * 4;
            self.queue.push_back(Op::Instr {
                pc,
                data: Some((DataKind::Load, data_addr)),
            });
        }
        // A store of the result limbs (touches the heap line again).
        self.queue.push_back(Op::Instr {
            pc: base + (self.layout.lines_per_fn - 1) * layout::LINE,
            data: Some((DataKind::Store, self.heap)),
        });
    }

    fn refill_queue(&mut self) {
        // One exponent-bit's worth of primitives: Square;Reduce for a clear
        // bit, Square;Reduce;Multiply;Reduce for a set bit. The ModExp
        // exposes the bit boundary so a set bit's Multiply never spills
        // into the next scheduler window.
        loop {
            match self.exp.step() {
                Some(op) => {
                    self.enqueue_primitive(op);
                    if self.exp.at_bit_boundary() && self.yield_between_bits {
                        self.queue.push_back(Op::Yield {
                            pc: self.layout.reduce,
                        });
                        break;
                    }
                    if !self.yield_between_bits && self.queue.len() >= 64 {
                        break;
                    }
                }
                None => {
                    // Exponentiation finished.
                    self.results.push(self.exp.result().clone());
                    self.encryptions_left -= 1;
                    if self.encryptions_left == 0 {
                        self.queue.push_back(Op::Done);
                    } else {
                        self.exp =
                            ModExp::new(self.base.clone(), self.key.clone(), self.modulus.clone());
                        self.queue.push_back(Op::Yield {
                            pc: self.layout.reduce,
                        });
                    }
                    break;
                }
            }
        }
    }
}

impl Program for RsaVictim {
    fn next_op(&mut self) -> Op {
        while self.queue.is_empty() {
            self.refill_queue();
        }
        self.queue.pop_front().expect("refilled")
    }

    fn name(&self) -> &str {
        "rsa-victim"
    }
}

impl std::fmt::Debug for RsaVictim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RsaVictim")
            .field("key_bits", &self.key.bit_len())
            .field("encryptions_left", &self.encryptions_left)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(victim: &mut RsaVictim) -> Vec<Op> {
        let mut ops = Vec::new();
        loop {
            let op = victim.next_op();
            let done = op == Op::Done;
            ops.push(op);
            if done {
                break;
            }
        }
        ops
    }

    #[test]
    fn computes_correct_results_while_emitting() {
        let mut v = RsaVictim::new(
            Mpi::from_u64(4),
            Mpi::from_u64(13),
            Mpi::from_u64(497),
            2,
            true,
        );
        let _ = drain(&mut v);
        assert_eq!(v.results().len(), 2);
        assert_eq!(v.results()[0].to_u64(), Some(445));
        assert_eq!(v.results()[1].to_u64(), Some(445));
    }

    #[test]
    fn multiply_lines_fetched_only_for_set_bits() {
        let layout = rsa_code_layout();
        // Exponent 0b100: after the MSB, bits are 0,0 -> no Multiply.
        let mut v = RsaVictim::new(
            Mpi::from_u64(3),
            Mpi::from_u64(0b100),
            Mpi::from_u64(1009),
            1,
            true,
        );
        let mul_range = layout.multiply..layout.multiply + 4 * layout::LINE;
        let fetched_mul = drain(&mut v).iter().any(|op| match op {
            Op::Instr { pc, .. } => mul_range.contains(pc),
            _ => false,
        });
        assert!(!fetched_mul, "clear bits must not touch Multiply code");

        // Exponent 0b110: bits 1,0 -> Multiply fetched once.
        let mut v = RsaVictim::new(
            Mpi::from_u64(3),
            Mpi::from_u64(0b110),
            Mpi::from_u64(1009),
            1,
            true,
        );
        let fetched_mul = drain(&mut v).iter().any(|op| match op {
            Op::Instr { pc, .. } => mul_range.contains(pc),
            _ => false,
        });
        assert!(fetched_mul, "set bits must touch Multiply code");
    }

    #[test]
    fn yields_between_bits_when_asked() {
        let mut v = RsaVictim::new(
            Mpi::from_u64(3),
            Mpi::from_u64(0b1011),
            Mpi::from_u64(1009),
            1,
            true,
        );
        let yields = drain(&mut v)
            .iter()
            .filter(|op| matches!(op, Op::Yield { .. }))
            .count();
        // 3 post-MSB bits -> at least one yield per bit.
        assert!(yields >= 3, "yields {yields}");
    }

    #[test]
    fn code_layout_is_in_shared_library() {
        let l = rsa_code_layout();
        for op in [
            PrimitiveOp::Square,
            PrimitiveOp::Multiply,
            PrimitiveOp::Reduce,
        ] {
            assert!(l.probe_addr(op) >= layout::SHARED_LIB_CODE);
        }
        // Routines don't overlap.
        assert!(l.square + l.lines_per_fn * layout::LINE <= l.multiply);
        assert!(l.multiply + l.lines_per_fn * layout::LINE <= l.reduce);
    }
}
