//! RSA victim: a from-scratch multi-precision integer (MPI) library,
//! left-to-right square-and-multiply modular exponentiation, and a victim
//! program whose shared-library code-line accesses leak the exponent —
//! the target of the classic flush+reload attack the paper defends against
//! (Section VI-A.2).
//!
//! GnuPG's `mpi_powm` processes the secret exponent most-significant-bit
//! first: every bit costs a **Square** and a **Reduce**; a set bit
//! additionally costs a **Multiply** and another **Reduce**. An attacker
//! that can tell *when the Multiply routine's code lines become cached*
//! reads the key bit-by-bit. The victim here actually executes that
//! algorithm over real big integers (verified against reference
//! arithmetic), emitting instruction fetches into the shared code lines of
//! each primitive as it goes.

mod modexp;
mod mpi;
mod victim;

pub use modexp::{modexp, ModExp, PrimitiveOp};
pub use mpi::Mpi;
pub use victim::{rsa_code_layout, RsaCodeLayout, RsaVictim};
