//! Left-to-right square-and-multiply modular exponentiation with an
//! instrumented primitive stream.
//!
//! This mirrors the structure of GnuPG's `mpi_powm` as described in the
//! flush+reload paper (Yarom & Falkner, 2014) and in Section VI-A.2 of
//! TimeCache: scanning the exponent from its most significant bit, every
//! bit executes `Square; Reduce` and a **set** bit additionally executes
//! `Multiply; Reduce`. The sequence of primitives — observable through the
//! code lines they occupy in a shared library — is therefore a direct
//! transcript of the secret exponent.

use super::mpi::Mpi;

/// The three exponentiation primitives whose code the attack watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveOp {
    /// `mpih_sqr`: square the accumulator.
    Square,
    /// `mpih_mul`: multiply the accumulator by the base.
    Multiply,
    /// `mpih_divrem`: reduce the accumulator modulo the modulus.
    Reduce,
}

/// An in-progress modular exponentiation that yields its primitive
/// operations one at a time while actually computing the result.
///
/// # Examples
///
/// ```
/// use timecache_workloads::rsa::{ModExp, Mpi, PrimitiveOp};
///
/// // 4^13 mod 497 = 445; exponent 13 = 0b1101.
/// let mut me = ModExp::new(Mpi::from_u64(4), Mpi::from_u64(13), Mpi::from_u64(497));
/// let ops: Vec<PrimitiveOp> = std::iter::from_fn(|| me.step()).collect();
/// assert_eq!(me.result().to_u64(), Some(445));
/// // MSB of the exponent initializes the accumulator; the remaining bits
/// // 1, 0, 1 produce S R M R, S R, S R M R.
/// use PrimitiveOp::*;
/// assert_eq!(ops, vec![Square, Reduce, Multiply, Reduce,
///                      Square, Reduce,
///                      Square, Reduce, Multiply, Reduce]);
/// ```
#[derive(Debug, Clone)]
pub struct ModExp {
    base: Mpi,
    exponent: Mpi,
    modulus: Mpi,
    acc: Mpi,
    /// Next exponent bit to process (None before start / after finish).
    next_bit: Option<usize>,
    /// Primitives still pending for the current bit.
    pending: Vec<PrimitiveOp>,
}

impl ModExp {
    /// Prepares `base ^ exponent mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn new(base: Mpi, exponent: Mpi, modulus: Mpi) -> Self {
        assert!(!modulus.is_zero(), "modulus must be nonzero");
        let bits = exponent.bit_len();
        let (acc, next_bit) = if bits == 0 {
            // exponent 0: result is 1 (mod m).
            (Mpi::one().rem(&modulus), None)
        } else {
            // MSB handled by initializing the accumulator to base mod m.
            (base.rem(&modulus), bits.checked_sub(2))
        };
        ModExp {
            base,
            exponent,
            modulus,
            acc,
            next_bit: if bits >= 2 { next_bit } else { None },
            pending: Vec::new(),
        }
    }

    /// Executes the next primitive, returning which one ran, or `None` when
    /// the exponentiation is complete. Each call performs *real* big-integer
    /// arithmetic on the accumulator.
    pub fn step(&mut self) -> Option<PrimitiveOp> {
        if self.pending.is_empty() {
            let bit_index = self.next_bit?;
            let bit = self.exponent.bit(bit_index);
            // Queue this bit's primitive sequence (executed front-first).
            self.pending.push(PrimitiveOp::Square);
            self.pending.push(PrimitiveOp::Reduce);
            if bit {
                self.pending.push(PrimitiveOp::Multiply);
                self.pending.push(PrimitiveOp::Reduce);
            }
            self.pending.reverse(); // pop from the back
            self.next_bit = bit_index.checked_sub(1);
        }
        let op = self.pending.pop()?;
        match op {
            PrimitiveOp::Square => self.acc = self.acc.square(),
            PrimitiveOp::Multiply => self.acc = self.acc.mul(&self.base),
            PrimitiveOp::Reduce => self.acc = self.acc.rem(&self.modulus),
        }
        Some(op)
    }

    /// Whether every primitive has executed.
    pub fn is_done(&self) -> bool {
        self.pending.is_empty() && self.next_bit.is_none()
    }

    /// True when the next [`ModExp::step`] would begin a *new* exponent bit
    /// (or the exponentiation is finished) — i.e. the current bit's full
    /// S-R or S-R-M-R sequence has executed. The victim program yields on
    /// these boundaries so one scheduler window corresponds to exactly one
    /// key bit.
    pub fn at_bit_boundary(&self) -> bool {
        self.pending.is_empty()
    }

    /// The accumulator; equals `base^exponent mod modulus` once
    /// [`ModExp::is_done`].
    pub fn result(&self) -> &Mpi {
        &self.acc
    }

    /// Size of the working values in limbs (drives the victim's data
    /// footprint).
    pub fn operand_limbs(&self) -> usize {
        self.modulus.limb_count().max(self.acc.limb_count())
    }
}

/// Convenience: computes `base ^ exponent mod modulus` eagerly.
pub fn modexp(base: &Mpi, exponent: &Mpi, modulus: &Mpi) -> Mpi {
    let mut me = ModExp::new(base.clone(), exponent.clone(), modulus.clone());
    while me.step().is_some() {}
    me.result().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn me(b: u64, e: u64, m: u64) -> u64 {
        modexp(&Mpi::from_u64(b), &Mpi::from_u64(e), &Mpi::from_u64(m))
            .to_u64()
            .expect("fits")
    }

    /// Reference implementation over u128.
    fn reference(b: u64, e: u64, m: u64) -> u64 {
        let (mut result, mut base, mut exp) = (1u128, b as u128 % m as u128, e);
        while exp > 0 {
            if exp & 1 == 1 {
                result = result * base % m as u128;
            }
            base = base * base % m as u128;
            exp >>= 1;
        }
        result as u64
    }

    #[test]
    fn matches_reference() {
        for (b, e, m) in [
            (4, 13, 497),
            (2, 0, 7),
            (2, 1, 7),
            (0, 5, 7),
            (12345, 6789, 99991),
            (u32::MAX as u64, 65537, 0xFFFF_FFFB),
        ] {
            assert_eq!(me(b, e, m), reference(b, e, m), "{b}^{e} mod {m}");
        }
    }

    #[test]
    fn primitive_stream_encodes_exponent_bits() {
        // Exponent 0b10110: after the MSB, bits 0,1,1,0 produce
        // SR, SRMR, SRMR, SR.
        let mut m = ModExp::new(
            Mpi::from_u64(3),
            Mpi::from_u64(0b10110),
            Mpi::from_u64(1009),
        );
        let ops: Vec<_> = std::iter::from_fn(|| m.step()).collect();
        use PrimitiveOp::*;
        assert_eq!(
            ops,
            vec![
                Square, Reduce, Square, Reduce, Multiply, Reduce, Square, Reduce, Multiply, Reduce,
                Square, Reduce
            ]
        );
        assert!(m.is_done());
    }

    #[test]
    fn zero_and_one_bit_exponents() {
        let m = ModExp::new(Mpi::from_u64(5), Mpi::zero(), Mpi::from_u64(7));
        assert!(m.is_done());
        assert_eq!(m.result().to_u64(), Some(1));

        let mut m = ModExp::new(Mpi::from_u64(5), Mpi::one(), Mpi::from_u64(7));
        assert!(m.is_done(), "single-bit exponent needs no primitives");
        assert_eq!(m.step(), None);
        assert_eq!(m.result().to_u64(), Some(5));
    }

    #[test]
    fn large_operands() {
        // (2^128 - 1)^3 mod (2^127 - 1), cross-checked via algebra:
        // 2^128 - 1 = 2*(2^127 - 1) + 1 => base ≡ 1, so result is 1.
        let base = Mpi::from_hex("ffffffffffffffffffffffffffffffff");
        let modulus = Mpi::from_hex("7fffffffffffffffffffffffffffffff");
        let r = modexp(&base, &Mpi::from_u64(3), &modulus);
        assert_eq!(r.to_u64(), Some(1));
    }

    #[test]
    #[should_panic(expected = "modulus")]
    fn zero_modulus_rejected() {
        ModExp::new(Mpi::one(), Mpi::one(), Mpi::zero());
    }
}
