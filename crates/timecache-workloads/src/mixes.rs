//! The workload pairings evaluated in Table II / Fig. 7.
//!
//! The paper's single-core experiments run two processes time-sliced on one
//! core: fifteen same-benchmark pairs ("2Xlbm", ...) and nine mixed pairs
//! ("leslie+gobmk", ...). Each [`PairSpec`] also carries the paper-reported
//! normalized execution time and LLC MPKI values so the experiment harness
//! can print paper-vs-measured tables for `EXPERIMENTS.md`.

use crate::spec::SpecBenchmark;

/// One Table II row: a pair of benchmarks plus the paper's reported values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairSpec {
    /// First process's benchmark.
    pub a: SpecBenchmark,
    /// Second process's benchmark.
    pub b: SpecBenchmark,
    /// Table II "Overhead" (normalized execution time, TimeCache/baseline).
    pub paper_overhead: f64,
    /// Table II "MPKI LLC Baseline".
    pub paper_mpki_baseline: f64,
    /// Table II "MPKI LLC TimeCache".
    pub paper_mpki_timecache: f64,
}

impl PairSpec {
    /// Whether both processes run the same benchmark (a "2X" row).
    pub fn is_same(&self) -> bool {
        self.a == self.b
    }

    /// Table II's row label: "2Xlbm" or "leslie+gobmk".
    pub fn label(&self) -> String {
        if self.is_same() {
            format!("2X{}", self.a.name())
        } else {
            format!("{}+{}", self.a.name(), self.b.name())
        }
    }
}

/// The fifteen same-benchmark pairs of Table II, with paper values.
pub fn same_benchmark_pairs() -> Vec<PairSpec> {
    use SpecBenchmark::*;
    [
        (Specrand, 0.9908, 0.0035, 0.0238),
        (Lbm, 1.0039, 14.0349, 14.138),
        (Leslie3d, 1.0751, 20.6163, 24.3556),
        (Gobmk, 0.9961, 3.2832, 3.3361),
        (Libquantum, 1.0001, 5.8532, 5.8831),
        (Wrf, 1.0135, 4.7286, 4.8964),
        (Calculix, 1.0548, 0.2099, 0.2672),
        (Sjeng, 0.999, 16.7773, 16.8382),
        (Perlbench, 1.0134, 1.021, 1.1582),
        (Astar, 1.0107, 0.5654, 0.6144),
        (H264ref, 1.014, 0.555, 0.5953),
        (Milc, 1.0026, 16.4722, 16.5295),
        (Sphinx3, 0.9982, 0.2648, 0.3118),
        (Namd, 1.0108, 0.1623, 0.2181),
        (Gromacs, 0.9992, 0.292, 0.3703),
    ]
    .into_iter()
    .map(|(x, o, mb, mt)| PairSpec {
        a: x,
        b: x,
        paper_overhead: o,
        paper_mpki_baseline: mb,
        paper_mpki_timecache: mt,
    })
    .collect()
}

/// The nine mixed pairs of Table II, with paper values.
pub fn mixed_pairs() -> Vec<PairSpec> {
    use SpecBenchmark::*;
    [
        (Leslie3d, Gobmk, 0.9996, 22.3133, 22.3669),
        (Namd, Lbm, 1.0579, 6.3764, 7.1136),
        (Milc, Zeusmp, 1.0024, 12.5757, 12.6121),
        (Lbm, Wrf, 1.0007, 9.7181, 9.7898),
        (H264ref, Sjeng, 1.0108, 9.0769, 9.1915),
        (Perlbench, Wrf, 1.0143, 1.3984, 1.4626),
        (Cactus, Leslie3d, 1.0034, 21.2749, 21.3736),
        (Gobmk, Astar, 0.9994, 1.1053, 1.1469),
        (Zeusmp, Gromacs, 1.0035, 5.6352, 5.5924),
    ]
    .into_iter()
    .map(|(a, b, o, mb, mt)| PairSpec {
        a,
        b,
        paper_overhead: o,
        paper_mpki_baseline: mb,
        paper_mpki_timecache: mt,
    })
    .collect()
}

/// All 24 Table II SPEC rows, same-benchmark pairs first.
pub fn all_pairs() -> Vec<PairSpec> {
    let mut v = same_benchmark_pairs();
    v.extend(mixed_pairs());
    v
}

/// The paper's reported geometric-mean overhead for the SPEC runs (1.13 %).
pub const PAPER_SPEC_GEOMEAN_OVERHEAD: f64 = 1.0113;

/// The paper's reported average overhead for the PARSEC runs (0.8 %).
pub const PAPER_PARSEC_MEAN_OVERHEAD: f64 = 1.008;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_match_table_ii() {
        assert_eq!(same_benchmark_pairs().len(), 15);
        assert_eq!(mixed_pairs().len(), 9);
        assert_eq!(all_pairs().len(), 24);
    }

    #[test]
    fn labels_render_like_the_table() {
        assert_eq!(same_benchmark_pairs()[1].label(), "2Xlbm");
        assert_eq!(mixed_pairs()[0].label(), "leslie3d+gobmk");
    }

    #[test]
    fn paper_geomean_consistent_with_rows() {
        // The geometric mean of the overhead column should sit near the
        // paper's stated 1.13 % average.
        let rows = all_pairs();
        let log_sum: f64 = rows.iter().map(|r| r.paper_overhead.ln()).sum();
        let geomean = (log_sum / rows.len() as f64).exp();
        assert!(
            (geomean - PAPER_SPEC_GEOMEAN_OVERHEAD).abs() < 0.005,
            "geomean {geomean}"
        );
    }

    #[test]
    fn timecache_mpki_not_lower_than_baseline_mostly() {
        // First-access misses add MPKI in all but one noisy row
        // (zeusmp+gromacs, which the paper reports slightly below
        // baseline).
        let below: Vec<_> = all_pairs()
            .into_iter()
            .filter(|r| r.paper_mpki_timecache < r.paper_mpki_baseline)
            .map(|r| r.label())
            .collect();
        assert_eq!(below, vec!["zeusmp+gromacs".to_owned()]);
    }
}
