//! Property-based tests for the workload crate: the MPI bignum against
//! `u128` references, and modular exponentiation against a fast native
//! implementation.

use proptest::prelude::*;
use timecache_workloads::rsa::{modexp, ModExp, Mpi, PrimitiveOp};

fn native_modexp(b: u64, e: u64, m: u64) -> u64 {
    let (mut result, mut base, mut exp) = (1u128, b as u128 % m as u128, e);
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * base % m as u128;
        }
        base = base * base % m as u128;
        exp >>= 1;
    }
    result as u64
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = Mpi::from_u64(a).add(&Mpi::from_u64(b));
        let want = a as u128 + b as u128;
        prop_assert_eq!(got.to_hex(), format!("{:x}", want));
    }

    #[test]
    fn sub_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let got = Mpi::from_u64(hi).sub(&Mpi::from_u64(lo));
        prop_assert_eq!(got.to_hex(), format!("{:x}", hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = Mpi::from_u64(a).mul(&Mpi::from_u64(b));
        let want = a as u128 * b as u128;
        prop_assert_eq!(got.to_hex(), format!("{:x}", want));
    }

    #[test]
    fn rem_matches_u128(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        // A 128-bit dividend from two random halves.
        let wide = Mpi::from_u64(a).shl(64).add(&Mpi::from_u64(b));
        let got = wide.rem(&Mpi::from_u64(m));
        let want = ((a as u128) << 64 | b as u128) % m as u128;
        prop_assert_eq!(got.to_hex(), format!("{:x}", want));
    }

    #[test]
    fn square_equals_mul_self(limbs in prop::collection::vec(any::<u32>(), 0..12)) {
        let a = Mpi::from_limbs(limbs);
        prop_assert_eq!(a.square(), a.mul(&a));
    }

    #[test]
    fn hex_roundtrips(limbs in prop::collection::vec(any::<u32>(), 0..12)) {
        let a = Mpi::from_limbs(limbs);
        prop_assert_eq!(Mpi::from_hex(&a.to_hex()), a);
    }

    #[test]
    fn shl_matches_u128(a in any::<u64>(), shift in 0usize..64) {
        let got = Mpi::from_u64(a).shl(shift);
        let want = (a as u128) << shift;
        prop_assert_eq!(got.to_hex(), format!("{:x}", want));
    }

    #[test]
    fn modexp_matches_native(b in any::<u64>(), e in any::<u64>(), m in 2u64..) {
        let got = modexp(&Mpi::from_u64(b), &Mpi::from_u64(e), &Mpi::from_u64(m));
        prop_assert_eq!(got.to_hex(), format!("{:x}", native_modexp(b, e, m)));
    }

    /// The primitive stream is a faithful transcript of the exponent: one
    /// Square per post-MSB bit, one extra Multiply per set bit, Reduces
    /// pairing each.
    #[test]
    fn primitive_stream_counts(e in 2u64.., m in 3u64..) {
        let mut me = ModExp::new(Mpi::from_u64(7), Mpi::from_u64(e), Mpi::from_u64(m));
        let mut squares = 0u32;
        let mut multiplies = 0u32;
        let mut reduces = 0u32;
        while let Some(op) = me.step() {
            match op {
                PrimitiveOp::Square => squares += 1,
                PrimitiveOp::Multiply => multiplies += 1,
                PrimitiveOp::Reduce => reduces += 1,
            }
        }
        let bits = 64 - e.leading_zeros();
        let tail_ones = (e.count_ones() - 1) as u32; // MSB excluded
        prop_assert_eq!(squares, bits - 1);
        prop_assert_eq!(multiplies, tail_ones);
        prop_assert_eq!(reduces, squares + multiplies);
    }
}
