//! Randomized (deterministic, seed-driven) tests for the workload crate:
//! the MPI bignum against `u128` references, and modular exponentiation
//! against a fast native implementation.
//!
//! The workspace builds offline with no third-party crates (DESIGN.md §6),
//! so these use the crate's own [`FastRng`] over fixed seeds instead of
//! `proptest`.

use timecache_workloads::rng::FastRng;
use timecache_workloads::rsa::{modexp, ModExp, Mpi, PrimitiveOp};

fn native_modexp(b: u64, e: u64, m: u64) -> u64 {
    let (mut result, mut base, mut exp) = (1u128, b as u128 % m as u128, e);
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * base % m as u128;
        }
        base = base * base % m as u128;
        exp >>= 1;
    }
    result as u64
}

#[test]
fn add_matches_u128() {
    let mut rng = FastRng::seed_from_u64(1);
    for _ in 0..256 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let got = Mpi::from_u64(a).add(&Mpi::from_u64(b));
        let want = a as u128 + b as u128;
        assert_eq!(got.to_hex(), format!("{want:x}"));
    }
}

#[test]
fn sub_matches_u128() {
    let mut rng = FastRng::seed_from_u64(2);
    for _ in 0..256 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let got = Mpi::from_u64(hi).sub(&Mpi::from_u64(lo));
        assert_eq!(got.to_hex(), format!("{:x}", hi - lo));
    }
}

#[test]
fn mul_matches_u128() {
    let mut rng = FastRng::seed_from_u64(3);
    for _ in 0..256 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let got = Mpi::from_u64(a).mul(&Mpi::from_u64(b));
        let want = a as u128 * b as u128;
        assert_eq!(got.to_hex(), format!("{want:x}"));
    }
}

#[test]
fn rem_matches_u128() {
    let mut rng = FastRng::seed_from_u64(4);
    for _ in 0..256 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let m = rng.next_u64().max(1);
        // A 128-bit dividend from two random halves.
        let wide = Mpi::from_u64(a).shl(64).add(&Mpi::from_u64(b));
        let got = wide.rem(&Mpi::from_u64(m));
        let want = ((a as u128) << 64 | b as u128) % m as u128;
        assert_eq!(got.to_hex(), format!("{want:x}"));
    }
}

#[test]
fn square_equals_mul_self() {
    let mut rng = FastRng::seed_from_u64(5);
    for _ in 0..64 {
        let n = rng.next_below(12) as usize;
        let limbs: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
        let a = Mpi::from_limbs(limbs);
        assert_eq!(a.square(), a.mul(&a));
    }
}

#[test]
fn hex_roundtrips() {
    let mut rng = FastRng::seed_from_u64(6);
    for _ in 0..64 {
        let n = rng.next_below(12) as usize;
        let limbs: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
        let a = Mpi::from_limbs(limbs);
        assert_eq!(Mpi::from_hex(&a.to_hex()), a);
    }
}

#[test]
fn shl_matches_u128() {
    let mut rng = FastRng::seed_from_u64(7);
    for _ in 0..256 {
        let a = rng.next_u64();
        let shift = rng.next_below(64) as usize;
        let got = Mpi::from_u64(a).shl(shift);
        let want = (a as u128) << shift;
        assert_eq!(got.to_hex(), format!("{want:x}"));
    }
}

#[test]
fn modexp_matches_native() {
    let mut rng = FastRng::seed_from_u64(8);
    for _ in 0..64 {
        let (b, e) = (rng.next_u64(), rng.next_u64());
        let m = rng.next_u64().max(2);
        let got = modexp(&Mpi::from_u64(b), &Mpi::from_u64(e), &Mpi::from_u64(m));
        assert_eq!(got.to_hex(), format!("{:x}", native_modexp(b, e, m)));
    }
}

/// The primitive stream is a faithful transcript of the exponent: one
/// Square per post-MSB bit, one extra Multiply per set bit, Reduces
/// pairing each.
#[test]
fn primitive_stream_counts() {
    let mut rng = FastRng::seed_from_u64(9);
    for _ in 0..64 {
        let e = rng.next_u64().max(2);
        let m = rng.next_u64().max(3);
        let mut me = ModExp::new(Mpi::from_u64(7), Mpi::from_u64(e), Mpi::from_u64(m));
        let mut squares = 0u32;
        let mut multiplies = 0u32;
        let mut reduces = 0u32;
        while let Some(op) = me.step() {
            match op {
                PrimitiveOp::Square => squares += 1,
                PrimitiveOp::Multiply => multiplies += 1,
                PrimitiveOp::Reduce => reduces += 1,
            }
        }
        let bits = 64 - e.leading_zeros();
        let tail_ones = e.count_ones() - 1; // MSB excluded
        assert_eq!(squares, bits - 1, "e {e}");
        assert_eq!(multiplies, tail_ones, "e {e}");
        assert_eq!(reduces, squares + multiplies, "e {e}");
    }
}
