//! Width-parametric wrapping timestamps.
//!
//! TimeCache tags every cache line with the cycle count at which it was
//! filled (`Tc`) and every process with the cycle count at which it was last
//! preempted (`Ts`). Hardware counters have a fixed width (32 bits in the
//! paper's evaluation) and therefore roll over; the defense stays *correct*
//! across rollover (no stale hit is ever allowed) at the cost of extra
//! first-access misses, as analysed in Section VI-C of the paper.
//!
//! [`TimestampWidth`] captures the counter width and provides masking;
//! [`WrappingTime`] is a width-aware timestamp value supporting the exact
//! comparison and rollover-detection semantics the hardware implements.

use std::fmt;

/// The bit width of the hardware timestamp counters (`Tc`, `Ts`).
///
/// Valid widths are 1 through 64 bits. The paper evaluates 32-bit
/// timestamps; narrow widths (e.g. 7 bits, mirroring the paper's two-decimal-
/// digit illustration) are useful for exercising rollover behaviour in tests.
///
/// # Examples
///
/// ```
/// use timecache_core::TimestampWidth;
///
/// let w = TimestampWidth::new(8);
/// assert_eq!(w.mask(), 0xFF);
/// assert_eq!(w.truncate(0x1FE), 0xFE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimestampWidth(u8);

impl TimestampWidth {
    /// Creates a timestamp width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "timestamp width must be in 1..=64, got {bits}"
        );
        TimestampWidth(bits)
    }

    /// The width in bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// A mask with the low `bits()` bits set.
    pub fn mask(self) -> u64 {
        if self.0 == 64 {
            u64::MAX
        } else {
            (1u64 << self.0) - 1
        }
    }

    /// Truncates an unbounded cycle count to this width (models the counter
    /// rolling over).
    pub fn truncate(self, raw: u64) -> u64 {
        raw & self.mask()
    }

    /// The rollover period: the counter repeats every `2^bits` cycles.
    ///
    /// Returns `None` for 64-bit counters (period does not fit in `u64`).
    pub fn period(self) -> Option<u64> {
        if self.0 == 64 {
            None
        } else {
            Some(1u64 << self.0)
        }
    }
}

impl Default for TimestampWidth {
    /// The paper's evaluated width: 32 bits.
    fn default() -> Self {
        TimestampWidth(32)
    }
}

impl fmt::Display for TimestampWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

/// A timestamp value as the hardware sees it: truncated to the counter width.
///
/// `WrappingTime` pairs the truncated value with its width so comparisons and
/// rollover detection use the same semantics as the hardware comparator.
///
/// # Examples
///
/// ```
/// use timecache_core::{TimestampWidth, WrappingTime};
///
/// let w = TimestampWidth::new(8);
/// let ts = WrappingTime::from_cycle(98, w);
/// // A later raw cycle whose truncated value is *smaller* reveals rollover.
/// let now = WrappingTime::from_cycle(260, w); // 260 & 0xFF == 4
/// assert!(ts.rollover_since(now));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WrappingTime {
    value: u64,
    width: TimestampWidth,
}

impl WrappingTime {
    /// Builds a timestamp from an unbounded cycle count, truncating it to the
    /// counter width.
    pub fn from_cycle(raw: u64, width: TimestampWidth) -> Self {
        WrappingTime {
            value: width.truncate(raw),
            width,
        }
    }

    /// The truncated counter value.
    pub fn value(self) -> u64 {
        self.value
    }

    /// The counter width.
    pub fn width(self) -> TimestampWidth {
        self.width
    }

    /// The hardware comparator's predicate: is `tc` (a line fill time)
    /// strictly newer than `self` (a process preemption time)?
    ///
    /// This is a plain unsigned comparison of truncated values — exactly what
    /// the bit-serial comparator computes. It is only meaningful when no
    /// rollover occurred between `self` and `tc`; rollover is handled
    /// separately by [`WrappingTime::rollover_since`].
    pub fn is_older_than_fill(self, tc: u64) -> bool {
        debug_assert_eq!(tc, self.width.truncate(tc), "tc must be truncated");
        tc > self.value
    }

    /// Rollover detection as performed at process resumption (Section VI-C):
    /// the counter rolled over while the process was preempted iff the
    /// truncated current time is *smaller* than the saved `Ts`.
    ///
    /// When this returns `true` the hardware conservatively resets **all**
    /// s-bits for the resuming context, because newer lines may carry
    /// rolled-over (smaller) `Tc` values that the plain comparison would miss.
    ///
    /// This truncated comparison alone cannot detect a preemption lasting
    /// one or more *full* counter periods. Since trusted software keeps the
    /// preemption time at full precision anyway, that case is caught by the
    /// software-side check in [`crate::Snapshot::rollover_since`], which
    /// composes this hardware check with an elapsed-time test.
    ///
    /// # Panics
    ///
    /// Panics if `now` has a different width than `self`.
    pub fn rollover_since(self, now: WrappingTime) -> bool {
        assert_eq!(
            self.width, now.width,
            "comparing timestamps of different widths"
        );
        now.value < self.value
    }
}

impl fmt::Display for WrappingTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.value, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_masks() {
        assert_eq!(TimestampWidth::new(1).mask(), 0b1);
        assert_eq!(TimestampWidth::new(8).mask(), 0xFF);
        assert_eq!(TimestampWidth::new(32).mask(), 0xFFFF_FFFF);
        assert_eq!(TimestampWidth::new(64).mask(), u64::MAX);
    }

    #[test]
    fn width_period() {
        assert_eq!(TimestampWidth::new(8).period(), Some(256));
        assert_eq!(TimestampWidth::new(64).period(), None);
    }

    #[test]
    #[should_panic(expected = "timestamp width")]
    fn zero_width_rejected() {
        TimestampWidth::new(0);
    }

    #[test]
    #[should_panic(expected = "timestamp width")]
    fn oversized_width_rejected() {
        TimestampWidth::new(65);
    }

    #[test]
    fn truncation_wraps() {
        let w = TimestampWidth::new(8);
        assert_eq!(w.truncate(255), 255);
        assert_eq!(w.truncate(256), 0);
        assert_eq!(w.truncate(511), 255);
    }

    #[test]
    fn default_is_paper_width() {
        assert_eq!(TimestampWidth::default().bits(), 32);
    }

    #[test]
    fn fill_comparison_is_plain_unsigned() {
        let w = TimestampWidth::new(8);
        let ts = WrappingTime::from_cycle(100, w);
        assert!(ts.is_older_than_fill(101));
        assert!(!ts.is_older_than_fill(100));
        assert!(!ts.is_older_than_fill(99));
    }

    #[test]
    fn rollover_detected_when_now_wraps_below_ts() {
        // Paper example with 2 decimal digits: preempted at 98, resumed at
        // "105" which the counter shows as 5 -> rollover detected.
        let w = TimestampWidth::new(8);
        let ts = WrappingTime::from_cycle(250, w);
        let now = WrappingTime::from_cycle(260, w); // truncates to 4
        assert!(ts.rollover_since(now));
    }

    #[test]
    fn no_rollover_when_time_moves_forward() {
        let w = TimestampWidth::new(8);
        let ts = WrappingTime::from_cycle(102, w);
        let now = WrappingTime::from_cycle(105, w);
        assert!(!ts.rollover_since(now));
    }

    #[test]
    fn full_period_preemption_is_undetectable() {
        // Documented hardware limitation: exactly one full period later the
        // truncated values coincide and no rollover is flagged.
        let w = TimestampWidth::new(8);
        let ts = WrappingTime::from_cycle(10, w);
        let now = WrappingTime::from_cycle(10 + 256, w);
        assert!(!ts.rollover_since(now));
    }

    #[test]
    fn display_formats() {
        let w = TimestampWidth::new(8);
        assert_eq!(WrappingTime::from_cycle(7, w).to_string(), "7@8-bit");
    }
}
