//! Transposed SRAM array model for per-line timestamps.
//!
//! The paper stores the per-line fill timestamps `Tc` in a separate SRAM
//! array built from 8-T multi-access cells (after Neural Cache, Eckert et
//! al., ISCA 2018). The array supports two access modes:
//!
//! * **transpose interface** — used during normal cache operation to read or
//!   write *one line's* timestamp (a whole word at a time), e.g. when a fill
//!   updates `Tc`;
//! * **regular bit-line interface** — used at context switches to read the
//!   *same bit position of every line's timestamp simultaneously* (one
//!   bit-plane per cycle), feeding the bit-serial comparator.
//!
//! [`TransposeArray`] models the array at that level: words are physically
//! stored as bit-planes so the bit-plane read the comparator performs each
//! cycle is a contiguous slice, exactly like enabling one word line of the
//! transposed array.

use crate::timestamp::TimestampWidth;
use std::fmt;

const WORD_BITS: usize = 64;

/// An SRAM array of `num_words` timestamps, each `width` bits, stored
/// transposed (as bit-planes).
///
/// Bit-plane `b` holds bit `b` of every word, packed 64 lines per `u64`.
///
/// # Examples
///
/// ```
/// use timecache_core::{TransposeArray, TimestampWidth};
///
/// let mut t = TransposeArray::new(128, TimestampWidth::new(8));
/// t.write_word(3, 0xAB);
/// assert_eq!(t.read_word(3), 0xAB);
/// // Bit-plane 0 has bit 0 of word 3 set (0xAB & 1 == 1).
/// assert_eq!(t.bit_plane(0)[0] >> 3 & 1, 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TransposeArray {
    /// `planes[b]` = bit `b` of every word, `words_per_plane` u64s each.
    planes: Vec<Vec<u64>>,
    num_words: usize,
    width: TimestampWidth,
    words_per_plane: usize,
}

impl TransposeArray {
    /// Creates an array of `num_words` zeroed timestamps of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `num_words` is zero.
    pub fn new(num_words: usize, width: TimestampWidth) -> Self {
        assert!(num_words > 0, "transpose array must hold at least one word");
        let words_per_plane = num_words.div_ceil(WORD_BITS);
        TransposeArray {
            planes: vec![vec![0; words_per_plane]; width.bits() as usize],
            num_words,
            width,
            words_per_plane,
        }
    }

    /// Number of timestamps stored (one per cache line).
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Timestamp width.
    pub fn width(&self) -> TimestampWidth {
        self.width
    }

    /// Writes one line's timestamp through the transpose interface,
    /// truncating `value` to the array width (the hardware counter simply
    /// has no more wires than that).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_words()`.
    pub fn write_word(&mut self, index: usize, value: u64) {
        self.bounds(index);
        let value = self.width.truncate(value);
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        for (bit, plane) in self.planes.iter_mut().enumerate() {
            if value >> bit & 1 == 1 {
                plane[w] |= 1 << b;
            } else {
                plane[w] &= !(1 << b);
            }
        }
    }

    /// Reads one line's timestamp through the transpose interface.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_words()`.
    pub fn read_word(&self, index: usize) -> u64 {
        self.bounds(index);
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        self.planes
            .iter()
            .enumerate()
            .fold(0, |acc, (bit, plane)| acc | (plane[w] >> b & 1) << bit)
    }

    /// Reads one bit-plane through the regular bit-line interface: bit
    /// `bit` of every stored timestamp, packed 64 lines per `u64`.
    ///
    /// This is the operation the bit-serial comparator performs once per
    /// cycle, most significant plane first.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width().bits()`.
    pub fn bit_plane(&self, bit: u8) -> &[u64] {
        assert!(
            bit < self.width.bits(),
            "bit plane {bit} out of range for {} timestamps",
            self.width
        );
        &self.planes[bit as usize]
    }

    /// Number of `u64` words per bit-plane (the comparator mask length).
    pub fn words_per_plane(&self) -> usize {
        self.words_per_plane
    }

    fn bounds(&self, index: usize) {
        assert!(
            index < self.num_words,
            "word index {index} out of bounds for {} words",
            self.num_words
        );
    }
}

impl fmt::Debug for TransposeArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransposeArray")
            .field("num_words", &self.num_words)
            .field("width", &self.width)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let w = TimestampWidth::new(16);
        let mut t = TransposeArray::new(200, w);
        for i in 0..200 {
            t.write_word(i, (i as u64).wrapping_mul(2654435761) & w.mask());
        }
        for i in 0..200 {
            assert_eq!(
                t.read_word(i),
                (i as u64).wrapping_mul(2654435761) & w.mask()
            );
        }
    }

    #[test]
    fn write_truncates_to_width() {
        let mut t = TransposeArray::new(4, TimestampWidth::new(8));
        t.write_word(0, 0x1FF);
        assert_eq!(t.read_word(0), 0xFF);
    }

    #[test]
    fn overwrite_clears_old_bits() {
        let mut t = TransposeArray::new(4, TimestampWidth::new(8));
        t.write_word(1, 0xFF);
        t.write_word(1, 0x01);
        assert_eq!(t.read_word(1), 0x01);
    }

    #[test]
    fn bit_planes_are_transposed_view() {
        let mut t = TransposeArray::new(70, TimestampWidth::new(4));
        t.write_word(0, 0b1010);
        t.write_word(69, 0b0101);
        // Plane 1 (value bit 1) must have line 0 set, line 69 clear.
        assert_eq!(t.bit_plane(1)[0] & 1, 1);
        assert_eq!(t.bit_plane(1)[1] >> (69 - 64) & 1, 0);
        // Plane 2 the other way round.
        assert_eq!(t.bit_plane(2)[0] & 1, 0);
        assert_eq!(t.bit_plane(2)[1] >> (69 - 64) & 1, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn word_bounds_checked() {
        TransposeArray::new(10, TimestampWidth::new(8)).read_word(10);
    }

    #[test]
    #[should_panic(expected = "bit plane")]
    fn plane_bounds_checked() {
        let t = TransposeArray::new(10, TimestampWidth::new(8));
        t.bit_plane(8);
    }

    #[test]
    fn words_per_plane_rounds_up() {
        let t = TransposeArray::new(65, TimestampWidth::new(8));
        assert_eq!(t.words_per_plane(), 2);
    }
}
