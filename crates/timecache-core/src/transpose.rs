//! Transposed SRAM array model for per-line timestamps.
//!
//! The paper stores the per-line fill timestamps `Tc` in a separate SRAM
//! array built from 8-T multi-access cells (after Neural Cache, Eckert et
//! al., ISCA 2018). The array supports two access modes:
//!
//! * **transpose interface** — used during normal cache operation to read or
//!   write *one line's* timestamp (a whole word at a time), e.g. when a fill
//!   updates `Tc`;
//! * **regular bit-line interface** — used at context switches to read the
//!   *same bit position of every line's timestamp simultaneously* (one
//!   bit-plane per cycle), feeding the bit-serial comparator.
//!
//! In hardware both interfaces address the same cells, so each is free. In
//! software only one layout can be the fast one, and the two interfaces run
//! at wildly different rates: fills happen on every cache miss, bit-plane
//! sweeps only at context switches. [`TransposeArray`] therefore keeps the
//! **word-major** array authoritative — [`TransposeArray::write_word`] is a
//! single store — and maintains the bit-plane view lazily: writes mark
//! their 64-line *group* dirty, and [`TransposeArray::sync_planes`]
//! re-transposes only the dirty groups before a sweep. Streaming fills
//! touch consecutive flat indices, so a whole group of fills costs one
//! re-transposition instead of 64 scattered read-modify-writes per fill.
//!
//! [`crate::BitSerialComparator::compare`] calls `sync_planes` itself;
//! direct [`TransposeArray::bit_plane`] readers must sync first (enforced
//! by an assert).

use crate::timestamp::TimestampWidth;
use std::fmt;

const WORD_BITS: usize = 64;

/// An SRAM array of `num_words` timestamps, each `width` bits, readable
/// word-at-a-time (transpose interface) or bit-plane-at-a-time (regular
/// interface).
///
/// Bit-plane `b` holds bit `b` of every word, packed 64 lines per `u64`.
///
/// # Examples
///
/// ```
/// use timecache_core::{TransposeArray, TimestampWidth};
///
/// let mut t = TransposeArray::new(128, TimestampWidth::new(8));
/// t.write_word(3, 0xAB);
/// assert_eq!(t.read_word(3), 0xAB);
/// // Bit-plane reads see the write once the lazy view is synced.
/// t.sync_planes();
/// // Bit-plane 0 has bit 0 of word 3 set (0xAB & 1 == 1).
/// assert_eq!(t.bit_plane(0)[0] >> 3 & 1, 1);
/// ```
#[derive(Clone)]
pub struct TransposeArray {
    /// Word-major authoritative storage: `words[i]` is line `i`'s
    /// (truncated) timestamp. Every hot-path operation touches only this.
    words: Vec<u64>,
    /// `planes[b]` = bit `b` of every word, `words_per_plane` u64s each.
    /// Lazily rebuilt from `words` by [`TransposeArray::sync_planes`].
    planes: Vec<Vec<u64>>,
    /// One bit per 64-line group (group `g` covers flat lines
    /// `g*64..(g+1)*64`), set when the group's words changed since the
    /// planes were last rebuilt.
    dirty: Vec<u64>,
    /// Whether any group is dirty (cheap staleness check).
    stale: bool,
    num_words: usize,
    width: TimestampWidth,
    words_per_plane: usize,
}

impl TransposeArray {
    /// Creates an array of `num_words` zeroed timestamps of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `num_words` is zero.
    pub fn new(num_words: usize, width: TimestampWidth) -> Self {
        assert!(num_words > 0, "transpose array must hold at least one word");
        let words_per_plane = num_words.div_ceil(WORD_BITS);
        TransposeArray {
            words: vec![0; num_words],
            planes: vec![vec![0; words_per_plane]; width.bits() as usize],
            dirty: vec![0; words_per_plane.div_ceil(WORD_BITS)],
            stale: false,
            num_words,
            width,
            words_per_plane,
        }
    }

    /// Number of timestamps stored (one per cache line).
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Timestamp width.
    pub fn width(&self) -> TimestampWidth {
        self.width
    }

    /// Writes one line's timestamp through the transpose interface,
    /// truncating `value` to the array width (the hardware counter simply
    /// has no more wires than that). A single store plus a dirty-group mark;
    /// the bit-plane view catches up in [`TransposeArray::sync_planes`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_words()`.
    #[inline]
    pub fn write_word(&mut self, index: usize, value: u64) {
        self.bounds(index);
        self.words[index] = self.width.truncate(value);
        let group = index / WORD_BITS;
        self.dirty[group / WORD_BITS] |= 1 << (group % WORD_BITS);
        self.stale = true;
    }

    /// Reads one line's timestamp through the transpose interface.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_words()`.
    #[inline]
    pub fn read_word(&self, index: usize) -> u64 {
        self.bounds(index);
        self.words[index]
    }

    /// Brings the bit-plane view up to date with the word-major array by
    /// re-transposing every dirty 64-line group. Amortized cost: one group
    /// transposition per 64 (clustered) fills, paid only when a comparator
    /// sweep is about to run — never on the access hot path.
    pub fn sync_planes(&mut self) {
        if !self.stale {
            return;
        }
        for dw in 0..self.dirty.len() {
            let mut mask = self.dirty[dw];
            self.dirty[dw] = 0;
            while mask != 0 {
                let group = dw * WORD_BITS + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.rebuild_group(group);
            }
        }
        self.stale = false;
    }

    /// Re-transposes one 64-line group of `words` into column `group` of
    /// every plane.
    fn rebuild_group(&mut self, group: usize) {
        let base = group * WORD_BITS;
        let end = (base + WORD_BITS).min(self.num_words);
        let words = &self.words[base..end];
        for (bit, plane) in self.planes.iter_mut().enumerate() {
            let mut acc = 0u64;
            for (lane, &w) in words.iter().enumerate() {
                acc |= (w >> bit & 1) << lane;
            }
            plane[group] = acc;
        }
    }

    /// Reads one bit-plane through the regular bit-line interface: bit
    /// `bit` of every stored timestamp, packed 64 lines per `u64`.
    ///
    /// This is the operation the bit-serial comparator performs once per
    /// cycle, most significant plane first.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width().bits()`, or if writes are pending —
    /// call [`TransposeArray::sync_planes`] before reading planes
    /// ([`crate::BitSerialComparator::compare`] does this itself).
    pub fn bit_plane(&self, bit: u8) -> &[u64] {
        assert!(
            !self.stale,
            "bit-plane read with unsynced writes: call sync_planes() first"
        );
        assert!(
            bit < self.width.bits(),
            "bit plane {bit} out of range for {} timestamps",
            self.width
        );
        &self.planes[bit as usize]
    }

    /// Number of `u64` words per bit-plane (the comparator mask length).
    pub fn words_per_plane(&self) -> usize {
        self.words_per_plane
    }

    #[inline]
    fn bounds(&self, index: usize) {
        assert!(
            index < self.num_words,
            "word index {index} out of bounds for {} words",
            self.num_words
        );
    }
}

/// Equality is over the authoritative word-major contents; the lazy plane
/// view and dirty bookkeeping are representation details.
impl PartialEq for TransposeArray {
    fn eq(&self, other: &Self) -> bool {
        self.num_words == other.num_words && self.width == other.width && self.words == other.words
    }
}

impl Eq for TransposeArray {}

impl fmt::Debug for TransposeArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransposeArray")
            .field("num_words", &self.num_words)
            .field("width", &self.width)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let w = TimestampWidth::new(16);
        let mut t = TransposeArray::new(200, w);
        for i in 0..200 {
            t.write_word(i, (i as u64).wrapping_mul(2654435761) & w.mask());
        }
        for i in 0..200 {
            assert_eq!(
                t.read_word(i),
                (i as u64).wrapping_mul(2654435761) & w.mask()
            );
        }
    }

    #[test]
    fn write_truncates_to_width() {
        let mut t = TransposeArray::new(4, TimestampWidth::new(8));
        t.write_word(0, 0x1FF);
        assert_eq!(t.read_word(0), 0xFF);
    }

    #[test]
    fn overwrite_clears_old_bits() {
        let mut t = TransposeArray::new(4, TimestampWidth::new(8));
        t.write_word(1, 0xFF);
        t.write_word(1, 0x01);
        assert_eq!(t.read_word(1), 0x01);
        t.sync_planes();
        assert_eq!(t.bit_plane(0)[0] >> 1 & 1, 1);
        assert_eq!(t.bit_plane(1)[0] >> 1 & 1, 0);
    }

    #[test]
    fn bit_planes_are_transposed_view() {
        let mut t = TransposeArray::new(70, TimestampWidth::new(4));
        t.write_word(0, 0b1010);
        t.write_word(69, 0b0101);
        t.sync_planes();
        // Plane 1 (value bit 1) must have line 0 set, line 69 clear.
        assert_eq!(t.bit_plane(1)[0] & 1, 1);
        assert_eq!(t.bit_plane(1)[1] >> (69 - 64) & 1, 0);
        // Plane 2 the other way round.
        assert_eq!(t.bit_plane(2)[0] & 1, 0);
        assert_eq!(t.bit_plane(2)[1] >> (69 - 64) & 1, 1);
    }

    #[test]
    fn sync_rebuilds_only_dirty_groups_but_exactly() {
        // Scatter writes across 3 of 4 groups; after sync every plane word
        // must match a from-scratch transposition.
        let w = TimestampWidth::new(8);
        let mut t = TransposeArray::new(250, w);
        for i in [0usize, 63, 64, 200, 249] {
            t.write_word(i, (i as u64).wrapping_mul(0x9E37) & w.mask());
        }
        t.sync_planes();
        for bit in 0..8u8 {
            for i in 0..250 {
                let expect = t.read_word(i) >> bit & 1;
                let got = t.bit_plane(bit)[i / 64] >> (i % 64) & 1;
                assert_eq!(got, expect, "bit {bit} line {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsynced writes")]
    fn stale_plane_read_rejected() {
        let mut t = TransposeArray::new(10, TimestampWidth::new(8));
        t.write_word(0, 1);
        t.bit_plane(0);
    }

    #[test]
    fn fresh_array_planes_are_clean() {
        // A never-written array is all-zero in both views: no sync needed.
        let t = TransposeArray::new(10, TimestampWidth::new(8));
        assert_eq!(t.bit_plane(0), &[0]);
    }

    #[test]
    fn equality_ignores_plane_staleness() {
        let mut a = TransposeArray::new(10, TimestampWidth::new(8));
        let mut b = TransposeArray::new(10, TimestampWidth::new(8));
        a.write_word(3, 42);
        b.write_word(3, 42);
        a.sync_planes(); // a synced, b stale: still equal
        assert_eq!(a, b);
        b.write_word(4, 1);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn word_bounds_checked() {
        TransposeArray::new(10, TimestampWidth::new(8)).read_word(10);
    }

    #[test]
    #[should_panic(expected = "bit plane")]
    fn plane_bounds_checked() {
        let t = TransposeArray::new(10, TimestampWidth::new(8));
        t.bit_plane(8);
    }

    #[test]
    fn words_per_plane_rounds_up() {
        let t = TransposeArray::new(65, TimestampWidth::new(8));
        assert_eq!(t.words_per_plane(), 2);
    }
}
