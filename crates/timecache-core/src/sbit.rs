//! Per-hardware-context security-bit arrays.
//!
//! An [`SBitArray`] holds one bit per cache line for one hardware context:
//! bit set ⇔ "the software context currently executing on this hardware
//! context has already accessed this resident line (and paid the
//! corresponding miss or first-access-miss latency)".
//!
//! The array is stored as packed 64-bit words, mirroring how the hardware
//! reads and writes s-bits through the regular bit-line interface in
//! cache-line-sized chunks during context-switch save/restore.

use std::fmt;

const WORD_BITS: usize = 64;

/// A packed bit array with one s-bit per cache line.
///
/// # Examples
///
/// ```
/// use timecache_core::SBitArray;
///
/// let mut s = SBitArray::new(100);
/// assert!(!s.get(3));
/// s.set(3);
/// assert!(s.get(3));
/// s.clear(3);
/// assert!(!s.get(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SBitArray {
    words: Vec<u64>,
    len: usize,
}

impl SBitArray {
    /// Creates an array of `len` cleared s-bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "s-bit array must cover at least one line");
        SBitArray {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Builds an array from packed words (same layout as
    /// [`SBitArray::words`]). Bits beyond `len` in the final word are
    /// cleared.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or `words` has the wrong word count.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert!(len > 0, "s-bit array must cover at least one line");
        assert_eq!(
            words.len(),
            len.div_ceil(WORD_BITS),
            "word count mismatch for {len} lines"
        );
        let tail = len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        SBitArray { words, len }
    }

    /// Number of lines covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: construction requires at least one line.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reads the s-bit for `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= len()`.
    pub fn get(&self, line: usize) -> bool {
        self.bounds(line);
        self.words[line / WORD_BITS] >> (line % WORD_BITS) & 1 == 1
    }

    /// Sets the s-bit for `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= len()`.
    pub fn set(&mut self, line: usize) {
        self.bounds(line);
        self.words[line / WORD_BITS] |= 1 << (line % WORD_BITS);
    }

    /// Clears the s-bit for `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= len()`.
    pub fn clear(&mut self, line: usize) {
        self.bounds(line);
        self.words[line / WORD_BITS] &= !(1 << (line % WORD_BITS));
    }

    /// Clears every s-bit (used on rollover and for newly created processes).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set s-bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Applies a reset mask produced by the bit-serial comparator: every line
    /// whose mask bit is set has its s-bit cleared. Returns the number of
    /// s-bits that were actually cleared (set before, clear after).
    ///
    /// # Panics
    ///
    /// Panics if the mask does not have exactly `len()` bits' worth of words.
    pub fn apply_reset_mask(&mut self, mask: &[u64]) -> usize {
        assert_eq!(
            mask.len(),
            self.words.len(),
            "reset mask has {} words, expected {}",
            mask.len(),
            self.words.len()
        );
        let mut cleared = 0;
        for (w, m) in self.words.iter_mut().zip(mask) {
            cleared += (*w & m).count_ones() as usize;
            *w &= !m;
        }
        cleared
    }

    /// Overwrites this array's contents from another array of the same
    /// length (models the restore path: loading saved s-bits through the
    /// regular bit-line interface).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &SBitArray) {
        assert_eq!(self.len, other.len, "s-bit array length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// The packed words backing the array. Word `i` holds lines
    /// `64*i .. 64*i+63`, line index increasing from bit 0.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The number of bytes a save or restore of this array transfers
    /// (Section VI-D: e.g. 2 KiB for a 64 K-line 8 MB LLC).
    pub fn storage_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Iterates over the indices of set s-bits.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            (0..WORD_BITS)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| wi * WORD_BITS + b)
                .filter(move |&i| i < self.len)
        })
    }

    fn bounds(&self, line: usize) {
        assert!(
            line < self.len,
            "line index {line} out of bounds for {} lines",
            self.len
        );
    }
}

impl fmt::Debug for SBitArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SBitArray")
            .field("len", &self.len)
            .field("set", &self.count_set())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_cleared() {
        let s = SBitArray::new(130);
        assert_eq!(s.count_set(), 0);
        assert!((0..130).all(|i| !s.get(i)));
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut s = SBitArray::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            s.set(i);
            assert!(s.get(i), "bit {i}");
        }
        assert_eq!(s.count_set(), 8);
        s.clear(64);
        assert!(!s.get(64));
        assert_eq!(s.count_set(), 7);
    }

    #[test]
    fn clear_all_resets() {
        let mut s = SBitArray::new(70);
        s.set(0);
        s.set(69);
        s.clear_all();
        assert_eq!(s.count_set(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        SBitArray::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn empty_rejected() {
        SBitArray::new(0);
    }

    #[test]
    fn reset_mask_clears_and_counts() {
        let mut s = SBitArray::new(128);
        s.set(0);
        s.set(5);
        s.set(64);
        // Mask resets lines 5, 6 (6 was already clear) and 64.
        let mask = [(1u64 << 5) | (1 << 6), 1u64];
        let cleared = s.apply_reset_mask(&mask);
        assert_eq!(cleared, 2);
        assert!(s.get(0));
        assert!(!s.get(5));
        assert!(!s.get(64));
    }

    #[test]
    #[should_panic(expected = "reset mask")]
    fn reset_mask_length_checked() {
        SBitArray::new(128).apply_reset_mask(&[0]);
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a = SBitArray::new(65);
        let mut b = SBitArray::new(65);
        a.set(3);
        b.set(64);
        a.copy_from(&b);
        assert!(!a.get(3));
        assert!(a.get(64));
    }

    #[test]
    fn storage_bytes_matches_paper_examples() {
        // Section VI-D: a 64KB L1 has 1024 lines -> 128 B, i.e. two 64-byte
        // transfers; an 8MB LLC has 131072 lines -> 16 KiB... the paper's
        // figures are per-context; what matters here is bytes = lines/8.
        assert_eq!(SBitArray::new(1024).storage_bytes(), 128);
        assert_eq!(SBitArray::new(131072).storage_bytes(), 16384);
    }

    #[test]
    fn iter_set_yields_sorted_indices() {
        let mut s = SBitArray::new(200);
        for i in [199, 0, 64, 100] {
            s.set(i);
        }
        let v: Vec<_> = s.iter_set().collect();
        assert_eq!(v, vec![0, 64, 100, 199]);
    }
}
