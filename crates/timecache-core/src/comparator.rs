//! Gate-level model of the bit-serial, timestamp-parallel comparator.
//!
//! Section V-C / Fig. 6 of the paper: at a context switch, the s-bits
//! restored for the resuming process are stale — any line filled after the
//! process was preempted (`Tc > Ts`) must have its s-bit reset. Comparing
//! timestamps line-by-line would take O(lines) cycles; instead the hardware
//! streams the transposed timestamp array out one *bit-plane* per cycle
//! (MSB first) and attaches a tiny peripheral circuit to every bit line:
//!
//! * an SR latch `GT` — set when this line's `Tc` is discovered to be
//!   greater than `Ts` (its output later drives the s-bit reset);
//! * an SR latch `DONE` — set when `Tc < Ts` is discovered, which must
//!   *stop* further bit comparisons for this line;
//! * two AND gates implementing, per iteration `i` from the MSB:
//!   `set_GT = Tc[i] & !Ts[i] & !DONE & !GT` and
//!   `set_DONE = !Tc[i] & Ts[i] & !DONE & !GT`.
//!
//! After `width` iterations, lines whose `GT` latch is set have their s-bit
//! reset through the regular bit-line drivers. Total cost: O(width) cycles
//! regardless of the number of lines.
//!
//! [`BitSerialComparator::compare`] executes this circuit 64 lines at a time
//! using word-wide boolean algebra — the same parallelism the silicon gets
//! from having one peripheral per bit line — and is property-tested against
//! the functional predicate `Tc > Ts` in the crate's test suite.

use crate::timestamp::WrappingTime;
use crate::transpose::TransposeArray;

/// The result of one bit-serial comparison sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareOutcome {
    /// Packed mask over lines: bit set ⇔ `Tc > Ts` ⇔ the line's s-bit must
    /// be reset for the resuming context. Same packing as
    /// [`crate::SBitArray::words`].
    pub reset_mask: Vec<u64>,
    /// Hardware cycles consumed: one per timestamp bit (plus the final
    /// reset drive, charged as one cycle).
    pub cycles: u64,
}

impl CompareOutcome {
    /// Number of lines flagged for reset.
    pub fn reset_count(&self) -> usize {
        self.reset_mask
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// Bit-serial, timestamp-parallel comparator (Fig. 6).
///
/// The comparator is stateless between invocations (its SR latches are reset
/// before each sweep), so it is modelled as a unit struct with a single
/// associated function.
///
/// # Examples
///
/// ```
/// use timecache_core::{BitSerialComparator, TransposeArray, TimestampWidth, WrappingTime};
///
/// let w = TimestampWidth::new(8);
/// let mut tc = TransposeArray::new(3, w);
/// tc.write_word(0, 50);   // older than Ts: keep
/// tc.write_word(1, 100);  // equal to Ts: keep
/// tc.write_word(2, 150);  // newer than Ts: reset
///
/// let out = BitSerialComparator::compare(&mut tc, WrappingTime::from_cycle(100, w));
/// assert_eq!(out.reset_mask[0], 0b100);
/// assert_eq!(out.cycles, 9); // 8 bit iterations + reset drive
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitSerialComparator;

impl BitSerialComparator {
    /// Runs the comparison circuit: for every line `l`,
    /// `reset_mask[l] = (Tc[l] > Ts)`.
    ///
    /// `ts` is the resuming process's preemption timestamp, loaded into the
    /// shift register; `tc` is the transposed timestamp array. Both use
    /// truncated (width-masked) values; rollover must be handled by the
    /// caller *before* invoking the comparator (see
    /// [`WrappingTime::rollover_since`]).
    ///
    /// Takes the array mutably because it first flushes any pending
    /// transpose-interface writes into the bit-plane view
    /// ([`TransposeArray::sync_planes`]) — in hardware both interfaces
    /// address the same cells, so the sweep always sees current data.
    ///
    /// # Panics
    ///
    /// Panics if `ts` and `tc` have different timestamp widths.
    pub fn compare(tc: &mut TransposeArray, ts: WrappingTime) -> CompareOutcome {
        assert_eq!(
            tc.width(),
            ts.width(),
            "comparator requires matching timestamp widths"
        );
        tc.sync_planes();
        let width = tc.width().bits();
        let words = tc.words_per_plane();

        // SR latches, one per line (bit line), packed 64 per word.
        let mut gt = vec![0u64; words]; // "Tc > Ts" latched
        let mut done = vec![0u64; words]; // "Tc < Ts" latched (stop)

        // The shift register feeds Ts MSB-first; each iteration reads one
        // bit-plane of the transposed array through the regular interface.
        for bit in (0..width).rev() {
            // Ts[bit] is a single wire fanned out to every peripheral.
            let a: u64 = if ts.value() >> bit & 1 == 1 {
                u64::MAX
            } else {
                0
            };
            let plane = tc.bit_plane(bit);
            for w in 0..words {
                let b = plane[w];
                let idle = !(gt[w] | done[w]);
                // set_GT = b & !a & idle ; set_DONE = !b & a & idle
                gt[w] |= b & !a & idle;
                done[w] |= !b & a & idle;
            }
        }

        // Mask out any phantom lines in the final partial word so the reset
        // count reflects real lines only.
        if let Some(last) = gt.last_mut() {
            let valid = tc.num_words() - (words - 1) * 64;
            if valid < 64 {
                *last &= (1u64 << valid) - 1;
            }
        }

        CompareOutcome {
            reset_mask: gt,
            cycles: width as u64 + 1,
        }
    }

    /// Cycle cost of a sweep for a given timestamp width, without running
    /// it. One cycle per bit-plane plus one for the s-bit reset drive.
    pub fn sweep_cycles(width: u8) -> u64 {
        width as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::TimestampWidth;

    fn run(values: &[u64], ts: u64, width: u8) -> Vec<bool> {
        let w = TimestampWidth::new(width);
        let mut tc = TransposeArray::new(values.len(), w);
        for (i, &v) in values.iter().enumerate() {
            tc.write_word(i, v);
        }
        let out = BitSerialComparator::compare(&mut tc, WrappingTime::from_cycle(ts, w));
        (0..values.len())
            .map(|i| out.reset_mask[i / 64] >> (i % 64) & 1 == 1)
            .collect()
    }

    #[test]
    fn greater_resets_equal_and_smaller_keep() {
        let r = run(&[50, 100, 150, 0, 255], 100, 8);
        assert_eq!(r, vec![false, false, true, false, true]);
    }

    #[test]
    fn paper_example_msb_decides() {
        // "the greater of '1100' and '0101' can be determined as the first
        // number by looking at the MSB"
        let r = run(&[0b1100], 0b0101, 4);
        assert_eq!(r, vec![true]);
        let r = run(&[0b0101], 0b1100, 4);
        assert_eq!(r, vec![false]);
    }

    #[test]
    fn ts_zero_resets_everything_nonzero() {
        let r = run(&[0, 1, 2, 3], 0, 4);
        assert_eq!(r, vec![false, true, true, true]);
    }

    #[test]
    fn ts_max_resets_nothing() {
        let r = run(&[0, 7, 15], 15, 4);
        assert_eq!(r, vec![false, false, false]);
    }

    #[test]
    fn partial_last_word_has_no_phantom_resets() {
        // 70 lines, all Tc newer than Ts: exactly 70 resets, not 128.
        let w = TimestampWidth::new(8);
        let mut tc = TransposeArray::new(70, w);
        for i in 0..70 {
            tc.write_word(i, 200);
        }
        let out = BitSerialComparator::compare(&mut tc, WrappingTime::from_cycle(10, w));
        assert_eq!(out.reset_count(), 70);
    }

    #[test]
    fn cycles_scale_with_width_not_lines() {
        let w = TimestampWidth::new(32);
        let mut small = TransposeArray::new(8, w);
        let mut large = TransposeArray::new(100_000, w);
        let ts = WrappingTime::from_cycle(0, w);
        assert_eq!(
            BitSerialComparator::compare(&mut small, ts).cycles,
            BitSerialComparator::compare(&mut large, ts).cycles,
        );
        assert_eq!(BitSerialComparator::sweep_cycles(32), 33);
    }

    #[test]
    #[should_panic(expected = "matching timestamp widths")]
    fn width_mismatch_rejected() {
        let mut tc = TransposeArray::new(4, TimestampWidth::new(8));
        let ts = WrappingTime::from_cycle(0, TimestampWidth::new(16));
        BitSerialComparator::compare(&mut tc, ts);
    }

    #[test]
    fn one_bit_width_boundary() {
        // Narrowest legal counter: a single bit-plane sweep must still
        // implement `Tc > Ts` exactly, and cost 1 + 1 cycles.
        assert_eq!(run(&[0, 1], 0, 1), vec![false, true]);
        assert_eq!(run(&[0, 1], 1, 1), vec![false, false]);
        let w = TimestampWidth::new(1);
        let mut tc = TransposeArray::new(2, w);
        let out = BitSerialComparator::compare(&mut tc, WrappingTime::from_cycle(0, w));
        assert_eq!(out.cycles, 2);
        assert_eq!(BitSerialComparator::sweep_cycles(1), 2);
    }

    #[test]
    fn sixty_four_bit_width_boundary() {
        // Widest legal counter: full-u64 values must not overflow the mask
        // arithmetic, and the MSB (bit 63) must decide.
        let top = 1u64 << 63;
        let r = run(&[0, top - 1, top, u64::MAX], top - 1, 64);
        assert_eq!(r, vec![false, false, true, true]);
        assert_eq!(run(&[u64::MAX], u64::MAX, 64), vec![false]);
        assert_eq!(BitSerialComparator::sweep_cycles(64), 65);
    }

    #[test]
    fn equal_timestamps_never_reset() {
        // Tc == Ts means the line was filled before (or at) preemption: it
        // stays visible. Ties must not reset at any width or value shape.
        for width in [1u8, 4, 8, 32, 64] {
            let mask = TimestampWidth::new(width).mask();
            for ts in [0u64, 1, mask / 2, mask.saturating_sub(1), mask] {
                let ts = ts & mask;
                assert_eq!(
                    run(&[ts], ts, width),
                    vec![false],
                    "tie at ts={ts} width={width} must keep the s-bit"
                );
            }
        }
    }

    #[test]
    fn exhaustive_small_width_equivalence() {
        // For 5-bit timestamps, check the circuit against `tc > ts` for every
        // (tc, ts) pair exhaustively.
        for ts in 0u64..32 {
            let values: Vec<u64> = (0..32).collect();
            let r = run(&values, ts, 5);
            for (tc, &flag) in values.iter().zip(&r) {
                assert_eq!(flag, *tc > ts, "tc={tc} ts={ts}");
            }
        }
    }
}
