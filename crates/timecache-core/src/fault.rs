//! Deterministic, seed-driven fault injection for the TimeCache mechanism.
//!
//! TimeCache's security argument rests on its *rare* paths: the rollover
//! reset, the snapshot save/restore DMA, and the bit-serial comparator.
//! This module lets a harness strike those paths on purpose — forcing or
//! suppressing a rollover signal, corrupting or losing an s-bit snapshot,
//! glitching the comparator output, or interrupting a save mid-way — and
//! then verify that every recovery degrades to the paper's conservative
//! full s-bit reset (extra first-access misses) and **never** to a stale
//! hit an attacker could observe.
//!
//! The injector is a cheap cloneable handle, like the telemetry handle: a
//! disabled injector is a `None` and every probe site short-circuits on
//! one branch. Firing decisions come from a seeded [`crate::FastRng`], so
//! a fault campaign is a pure function of its [`FaultPlan`] and replays
//! bit-for-bit.

use crate::rng::FastRng;
use crate::snapshot::Snapshot;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// Retained [`FaultRecord`]s between drains; beyond this the records are
/// dropped (the counters stay exact).
const MAX_RECORDS: usize = 1024;

/// The kinds of faults the injector can introduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Assert the rollover signal at a restore even though no rollover
    /// happened. Purely conservative: extra s-bit resets, never a leak.
    ForceRollover,
    /// Suppress the hardware rollover signal at a restore (a stuck-low
    /// wire). Trusted software must catch the wrap by other means.
    DeferRollover,
    /// Lose an s-bit snapshot entirely (failed DMA): nothing reaches (or
    /// leaves) kernel memory.
    DropSnapshot,
    /// Flip one s-bit of a snapshot while it sits in kernel memory (bit
    /// rot, a misdirected DMA write).
    CorruptSnapshot,
    /// Flip one bit of the comparator's reset mask before it is applied.
    FlipComparator,
    /// Interrupt a context-switch save mid-way, so the partial snapshot
    /// cannot be trusted.
    AbortSave,
}

impl FaultKind {
    /// Every kind, in a stable order ([`FaultKind::index`] matches it).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::ForceRollover,
        FaultKind::DeferRollover,
        FaultKind::DropSnapshot,
        FaultKind::CorruptSnapshot,
        FaultKind::FlipComparator,
        FaultKind::AbortSave,
    ];

    /// Stable lowercase name used in exports and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::ForceRollover => "force_rollover",
            FaultKind::DeferRollover => "defer_rollover",
            FaultKind::DropSnapshot => "drop_snapshot",
            FaultKind::CorruptSnapshot => "corrupt_snapshot",
            FaultKind::FlipComparator => "flip_comparator",
            FaultKind::AbortSave => "abort_save",
        }
    }

    /// Position of this kind within [`FaultKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            FaultKind::ForceRollover => 0,
            FaultKind::DeferRollover => 1,
            FaultKind::DropSnapshot => 2,
            FaultKind::CorruptSnapshot => 3,
            FaultKind::FlipComparator => 4,
            FaultKind::AbortSave => 5,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the context-switch choreography a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerPoint {
    /// While the outgoing process's snapshot is being saved.
    Save,
    /// While the incoming process's snapshot is being restored.
    Restore,
    /// During the bit-serial comparator sweep.
    Compare,
    /// At the rollover decision taken during a restore.
    Rollover,
}

impl TriggerPoint {
    /// Every trigger point, in a stable order.
    pub const ALL: [TriggerPoint; 4] = [
        TriggerPoint::Save,
        TriggerPoint::Restore,
        TriggerPoint::Compare,
        TriggerPoint::Rollover,
    ];

    /// Stable lowercase name used in exports and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            TriggerPoint::Save => "save",
            TriggerPoint::Restore => "restore",
            TriggerPoint::Compare => "compare",
            TriggerPoint::Rollover => "rollover",
        }
    }
}

impl fmt::Display for TriggerPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A fault campaign: which fault, where it strikes, how often, and the
/// seed that makes the whole schedule reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: FaultKind,
    /// The trigger point it strikes at.
    pub trigger: TriggerPoint,
    /// RNG seed for the firing schedule (and for corruption choices).
    pub seed: u64,
    /// Probability in `[0, 1]` that an eligible trigger actually fires.
    pub rate: f64,
}

impl FaultPlan {
    /// A plan that fires at every eligible trigger (`rate = 1.0`).
    pub fn new(kind: FaultKind, trigger: TriggerPoint, seed: u64) -> Self {
        FaultPlan {
            kind,
            trigger,
            seed,
            rate: 1.0,
        }
    }

    /// Overrides the firing probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn with_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "rate must be in [0,1], got {rate}"
        );
        self.rate = rate;
        self
    }
}

/// One fault that actually fired, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// The injected fault.
    pub kind: FaultKind,
    /// Where it struck.
    pub trigger: TriggerPoint,
    /// Whether the defense explicitly *detected* the fault (checksum
    /// mismatch, comparator redundancy mismatch, software rollover
    /// cross-check) — as opposed to faults whose effect is conservative
    /// by construction and needs no detection.
    pub detected: bool,
}

#[derive(Debug)]
struct InjectorInner {
    plan: FaultPlan,
    rng: RefCell<FastRng>,
    injected: Cell<u64>,
    detected: Cell<u64>,
    records: RefCell<Vec<FaultRecord>>,
}

/// The fault-injection handle threaded through core, sim, and os.
///
/// Cloning is cheap and shares the schedule, counters, and records (like
/// the telemetry handle). The default handle is *disabled*: every probe
/// site pays one branch and nothing else.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Rc<InjectorInner>>,
}

impl FaultInjector {
    /// A disabled injector: [`FaultInjector::fire`] always returns false.
    pub fn disabled() -> Self {
        FaultInjector::default()
    }

    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            inner: Some(Rc::new(InjectorInner {
                plan,
                rng: RefCell::new(FastRng::seed_from_u64(plan.seed)),
                injected: Cell::new(0),
                detected: Cell::new(0),
                records: RefCell::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle can inject anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The active plan, if enabled.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.inner.as_ref().map(|i| i.plan)
    }

    /// Rolls the dice for `(kind, trigger)`. Returns true — and counts and
    /// records the injection — when the plan targets exactly this
    /// combination and the seeded schedule says it fires here.
    #[inline]
    pub fn fire(&self, kind: FaultKind, trigger: TriggerPoint) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.plan.kind != kind || inner.plan.trigger != trigger {
            return false;
        }
        if inner.rng.borrow_mut().next_f64() >= inner.plan.rate {
            return false;
        }
        inner.injected.set(inner.injected.get() + 1);
        let mut records = inner.records.borrow_mut();
        if records.len() < MAX_RECORDS {
            records.push(FaultRecord {
                kind,
                trigger,
                detected: false,
            });
        }
        true
    }

    /// Marks the most recent injection as explicitly detected (and
    /// contained) by the defense.
    pub fn note_detected(&self) {
        let Some(inner) = &self.inner else { return };
        inner.detected.set(inner.detected.get() + 1);
        if let Some(last) = inner.records.borrow_mut().last_mut() {
            last.detected = true;
        }
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.injected.get())
    }

    /// Total faults explicitly detected by the defense so far.
    pub fn detected(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.detected.get())
    }

    /// Drains the retained fault records (at most [`MAX_RECORDS`] between
    /// drains; the counters are never capped).
    pub fn take_records(&self) -> Vec<FaultRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => std::mem::take(&mut inner.records.borrow_mut()),
        }
    }

    /// Returns a copy of `snap` with one randomly chosen s-bit flipped.
    /// The stored checksum is deliberately **not** recomputed — a
    /// corrupted snapshot keeps the checksum of its honest original,
    /// exactly like bit rot in kernel memory, which is what lets
    /// [`Snapshot::integrity_ok`] catch it.
    pub fn corrupt_snapshot(&self, snap: &Snapshot) -> Snapshot {
        let Some(inner) = &self.inner else {
            return snap.clone();
        };
        let mut sbits = snap.sbits().clone();
        let line = inner.rng.borrow_mut().next_below(sbits.len() as u64) as usize;
        if sbits.get(line) {
            sbits.clear(line);
        } else {
            sbits.set(line);
        }
        Snapshot::from_raw_parts(sbits, snap.raw_ts(), snap.ts().width(), snap.checksum())
    }

    /// Flips one randomly chosen bit of a comparator reset mask in place.
    /// No-op when disabled or the mask is empty.
    pub fn corrupt_mask(&self, mask: &mut [u64]) {
        let Some(inner) = &self.inner else { return };
        if mask.is_empty() {
            return;
        }
        let mut rng = inner.rng.borrow_mut();
        let word = rng.next_below(mask.len() as u64) as usize;
        let bit = rng.next_below(64) as u32;
        mask[word] ^= 1u64 << bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbit::SBitArray;
    use crate::timestamp::TimestampWidth;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        for kind in FaultKind::ALL {
            for trigger in TriggerPoint::ALL {
                assert!(!inj.fire(kind, trigger));
            }
        }
        assert_eq!(inj.injected(), 0);
        assert!(inj.take_records().is_empty());
    }

    #[test]
    fn fires_only_on_the_planned_combination() {
        let inj = FaultInjector::new(FaultPlan::new(
            FaultKind::DropSnapshot,
            TriggerPoint::Restore,
            42,
        ));
        assert!(!inj.fire(FaultKind::DropSnapshot, TriggerPoint::Save));
        assert!(!inj.fire(FaultKind::CorruptSnapshot, TriggerPoint::Restore));
        assert!(inj.fire(FaultKind::DropSnapshot, TriggerPoint::Restore));
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let fires = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(
                FaultPlan::new(FaultKind::AbortSave, TriggerPoint::Save, seed).with_rate(0.5),
            );
            (0..64)
                .map(|_| inj.fire(FaultKind::AbortSave, TriggerPoint::Save))
                .collect()
        };
        assert_eq!(fires(9), fires(9));
        assert_ne!(fires(9), fires(10));
        let hits = fires(9).iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&hits), "rate 0.5 fired {hits}/64");
    }

    #[test]
    fn clones_share_counters() {
        let inj = FaultInjector::new(FaultPlan::new(
            FaultKind::ForceRollover,
            TriggerPoint::Rollover,
            1,
        ));
        let other = inj.clone();
        assert!(other.fire(FaultKind::ForceRollover, TriggerPoint::Rollover));
        assert_eq!(inj.injected(), 1);
        inj.note_detected();
        assert_eq!(other.detected(), 1);
        let records = inj.take_records();
        assert_eq!(records.len(), 1);
        assert!(records[0].detected);
        assert!(other.take_records().is_empty(), "drain is shared");
    }

    #[test]
    fn corruption_breaks_the_checksum_but_keeps_geometry() {
        let inj = FaultInjector::new(FaultPlan::new(
            FaultKind::CorruptSnapshot,
            TriggerPoint::Restore,
            7,
        ));
        let mut sbits = SBitArray::new(64);
        sbits.set(3);
        let snap = Snapshot::new(sbits, 500, TimestampWidth::new(32));
        assert!(snap.integrity_ok());
        let bad = inj.corrupt_snapshot(&snap);
        assert!(!bad.integrity_ok(), "one flipped bit must break integrity");
        assert_eq!(bad.sbits().len(), snap.sbits().len());
        assert_eq!(bad.raw_ts(), snap.raw_ts());
        assert_ne!(bad.sbits(), snap.sbits());
    }

    #[test]
    fn mask_corruption_changes_exactly_one_bit() {
        let inj = FaultInjector::new(FaultPlan::new(
            FaultKind::FlipComparator,
            TriggerPoint::Compare,
            11,
        ));
        let mut mask = vec![0u64; 4];
        inj.corrupt_mask(&mut mask);
        let set: u32 = mask.iter().map(|w| w.count_ones()).sum();
        assert_eq!(set, 1);
    }

    #[test]
    #[should_panic(expected = "rate must be in [0,1]")]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::new(FaultKind::AbortSave, TriggerPoint::Save, 0).with_rate(1.5);
    }
}
