//! Configuration for the TimeCache mechanism.

use crate::timestamp::TimestampWidth;

/// How per-line visibility is represented in hardware (Section VI-C's
/// scaling discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SharerTracking {
    /// One s-bit per hardware context per line — the paper's evaluated
    /// design; storage grows linearly with context count.
    #[default]
    FullMap,
    /// Up to `k` sharer pointers per line (`k·log2(n)` bits), after the
    /// limited-pointer coherence directories the paper points at for
    /// many-context LLCs. Pointer overflow revokes a victim's visibility:
    /// strictly more conservative than the full map (extra first-access
    /// misses, never stale hits).
    LimitedPointers {
        /// Pointers per line.
        k: usize,
    },
}

/// Tunable parameters of the TimeCache hardware, per cache level.
///
/// The defaults correspond to the paper's evaluated configuration
/// (32-bit timestamps, Section VII mitigations off).
///
/// # Examples
///
/// ```
/// use timecache_core::TimeCacheConfig;
///
/// let cfg = TimeCacheConfig::default()
///     .with_constant_time_clflush(true)
///     .with_dram_wait_on_remote_hit(true);
/// assert_eq!(cfg.timestamp_width().bits(), 32);
/// assert!(cfg.constant_time_clflush());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeCacheConfig {
    timestamp_width: TimestampWidth,
    constant_time_clflush: bool,
    dram_wait_on_remote_hit: bool,
    sharer_tracking: SharerTracking,
}

impl TimeCacheConfig {
    /// Creates a config with the given timestamp width and all Section VII
    /// mitigations disabled.
    ///
    /// # Panics
    ///
    /// Panics if `timestamp_bits` is zero or greater than 64.
    pub fn new(timestamp_bits: u8) -> Self {
        TimeCacheConfig {
            timestamp_width: TimestampWidth::new(timestamp_bits),
            constant_time_clflush: false,
            dram_wait_on_remote_hit: false,
            sharer_tracking: SharerTracking::FullMap,
        }
    }

    /// The `Tc`/`Ts` counter width.
    pub fn timestamp_width(&self) -> TimestampWidth {
        self.timestamp_width
    }

    /// Section VII-C mitigation: make `clflush` constant-time (perform a
    /// dummy write-back when the line is not cached) so flush+flush cannot
    /// distinguish cached from uncached lines.
    pub fn constant_time_clflush(&self) -> bool {
        self.constant_time_clflush
    }

    /// Section VII-B mitigation: on a first access, wait for the DRAM
    /// response latency even when the data could be supplied faster by a
    /// remote private cache or the LLC, defeating invalidate+transfer and
    /// E/S-state coherence attacks.
    pub fn dram_wait_on_remote_hit(&self) -> bool {
        self.dram_wait_on_remote_hit
    }

    /// Returns a copy with the constant-time `clflush` mitigation toggled.
    pub fn with_constant_time_clflush(mut self, on: bool) -> Self {
        self.constant_time_clflush = on;
        self
    }

    /// Returns a copy with the DRAM-wait coherence mitigation toggled.
    pub fn with_dram_wait_on_remote_hit(mut self, on: bool) -> Self {
        self.dram_wait_on_remote_hit = on;
        self
    }

    /// Returns a copy with a different timestamp width (useful for rollover
    /// experiments with narrow counters).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    pub fn with_timestamp_bits(mut self, bits: u8) -> Self {
        self.timestamp_width = TimestampWidth::new(bits);
        self
    }

    /// The visibility representation (full s-bit map or limited pointers).
    pub fn sharer_tracking(&self) -> SharerTracking {
        self.sharer_tracking
    }

    /// Returns a copy using limited-pointer tracking with `k` pointers per
    /// line (Section VI-C's area-scaling alternative).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn with_limited_pointers(mut self, k: usize) -> Self {
        assert!(k > 0, "need at least one pointer per line");
        self.sharer_tracking = SharerTracking::LimitedPointers { k };
        self
    }
}

impl Default for TimeCacheConfig {
    /// The paper's evaluated configuration: 32-bit timestamps, mitigations
    /// for the Section VII attack variants disabled.
    fn default() -> Self {
        TimeCacheConfig::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TimeCacheConfig::default();
        assert_eq!(c.timestamp_width().bits(), 32);
        assert!(!c.constant_time_clflush());
        assert!(!c.dram_wait_on_remote_hit());
    }

    #[test]
    fn builders_toggle_flags() {
        let c = TimeCacheConfig::new(8)
            .with_constant_time_clflush(true)
            .with_dram_wait_on_remote_hit(true)
            .with_timestamp_bits(16);
        assert_eq!(c.timestamp_width().bits(), 16);
        assert!(c.constant_time_clflush());
        assert!(c.dram_wait_on_remote_hit());
    }

    #[test]
    fn sharer_tracking_defaults_to_full_map() {
        assert_eq!(
            TimeCacheConfig::default().sharer_tracking(),
            SharerTracking::FullMap
        );
        let c = TimeCacheConfig::default().with_limited_pointers(2);
        assert_eq!(
            c.sharer_tracking(),
            SharerTracking::LimitedPointers { k: 2 }
        );
    }

    #[test]
    #[should_panic(expected = "at least one pointer")]
    fn zero_pointers_rejected() {
        TimeCacheConfig::default().with_limited_pointers(0);
    }
}
