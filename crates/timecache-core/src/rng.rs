//! A small, fast, deterministic RNG.
//!
//! Two consumers share this generator: workload synthesis (via the
//! re-export in `timecache-workloads`), which draws several random numbers
//! per simulated instruction, and the fault injector ([`crate::fault`]),
//! which needs seed-reproducible fault schedules. [`FastRng`] is an
//! xorshift64* generator seeded through SplitMix64 — statistically more
//! than adequate for both uses, an order of magnitude faster than a
//! cryptographic generator, and bit-for-bit reproducible across platforms.

/// A seedable xorshift64* generator.
///
/// # Examples
///
/// ```
/// use timecache_core::FastRng;
///
/// let mut a = FastRng::seed_from_u64(7);
/// let mut b = FastRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let f = a.next_f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastRng {
    state: u64,
}

impl FastRng {
    /// Creates a generator from a seed (any value, including 0, is fine:
    /// the seed is whitened through SplitMix64 first).
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 step guarantees a nonzero, well-mixed initial state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FastRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift range reduction (Lemire); the slight modulo bias
        // of the plain approach is irrelevant here, but this is also
        // faster than %.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FastRng::seed_from_u64(1);
        let mut b = FastRng::seed_from_u64(1);
        let mut c = FastRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = FastRng::seed_from_u64(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = FastRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = FastRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }

    #[test]
    fn below_covers_range() {
        let mut r = FastRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn zero_bound_rejected() {
        FastRng::seed_from_u64(0).next_below(0);
    }
}
