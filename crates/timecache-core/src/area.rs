//! Area accounting for the TimeCache hardware additions.
//!
//! Section VI-C of the paper attributes the area increase to the separate
//! 8-T SRAM array holding timestamps and s-bits (8-T cells rather than 6-T,
//! plus a second set of sense amps and bit-line drivers) and the tiny
//! per-bit-line comparison peripherals. This module turns that accounting
//! into numbers so the `experiments area` artifact can compare the full
//! s-bit map against the limited-pointer alternative the paper points at
//! for many-context LLCs.

use crate::timestamp::TimestampWidth;

/// SRAM bit-cell cost factor for the dual-ported 8-T cells of the
/// timestamp/s-bit array relative to 6-T data-array cells.
const CELL_8T_OVER_6T: f64 = 8.0 / 6.0;

/// Area model for one cache level's TimeCache additions.
///
/// All quantities are reported in *6-T-cell equivalents* so they can be
/// compared directly against the data array's `lines * line_bytes * 8`
/// bits.
///
/// # Examples
///
/// ```
/// use timecache_core::{AreaModel, TimestampWidth};
///
/// // The paper's 2 MB LLC with 2 hardware contexts.
/// let m = AreaModel::new(32768, 2, TimestampWidth::new(32), 64);
/// // The additions cost a few percent of the data array.
/// let pct = m.total_overhead_fraction() * 100.0;
/// assert!(pct > 1.0 && pct < 10.0, "{pct}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    num_lines: usize,
    num_contexts: usize,
    ts_width: TimestampWidth,
    line_bytes: u64,
}

impl AreaModel {
    /// Builds the model for a cache with `num_lines` lines of `line_bytes`
    /// bytes, shared by `num_contexts` hardware contexts.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(
        num_lines: usize,
        num_contexts: usize,
        ts_width: TimestampWidth,
        line_bytes: u64,
    ) -> Self {
        assert!(num_lines > 0 && num_contexts > 0 && line_bytes > 0);
        AreaModel {
            num_lines,
            num_contexts,
            ts_width,
            line_bytes,
        }
    }

    /// Bits in the cache's data array (the baseline everything is
    /// normalized against).
    pub fn data_array_bits(&self) -> u64 {
        self.num_lines as u64 * self.line_bytes * 8
    }

    /// Timestamp storage in 6-T equivalents: `lines * width` 8-T cells.
    pub fn timestamp_cell_equiv(&self) -> f64 {
        self.num_lines as f64 * self.ts_width.bits() as f64 * CELL_8T_OVER_6T
    }

    /// Full-map s-bit storage in 6-T equivalents: `lines * contexts` 8-T
    /// cells.
    pub fn full_sbit_cell_equiv(&self) -> f64 {
        self.num_lines as f64 * self.num_contexts as f64 * CELL_8T_OVER_6T
    }

    /// Limited-pointer s-bit storage in 6-T equivalents for `k` pointers:
    /// `lines * k * ceil(log2(contexts + 1))` cells (Section VI-C's
    /// O(log n) argument).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the context count.
    pub fn limited_sbit_cell_equiv(&self, k: usize) -> f64 {
        assert!(k > 0 && k <= self.num_contexts);
        let id_bits = usize::BITS - self.num_contexts.leading_zeros();
        self.num_lines as f64 * k as f64 * id_bits as f64 * CELL_8T_OVER_6T
    }

    /// Comparator peripheral cost in 6-T equivalents: per bit line (64
    /// lines share a word... in the model: one peripheral per line column),
    /// 2 SR latches + 2 AND gates ≈ 6 gate-equivalents ≈ 24 transistors
    /// ≈ 4 6-T cells, plus the Ts shift register.
    pub fn peripheral_cell_equiv(&self) -> f64 {
        self.num_lines as f64 * 4.0 + self.ts_width.bits() as f64 * 2.0
    }

    /// Total additions (timestamps + full s-bits + peripherals) as a
    /// fraction of the data array.
    pub fn total_overhead_fraction(&self) -> f64 {
        (self.timestamp_cell_equiv() + self.full_sbit_cell_equiv() + self.peripheral_cell_equiv())
            / self.data_array_bits() as f64
    }

    /// Total additions using limited pointers instead of the full map.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the context count.
    pub fn limited_overhead_fraction(&self, k: usize) -> f64 {
        (self.timestamp_cell_equiv()
            + self.limited_sbit_cell_equiv(k)
            + self.peripheral_cell_equiv())
            / self.data_array_bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc(contexts: usize) -> AreaModel {
        AreaModel::new(32768, contexts, TimestampWidth::new(32), 64)
    }

    #[test]
    fn two_context_llc_costs_a_few_percent() {
        let pct = llc(2).total_overhead_fraction() * 100.0;
        // 32 ts bits + 2 s-bits per 512-bit line, 8T factor ~ 8.9 %... the
        // dominant term is the 32-bit timestamp.
        assert!((5.0..12.0).contains(&pct), "{pct}");
    }

    #[test]
    fn full_map_grows_linearly_with_contexts() {
        let small = llc(2).full_sbit_cell_equiv();
        let big = llc(128).full_sbit_cell_equiv();
        assert!((big / small - 64.0).abs() < 1e-9);
    }

    #[test]
    fn limited_pointers_flatten_the_growth() {
        // At 128 contexts, 4 pointers of 8 bits beat 128 presence bits.
        let m = llc(128);
        assert!(m.limited_sbit_cell_equiv(4) < m.full_sbit_cell_equiv() / 3.0);
        assert!(m.limited_overhead_fraction(4) < m.total_overhead_fraction());
    }

    #[test]
    fn limited_never_beats_full_for_tiny_context_counts() {
        // 2 contexts: a 2-bit map is as small as it gets; pointers of
        // 2 bits each don't help (k=1 gives 2 bits vs 2 bits... model
        // sanity: k=2 costs more).
        let m = llc(2);
        assert!(m.limited_sbit_cell_equiv(2) >= m.full_sbit_cell_equiv());
    }

    #[test]
    #[should_panic]
    fn zero_lines_rejected() {
        AreaModel::new(0, 1, TimestampWidth::new(32), 64);
    }
}
