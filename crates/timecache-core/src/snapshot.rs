//! Per-process caching-context snapshots.
//!
//! When a process is preempted, trusted software (the OS in the paper's
//! design) saves the s-bits of the hardware context it was running on,
//! together with the preemption time `Ts`, into a kernel memory region the
//! process context points to. When the process is later rescheduled, the
//! snapshot is restored into the hardware context it resumes on and brought
//! up to date by the bit-serial comparator.

use crate::sbit::SBitArray;
use crate::timestamp::{TimestampWidth, WrappingTime};

/// A saved caching context for one process on one cache level: the s-bits as
/// they were at preemption time, plus the preemption timestamp `Ts`.
///
/// Snapshots are produced by [`crate::TimeCacheState::save_context`] and
/// consumed by [`crate::TimeCacheState::restore_context`].
///
/// # Examples
///
/// ```
/// use timecache_core::{TimeCacheState, TimeCacheConfig};
///
/// let cfg = TimeCacheConfig::new(8);
/// let mut tc = TimeCacheState::new(64, 1, cfg);
/// tc.on_fill(9, 0, 100);
///
/// let snap = tc.save_context(0, 120);
/// assert_eq!(snap.sbits().count_set(), 1);
/// assert_eq!(snap.ts().value(), 120);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    sbits: SBitArray,
    /// Software keeps the preemption time at full (unbounded) precision —
    /// it is saving `Ts` into kernel memory anyway — which lets the restore
    /// path detect preemptions spanning one or more *full* counter periods,
    /// a wrap the truncated hardware comparison alone cannot see.
    raw_ts: u64,
    width: TimestampWidth,
    /// FNV-1a over the s-bit words, `Ts`, and the counter width, computed
    /// at save time. The restore path re-derives it and treats any mismatch
    /// (bit rot, misdirected DMA while the snapshot sat in kernel memory)
    /// as "snapshot lost", degrading to the conservative full s-bit reset.
    checksum: u64,
}

impl Snapshot {
    /// Assembles a snapshot from saved s-bits, the full-precision preemption
    /// cycle count, and the hardware counter width.
    pub fn new(sbits: SBitArray, raw_ts: u64, width: TimestampWidth) -> Self {
        let checksum = integrity_checksum(&sbits, raw_ts, width);
        Snapshot {
            sbits,
            raw_ts,
            width,
            checksum,
        }
    }

    /// Assembles a snapshot carrying a caller-supplied checksum, bypassing
    /// recomputation. Only the fault injector uses this: it lets a corrupted
    /// snapshot keep the checksum of its honest original, exactly as bit rot
    /// in kernel memory would.
    pub(crate) fn from_raw_parts(
        sbits: SBitArray,
        raw_ts: u64,
        width: TimestampWidth,
        checksum: u64,
    ) -> Self {
        Snapshot {
            sbits,
            raw_ts,
            width,
            checksum,
        }
    }

    /// The saved s-bits.
    pub fn sbits(&self) -> &SBitArray {
        &self.sbits
    }

    /// The preemption timestamp `Ts` as the hardware comparator sees it
    /// (truncated to the counter width).
    pub fn ts(&self) -> WrappingTime {
        WrappingTime::from_cycle(self.raw_ts, self.width)
    }

    /// The full-precision preemption cycle count kept by software.
    pub fn raw_ts(&self) -> u64 {
        self.raw_ts
    }

    /// The integrity checksum stored at save time.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Whether the stored checksum still matches the snapshot's contents.
    /// `false` means the snapshot was corrupted while at rest and must not
    /// be trusted: restore degrades to a conservative full s-bit reset.
    pub fn integrity_ok(&self) -> bool {
        self.checksum == integrity_checksum(&self.sbits, self.raw_ts, self.width)
    }

    /// The software half of rollover detection alone: have the truncated
    /// counter epochs of preemption and resumption diverged? This is
    /// equivalent to [`Snapshot::rollover_since`] (epoch equal ⇒ no wrap at
    /// all; epoch differing by less than a period ⇒ the hardware comparison
    /// fires; by a period or more ⇒ the software elapsed-time check fires),
    /// but needs only the kernel's full-precision `Ts` — which is what lets
    /// trusted software cross-check a hardware rollover signal that a fault
    /// (or an attacker glitch) has suppressed.
    ///
    /// # Panics
    ///
    /// Panics if `now_raw` is earlier than the preemption time (time must be
    /// monotonic).
    pub fn software_rollover_since(&self, now_raw: u64) -> bool {
        assert!(
            now_raw >= self.raw_ts,
            "resumption time {now_raw} precedes preemption time {}",
            self.raw_ts
        );
        match self.width.period() {
            // A 64-bit counter never wraps within u64 simulated time.
            None => false,
            Some(_) => (now_raw >> self.width.bits()) != (self.raw_ts >> self.width.bits()),
        }
    }

    /// Rollover detection performed at resumption, combining the hardware
    /// check (truncated now < truncated `Ts`, Section VI-C) with the
    /// software check for preemptions spanning at least one full counter
    /// period (which the truncated comparison alone cannot detect).
    ///
    /// # Panics
    ///
    /// Panics if `now_raw` is earlier than the preemption time (time must be
    /// monotonic).
    pub fn rollover_since(&self, now_raw: u64) -> bool {
        assert!(
            now_raw >= self.raw_ts,
            "resumption time {now_raw} precedes preemption time {}",
            self.raw_ts
        );
        let hw = self
            .ts()
            .rollover_since(WrappingTime::from_cycle(now_raw, self.width));
        let sw = match self.width.period() {
            Some(p) => now_raw - self.raw_ts >= p,
            None => false,
        };
        hw || sw
    }

    /// Bytes of kernel memory this snapshot occupies; save and restore each
    /// move this many bytes (Section VI-D's copy-cost analysis).
    pub fn storage_bytes(&self) -> usize {
        // s-bits plus the 64-bit Ts register.
        self.sbits.storage_bytes() + 8
    }

    /// Number of 64-byte cache-line-sized transfers needed to save or
    /// restore this snapshot (Section VI-D: 2 for a 64 KB L1, 256 for an
    /// 8 MB LLC).
    pub fn transfer_lines(&self) -> usize {
        self.sbits.storage_bytes().div_ceil(64).max(1)
    }
}

/// FNV-1a over the snapshot's words, preemption time, and counter width.
fn integrity_checksum(sbits: &SBitArray, raw_ts: u64, width: TimestampWidth) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = OFFSET;
    let mut mix = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    for &word in sbits.words() {
        mix(word);
    }
    mix(raw_ts);
    mix(u64::from(width.bits()));
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(lines: usize) -> Snapshot {
        Snapshot::new(SBitArray::new(lines), 0, TimestampWidth::new(32))
    }

    #[test]
    fn transfer_lines_match_paper_section_vi_d() {
        // 64 KB cache / 64 B lines = 1024 lines -> 128 B -> 2 transfers.
        assert_eq!(snap(1024).transfer_lines(), 2);
        // 8 MB cache -> 131072 lines -> 16 KiB -> 256 transfers.
        assert_eq!(snap(131072).transfer_lines(), 256);
    }

    #[test]
    fn tiny_snapshot_still_one_transfer() {
        assert_eq!(snap(8).transfer_lines(), 1);
    }

    #[test]
    fn storage_includes_ts_register() {
        assert_eq!(snap(64).storage_bytes(), 8 + 8);
    }

    #[test]
    fn rollover_detected_by_hardware_comparison() {
        let w = TimestampWidth::new(8);
        let s = Snapshot::new(SBitArray::new(8), 250, w);
        assert!(s.rollover_since(260)); // truncated 4 < 250
    }

    #[test]
    fn rollover_detected_across_full_period_by_software() {
        // 8-bit period = 256: one full period later the truncated values
        // would look forward-moving, but software sees the elapsed time.
        let w = TimestampWidth::new(8);
        let s = Snapshot::new(SBitArray::new(8), 10, w);
        assert!(!s.rollover_since(100));
        assert!(s.rollover_since(10 + 256));
        assert!(s.rollover_since(10 + 3 * 256 + 5));
    }

    #[test]
    #[should_panic(expected = "precedes preemption")]
    fn non_monotonic_time_rejected() {
        let s = Snapshot::new(SBitArray::new(8), 100, TimestampWidth::new(8));
        s.rollover_since(99);
    }

    #[test]
    fn fresh_snapshot_passes_integrity() {
        let mut sbits = SBitArray::new(130);
        sbits.set(7);
        sbits.set(129);
        let s = Snapshot::new(sbits, 42, TimestampWidth::new(8));
        assert!(s.integrity_ok());
        assert_eq!(s.clone().checksum(), s.checksum());
    }

    #[test]
    fn tampered_snapshot_fails_integrity() {
        let honest = Snapshot::new(SBitArray::new(64), 42, TimestampWidth::new(8));
        let mut tampered_bits = honest.sbits().clone();
        tampered_bits.set(3);
        let tampered = Snapshot::from_raw_parts(
            tampered_bits,
            honest.raw_ts(),
            TimestampWidth::new(8),
            honest.checksum(),
        );
        assert!(!tampered.integrity_ok());
        // A tampered Ts is caught just as well.
        let bad_ts = Snapshot::from_raw_parts(
            honest.sbits().clone(),
            43,
            TimestampWidth::new(8),
            honest.checksum(),
        );
        assert!(!bad_ts.integrity_ok());
    }

    #[test]
    fn software_rollover_matches_combined_check() {
        // Equivalence claimed in the doc comment: for every (save, resume)
        // pair on a small counter the epoch comparison agrees with the
        // hardware-or-software combined check.
        let w = TimestampWidth::new(4); // period 16
        for ts in 0..64u64 {
            for now in ts..ts + 48 {
                let s = Snapshot::new(SBitArray::new(8), ts, w);
                assert_eq!(
                    s.software_rollover_since(now),
                    s.rollover_since(now),
                    "ts={ts} now={now}"
                );
            }
        }
    }

    #[test]
    fn software_rollover_on_64_bit_counter_is_never() {
        let s = Snapshot::new(SBitArray::new(8), u64::MAX - 1, TimestampWidth::new(64));
        assert!(!s.software_rollover_since(u64::MAX));
        assert!(!s.rollover_since(u64::MAX));
    }
}
