//! Per-cache-level TimeCache state machine.
//!
//! [`TimeCacheState`] aggregates the mechanism for one cache level: one
//! transposed `Tc` array, one [`SBitArray`] per hardware context sharing the
//! cache, and the save/restore/compare choreography performed at context
//! switches (Fig. 4 of the paper).

use crate::comparator::BitSerialComparator;
use crate::config::{SharerTracking, TimeCacheConfig};
use crate::fault::{FaultInjector, FaultKind, TriggerPoint};
use crate::limited::LimitedPointers;
use crate::sbit::SBitArray;
use crate::snapshot::Snapshot;
use crate::transpose::TransposeArray;

/// What a tag-hit access is allowed to observe, per Section V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// The requesting context's s-bit is set: service as an ordinary hit.
    Visible,
    /// The s-bit is clear: this is a **first access**. The request must be
    /// sent down the memory hierarchy and serviced with miss-equivalent
    /// latency; the returned data is discarded (the cached copy is newest)
    /// and the s-bit is then set via
    /// [`TimeCacheState::record_first_access`].
    FirstAccess,
}

/// The outcome of restoring a process's caching context onto a hardware
/// context (Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreOutcome {
    /// Whether counter rollover was detected since the process was
    /// preempted, forcing a conservative reset of all its s-bits.
    pub rollover: bool,
    /// Number of s-bits the comparator (or rollover reset) cleared relative
    /// to the restored snapshot.
    pub sbits_reset: usize,
    /// Hardware cycles spent in the bit-serial comparison sweep (zero when a
    /// rollover reset or a fresh-process reset made the sweep unnecessary).
    pub comparator_cycles: u64,
    /// 64-byte transfers performed to restore the snapshot from memory.
    pub transfer_lines: usize,
    /// Whether a fault forced this restore to fall back to the conservative
    /// full s-bit reset (lost/corrupt snapshot, comparator glitch, or a
    /// suppressed-but-real rollover caught by the software cross-check).
    /// Always `false` on the fault-free path.
    pub degraded: bool,
}

/// The visibility representation behind a [`TimeCacheState`]: the paper's
/// full per-context s-bit map, or the limited-pointer alternative.
#[derive(Debug, Clone)]
enum Sharers {
    Full(Vec<SBitArray>),
    Limited(LimitedPointers),
}

impl Sharers {
    fn get(&self, line: usize, ctx: usize) -> bool {
        match self {
            Sharers::Full(maps) => maps[ctx].get(line),
            Sharers::Limited(lp) => lp.has(line, ctx),
        }
    }

    fn grant(&mut self, line: usize, ctx: usize) {
        match self {
            Sharers::Full(maps) => maps[ctx].set(line),
            Sharers::Limited(lp) => lp.grant(line, ctx),
        }
    }

    fn set_exclusive(&mut self, line: usize, ctx: usize) {
        match self {
            Sharers::Full(maps) => {
                for (c, map) in maps.iter_mut().enumerate() {
                    if c == ctx {
                        map.set(line);
                    } else {
                        map.clear(line);
                    }
                }
            }
            Sharers::Limited(lp) => lp.set_exclusive(line, ctx),
        }
    }

    fn clear_line(&mut self, line: usize) {
        match self {
            Sharers::Full(maps) => {
                for map in maps {
                    map.clear(line);
                }
            }
            Sharers::Limited(lp) => lp.clear_line(line),
        }
    }

    fn clear_ctx(&mut self, ctx: usize) -> usize {
        match self {
            Sharers::Full(maps) => {
                let before = maps[ctx].count_set();
                maps[ctx].clear_all();
                before
            }
            Sharers::Limited(lp) => {
                let before = lp
                    .extract_bits(ctx)
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum();
                lp.clear_ctx(ctx);
                before
            }
        }
    }

    fn extract(&self, ctx: usize, num_lines: usize) -> SBitArray {
        match self {
            Sharers::Full(maps) => maps[ctx].clone(),
            Sharers::Limited(lp) => SBitArray::from_words(lp.extract_bits(ctx), num_lines),
        }
    }

    fn load(&mut self, ctx: usize, snapshot: &SBitArray) {
        match self {
            Sharers::Full(maps) => maps[ctx].copy_from(snapshot),
            Sharers::Limited(lp) => lp.load_bits(ctx, snapshot.words()),
        }
    }

    fn apply_reset_mask(&mut self, ctx: usize, mask: &[u64]) -> usize {
        match self {
            Sharers::Full(maps) => maps[ctx].apply_reset_mask(mask),
            Sharers::Limited(lp) => lp.apply_reset_mask(ctx, mask),
        }
    }
}

/// TimeCache hardware state for a single cache level shared by
/// `num_contexts` hardware contexts.
///
/// Line indices are flat (`set * ways + way` is the natural mapping for a
/// set-associative cache) and must be below `num_lines`.
///
/// # Examples
///
/// Cross-context isolation with save/restore across a context switch:
///
/// ```
/// use timecache_core::{TimeCacheState, TimeCacheConfig, Visibility};
///
/// let mut tc = TimeCacheState::new(256, 1, TimeCacheConfig::new(32));
///
/// // Process A runs on context 0 and fills line 7 at cycle 1000.
/// tc.on_fill(7, 0, 1000);
/// let snap_a = tc.save_context(0, 2000); // A preempted at cycle 2000
///
/// // Process B is scheduled (fresh context), fills line 9 at cycle 2500,
/// // and must not see A's line 7 as visible.
/// tc.restore_context(0, None, 2000);
/// assert_eq!(tc.visibility(7, 0), Visibility::FirstAccess);
/// tc.on_fill(9, 0, 2500);
/// let _snap_b = tc.save_context(0, 3000);
///
/// // A resumes: its own line 7 is still visible (Tc=1000 <= Ts=2000), but
/// // B's line 9 (Tc=2500 > Ts=2000) is reset by the comparator.
/// let outcome = tc.restore_context(0, Some(&snap_a), 3000);
/// assert_eq!(outcome.sbits_reset, 0); // line 9 was never set in A's snapshot
/// assert_eq!(tc.visibility(7, 0), Visibility::Visible);
/// assert_eq!(tc.visibility(9, 0), Visibility::FirstAccess);
/// ```
#[derive(Debug, Clone)]
pub struct TimeCacheState {
    config: TimeCacheConfig,
    num_lines: usize,
    num_contexts: usize,
    tc: TransposeArray,
    sharers: Sharers,
}

impl TimeCacheState {
    /// Creates TimeCache state for a cache of `num_lines` lines shared by
    /// `num_contexts` hardware contexts.
    ///
    /// # Panics
    ///
    /// Panics if `num_lines` or `num_contexts` is zero.
    pub fn new(num_lines: usize, num_contexts: usize, config: TimeCacheConfig) -> Self {
        assert!(num_lines > 0, "cache must have at least one line");
        assert!(num_contexts > 0, "cache must serve at least one context");
        let sharers = match config.sharer_tracking() {
            SharerTracking::FullMap => Sharers::Full(vec![SBitArray::new(num_lines); num_contexts]),
            SharerTracking::LimitedPointers { k } => Sharers::Limited(LimitedPointers::new(
                num_lines,
                num_contexts,
                k.min(num_contexts),
            )),
        };
        TimeCacheState {
            config,
            num_lines,
            num_contexts,
            tc: TransposeArray::new(num_lines, config.timestamp_width()),
            sharers,
        }
    }

    /// The configuration this state was built with.
    pub fn config(&self) -> &TimeCacheConfig {
        &self.config
    }

    /// Number of cache lines covered.
    pub fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Number of hardware contexts sharing the cache.
    pub fn num_contexts(&self) -> usize {
        self.num_contexts
    }

    /// A line was filled by `ctx` at (unbounded) cycle `now`: record `Tc`,
    /// set the filling context's s-bit, and reset every other context's
    /// s-bit for the line (Section V-A bullet list).
    ///
    /// # Panics
    ///
    /// Panics if `line` or `ctx` is out of range.
    pub fn on_fill(&mut self, line: usize, ctx: usize, now: u64) {
        self.check(line, ctx);
        self.tc.write_word(line, now);
        self.sharers.set_exclusive(line, ctx);
    }

    /// A line was evicted or invalidated: reset all contexts' s-bits.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn on_evict(&mut self, line: usize) {
        assert!(line < self.num_lines, "line {line} out of range");
        self.sharers.clear_line(line);
    }

    /// Consults the s-bit on a tag hit: is the access an ordinary hit or a
    /// first access that must be delayed?
    ///
    /// # Panics
    ///
    /// Panics if `line` or `ctx` is out of range.
    pub fn visibility(&self, line: usize, ctx: usize) -> Visibility {
        self.check(line, ctx);
        if self.sharers.get(line, ctx) {
            Visibility::Visible
        } else {
            Visibility::FirstAccess
        }
    }

    /// After a first access has been serviced with miss-equivalent latency,
    /// set the context's s-bit so subsequent accesses hit normally.
    ///
    /// # Panics
    ///
    /// Panics if `line` or `ctx` is out of range.
    pub fn record_first_access(&mut self, line: usize, ctx: usize) {
        self.check(line, ctx);
        self.sharers.grant(line, ctx);
    }

    /// Saves the caching context of `ctx` at preemption time `now`
    /// (unbounded cycles; truncated to the counter width internally).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn save_context(&self, ctx: usize, now: u64) -> Snapshot {
        assert!(ctx < self.num_contexts, "context {ctx} out of range");
        Snapshot::new(
            self.sharers.extract(ctx, self.num_lines),
            now,
            self.config.timestamp_width(),
        )
    }

    /// Restores a process's caching context onto hardware context `ctx` at
    /// cycle `now`, then brings it up to date:
    ///
    /// * `snapshot == None` models a newly created process (Fig. 4a): all
    ///   s-bits for the context are reset.
    /// * On counter rollover since the snapshot's `Ts`
    ///   ([`Snapshot::rollover_since`]), all s-bits are conservatively
    ///   reset (Section VI-C).
    /// * Otherwise the snapshot is loaded and the bit-serial comparator
    ///   resets the s-bit of every line with `Tc > Ts`.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range or the snapshot's geometry (line
    /// count / timestamp width) does not match this cache.
    pub fn restore_context(
        &mut self,
        ctx: usize,
        snapshot: Option<&Snapshot>,
        now: u64,
    ) -> RestoreOutcome {
        self.restore_context_faulty(ctx, snapshot, now, &FaultInjector::disabled())
    }

    /// [`TimeCacheState::restore_context`] under fault injection.
    ///
    /// The injector may strike anywhere in the restore choreography; every
    /// strike degrades to the conservative full s-bit reset (or, for
    /// [`FaultKind::ForceRollover`], is conservative by construction) and is
    /// **never** allowed to leave a stale s-bit visible:
    ///
    /// * a dropped snapshot restores as a fresh process;
    /// * a corrupted snapshot is caught by [`Snapshot::integrity_ok`];
    /// * a suppressed rollover signal ([`FaultKind::DeferRollover`]) is
    ///   cross-checked against the kernel's full-precision `Ts` via
    ///   [`Snapshot::software_rollover_since`];
    /// * a glitched comparator mask is caught by running the bit-serial
    ///   sweep twice and comparing the masks (dual modular redundancy),
    ///   at twice the comparator cycle cost.
    ///
    /// With a disabled injector this is exactly
    /// [`TimeCacheState::restore_context`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`TimeCacheState::restore_context`].
    pub fn restore_context_faulty(
        &mut self,
        ctx: usize,
        snapshot: Option<&Snapshot>,
        now: u64,
        faults: &FaultInjector,
    ) -> RestoreOutcome {
        assert!(ctx < self.num_contexts, "context {ctx} out of range");
        let dropped =
            snapshot.is_some() && faults.fire(FaultKind::DropSnapshot, TriggerPoint::Restore);
        let Some(snap) = snapshot.filter(|_| !dropped) else {
            let before = self.sharers.clear_ctx(ctx);
            return RestoreOutcome {
                rollover: false,
                sbits_reset: before,
                comparator_cycles: 0,
                transfer_lines: 0,
                degraded: dropped,
            };
        };
        let corrupted;
        let snap = if faults.fire(FaultKind::CorruptSnapshot, TriggerPoint::Restore) {
            corrupted = faults.corrupt_snapshot(snap);
            &corrupted
        } else {
            snap
        };
        assert_eq!(
            snap.sbits().len(),
            self.num_lines,
            "snapshot covers {} lines, cache has {}",
            snap.sbits().len(),
            self.num_lines
        );
        let width = self.config.timestamp_width();
        assert_eq!(
            snap.ts().width(),
            width,
            "snapshot timestamp width mismatch"
        );

        // Trusted software verifies the snapshot survived its stay in kernel
        // memory; on mismatch nothing it says can be believed, so restore as
        // a fresh process.
        if !snap.integrity_ok() {
            faults.note_detected();
            let before = self.sharers.clear_ctx(ctx);
            return RestoreOutcome {
                rollover: false,
                sbits_reset: before,
                comparator_cycles: 0,
                transfer_lines: snap.transfer_lines(),
                degraded: true,
            };
        }

        let deferred = faults.fire(FaultKind::DeferRollover, TriggerPoint::Rollover);
        let rollover_signal = if deferred {
            // The hardware signal is stuck low; the kernel cross-checks with
            // its full-precision Ts, which detects exactly the same wraps.
            let real = snap.software_rollover_since(now);
            if real {
                faults.note_detected();
            }
            real
        } else {
            snap.rollover_since(now)
        };
        let forced =
            !rollover_signal && faults.fire(FaultKind::ForceRollover, TriggerPoint::Rollover);
        if rollover_signal || forced {
            let restored = snap.sbits().count_set();
            self.sharers.clear_ctx(ctx);
            return RestoreOutcome {
                rollover: true,
                sbits_reset: restored,
                comparator_cycles: 0,
                transfer_lines: snap.transfer_lines(),
                degraded: (deferred && rollover_signal) || forced,
            };
        }

        self.sharers.load(ctx, snap.sbits());
        let outcome = BitSerialComparator::compare(&mut self.tc, snap.ts());
        if faults.fire(FaultKind::FlipComparator, TriggerPoint::Compare) {
            // Dual modular redundancy: the sweep runs twice and the masks
            // must agree. A glitched copy disagrees with the clean one, so
            // the comparator result is distrusted and the context fully
            // reset — at twice the sweep's cycle cost.
            let mut flipped = outcome.reset_mask.clone();
            faults.corrupt_mask(&mut flipped);
            faults.note_detected();
            let before = self.sharers.clear_ctx(ctx);
            return RestoreOutcome {
                rollover: false,
                sbits_reset: before,
                comparator_cycles: outcome.cycles * 2,
                transfer_lines: snap.transfer_lines(),
                degraded: true,
            };
        }
        let reset = self.sharers.apply_reset_mask(ctx, &outcome.reset_mask);
        RestoreOutcome {
            rollover: false,
            sbits_reset: reset,
            comparator_cycles: outcome.cycles,
            transfer_lines: snap.transfer_lines(),
            degraded: false,
        }
    }

    /// The stored fill timestamp of a line (truncated). Mostly useful for
    /// tests and diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn tc_of(&self, line: usize) -> u64 {
        self.tc.read_word(line)
    }

    /// A copy of one context's visibility as an s-bit array (materialized
    /// from the pointer slots under limited tracking).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn sbits(&self, ctx: usize) -> SBitArray {
        assert!(ctx < self.num_contexts, "context {ctx} out of range");
        self.sharers.extract(ctx, self.num_lines)
    }

    fn check(&self, line: usize, ctx: usize) {
        assert!(line < self.num_lines, "line {line} out of range");
        assert!(ctx < self.num_contexts, "context {ctx} out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(lines: usize, ctxs: usize, ts_bits: u8) -> TimeCacheState {
        TimeCacheState::new(lines, ctxs, TimeCacheConfig::new(ts_bits))
    }

    #[test]
    fn fill_grants_visibility_to_filler_only() {
        let mut tc = state(64, 3, 32);
        tc.on_fill(10, 1, 500);
        assert_eq!(tc.visibility(10, 1), Visibility::Visible);
        assert_eq!(tc.visibility(10, 0), Visibility::FirstAccess);
        assert_eq!(tc.visibility(10, 2), Visibility::FirstAccess);
        assert_eq!(tc.tc_of(10), 500);
    }

    #[test]
    fn refill_revokes_other_contexts() {
        let mut tc = state(64, 2, 32);
        tc.on_fill(3, 0, 100);
        tc.record_first_access(3, 1);
        assert_eq!(tc.visibility(3, 1), Visibility::Visible);
        // Line evicted and refilled by ctx 0: ctx 1 must pay again.
        tc.on_evict(3);
        tc.on_fill(3, 0, 900);
        assert_eq!(tc.visibility(3, 0), Visibility::Visible);
        assert_eq!(tc.visibility(3, 1), Visibility::FirstAccess);
    }

    #[test]
    fn evict_resets_all_contexts() {
        let mut tc = state(64, 2, 32);
        tc.on_fill(8, 0, 10);
        tc.record_first_access(8, 1);
        tc.on_evict(8);
        assert_eq!(tc.visibility(8, 0), Visibility::FirstAccess);
        assert_eq!(tc.visibility(8, 1), Visibility::FirstAccess);
    }

    #[test]
    fn fresh_process_restore_clears_everything() {
        let mut tc = state(64, 1, 32);
        tc.on_fill(1, 0, 10);
        let out = tc.restore_context(0, None, 20);
        assert_eq!(out.sbits_reset, 1);
        assert_eq!(tc.visibility(1, 0), Visibility::FirstAccess);
    }

    #[test]
    fn restore_resets_lines_filled_while_preempted() {
        let mut tc = state(64, 1, 32);
        tc.on_fill(1, 0, 10); // process A's line
        let snap = tc.save_context(0, 100);

        // Process B's tenure: refills line 1 (eviction + new fill) and
        // fills line 2.
        tc.restore_context(0, None, 100);
        tc.on_evict(1);
        tc.on_fill(1, 0, 150);
        tc.on_fill(2, 0, 160);

        let out = tc.restore_context(0, Some(&snap), 200);
        assert!(!out.rollover);
        // A's saved s-bit for line 1 is stale (Tc=150 > Ts=100): reset.
        assert_eq!(out.sbits_reset, 1);
        assert_eq!(tc.visibility(1, 0), Visibility::FirstAccess);
        assert_eq!(tc.visibility(2, 0), Visibility::FirstAccess);
        assert_eq!(out.comparator_cycles, 33);
        assert_eq!(out.transfer_lines, 1);
    }

    #[test]
    fn restore_preserves_surviving_lines() {
        let mut tc = state(64, 1, 32);
        tc.on_fill(5, 0, 10);
        let snap = tc.save_context(0, 100);
        tc.restore_context(0, None, 100); // B runs, touches nothing
        let out = tc.restore_context(0, Some(&snap), 200);
        assert_eq!(out.sbits_reset, 0);
        assert_eq!(tc.visibility(5, 0), Visibility::Visible);
    }

    #[test]
    fn rollover_forces_full_reset() {
        let mut tc = state(64, 1, 8); // 8-bit counter: period 256
        tc.on_fill(5, 0, 10);
        let snap = tc.save_context(0, 250);
        // Resumes at raw cycle 260 -> truncated 4 < 250: rollover.
        let out = tc.restore_context(0, Some(&snap), 260);
        assert!(out.rollover);
        assert_eq!(out.sbits_reset, 1);
        assert_eq!(out.comparator_cycles, 0);
        assert_eq!(tc.visibility(5, 0), Visibility::FirstAccess);
    }

    #[test]
    fn rollover_never_grants_stale_visibility() {
        // Stress the paper's Section VI-C scenarios with an 8-bit counter.
        let mut tc = state(8, 1, 8);
        // Fill at cycle 200, preempt at 250.
        tc.on_fill(0, 0, 200);
        let snap = tc.save_context(0, 250);
        tc.restore_context(0, None, 250);
        // Another process fills line 1 at raw 300 (truncated 44).
        tc.on_fill(1, 0, 300);
        // A resumes at raw 310 (truncated 54 < 250): rollover reset; line 1
        // must not be visible even though its truncated Tc (44) < Ts (250).
        let out = tc.restore_context(0, Some(&snap), 310);
        assert!(out.rollover);
        assert_eq!(tc.visibility(1, 0), Visibility::FirstAccess);
    }

    #[test]
    fn no_rollover_spurious_reset_is_safe_not_wrong() {
        // Section VI-C: "assuming no rollover between Ts and resumption,
        // older cache lines with bigger Tc may cause unnecessary resets, but
        // correctness is maintained."
        let mut tc = state(8, 1, 8);
        tc.on_fill(0, 0, 230); // Tc = 230
                               // Process accessed it, preempted at raw 258 -> Ts truncates to 2.
        let snap = tc.save_context(0, 258);
        tc.restore_context(0, None, 258);
        // Resumes at raw 261 -> truncated 5; no rollover detected (5 >= 2).
        let out = tc.restore_context(0, Some(&snap), 261);
        assert!(!out.rollover);
        // Line 0 has Tc=230 > Ts=2: unnecessarily reset — extra miss, safe.
        assert_eq!(tc.visibility(0, 0), Visibility::FirstAccess);
    }

    #[test]
    fn smt_contexts_are_isolated_without_switches() {
        // Two hyperthreads share the cache; no context switch involved.
        let mut tc = state(64, 2, 32);
        tc.on_fill(20, 0, 10); // victim thread fills
        assert_eq!(tc.visibility(20, 1), Visibility::FirstAccess);
        tc.record_first_access(20, 1);
        assert_eq!(tc.visibility(20, 1), Visibility::Visible);
        // Victim's visibility is unaffected by the spy's first access.
        assert_eq!(tc.visibility(20, 0), Visibility::Visible);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn context_bounds_checked() {
        state(8, 1, 32).visibility(0, 1);
    }

    #[test]
    #[should_panic(expected = "snapshot covers")]
    fn snapshot_geometry_checked() {
        let mut a = state(8, 1, 32);
        let b = state(16, 1, 32);
        let snap = b.save_context(0, 0);
        a.restore_context(0, Some(&snap), 0);
    }

    // --- rollover edge cases (satellite: ISSUE 3) ---

    #[test]
    fn ts_equals_tc_tie_at_restore_keeps_visibility() {
        // Fill and preempt at the same cycle: Tc == Ts. The comparator
        // resets only Tc > Ts (strict), so the line the process itself
        // filled at the preemption instant stays visible — it paid for it.
        let mut tc = state(8, 1, 32);
        tc.on_fill(0, 0, 100);
        let snap = tc.save_context(0, 100);
        tc.restore_context(0, None, 100);
        let out = tc.restore_context(0, Some(&snap), 100);
        assert!(!out.rollover);
        assert_eq!(out.sbits_reset, 0);
        assert_eq!(tc.visibility(0, 0), Visibility::Visible);
    }

    #[test]
    fn wrap_exactly_at_u64_max_on_full_width_counter() {
        // A 64-bit counter never rolls over within u64 simulated time, even
        // at the very top of the range.
        let mut tc = state(8, 1, 64);
        tc.on_fill(0, 0, u64::MAX - 10);
        let snap = tc.save_context(0, u64::MAX - 5);
        tc.restore_context(0, None, u64::MAX - 5);
        let out = tc.restore_context(0, Some(&snap), u64::MAX);
        assert!(!out.rollover);
        assert_eq!(tc.visibility(0, 0), Visibility::Visible);
    }

    #[test]
    fn double_rollover_within_one_preemption_detected() {
        // 8-bit counter (period 256) preempted for two full periods plus a
        // bit: truncated values look forward-moving (15 >= 10), so only the
        // software elapsed-time check catches it.
        let mut tc = state(8, 1, 8);
        tc.on_fill(0, 0, 5);
        let snap = tc.save_context(0, 10);
        tc.restore_context(0, None, 10);
        let out = tc.restore_context(0, Some(&snap), 10 + 2 * 256 + 5);
        assert!(out.rollover);
        assert_eq!(tc.visibility(0, 0), Visibility::FirstAccess);
    }

    // --- fault-injection paths ---

    use crate::fault::{FaultPlan, TriggerPoint as Tp};

    /// A state with one visible line (filled by ctx 0 at `fill`), saved at
    /// `save`, with another process's fill at `other` in between.
    fn faulted_scenario(
        ts_bits: u8,
        fill: u64,
        save: u64,
        other: u64,
    ) -> (TimeCacheState, Snapshot) {
        let mut tc = state(8, 1, ts_bits);
        tc.on_fill(0, 0, fill);
        let snap = tc.save_context(0, save);
        tc.restore_context(0, None, save);
        tc.on_evict(1);
        tc.on_fill(1, 0, other);
        (tc, snap)
    }

    #[test]
    fn dropped_snapshot_degrades_to_fresh_reset() {
        let (mut tc, snap) = faulted_scenario(32, 10, 100, 150);
        let inj = FaultInjector::new(FaultPlan::new(FaultKind::DropSnapshot, Tp::Restore, 1));
        let out = tc.restore_context_faulty(0, Some(&snap), 200, &inj);
        assert!(out.degraded);
        assert_eq!(out.transfer_lines, 0);
        // Conservative: even the process's own line must be re-paid.
        assert_eq!(tc.visibility(0, 0), Visibility::FirstAccess);
        assert_eq!(tc.visibility(1, 0), Visibility::FirstAccess);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn corrupted_snapshot_is_detected_and_fully_reset() {
        let (mut tc, snap) = faulted_scenario(32, 10, 100, 150);
        let inj = FaultInjector::new(FaultPlan::new(FaultKind::CorruptSnapshot, Tp::Restore, 2));
        let out = tc.restore_context_faulty(0, Some(&snap), 200, &inj);
        assert!(out.degraded);
        assert!(!out.rollover);
        assert_eq!(tc.visibility(0, 0), Visibility::FirstAccess);
        assert_eq!(tc.visibility(1, 0), Visibility::FirstAccess);
        assert_eq!(inj.detected(), 1, "checksum must catch the corruption");
    }

    #[test]
    fn forced_rollover_is_conservative_not_leaky() {
        let (mut tc, snap) = faulted_scenario(32, 10, 100, 150);
        let inj = FaultInjector::new(FaultPlan::new(FaultKind::ForceRollover, Tp::Rollover, 3));
        let out = tc.restore_context_faulty(0, Some(&snap), 200, &inj);
        assert!(out.rollover);
        assert!(out.degraded);
        assert_eq!(tc.visibility(0, 0), Visibility::FirstAccess);
    }

    #[test]
    fn deferred_rollover_is_caught_by_software_cross_check() {
        // Real rollover (8-bit counter, resume past the wrap) with the
        // hardware signal suppressed: the kernel's full-precision Ts check
        // must still force the full reset.
        let (mut tc, snap) = faulted_scenario(8, 200, 250, 300);
        let inj = FaultInjector::new(FaultPlan::new(FaultKind::DeferRollover, Tp::Rollover, 4));
        let out = tc.restore_context_faulty(0, Some(&snap), 310, &inj);
        assert!(out.rollover, "software cross-check must fire");
        assert!(out.degraded);
        assert_eq!(tc.visibility(0, 0), Visibility::FirstAccess);
        assert_eq!(tc.visibility(1, 0), Visibility::FirstAccess);
        assert_eq!(inj.detected(), 1);
    }

    #[test]
    fn deferred_rollover_without_real_rollover_changes_nothing() {
        let (mut tc, snap) = faulted_scenario(32, 10, 100, 150);
        let inj = FaultInjector::new(FaultPlan::new(FaultKind::DeferRollover, Tp::Rollover, 5));
        let out = tc.restore_context_faulty(0, Some(&snap), 200, &inj);
        assert!(!out.rollover);
        assert!(!out.degraded);
        // Normal comparator outcome: own old line visible, other's reset.
        assert_eq!(tc.visibility(0, 0), Visibility::Visible);
        assert_eq!(tc.visibility(1, 0), Visibility::FirstAccess);
    }

    #[test]
    fn comparator_glitch_is_detected_by_redundant_sweep() {
        let (mut tc, snap) = faulted_scenario(32, 10, 100, 150);
        let clean = {
            let (mut tc2, snap2) = faulted_scenario(32, 10, 100, 150);
            tc2.restore_context(0, Some(&snap2), 200)
        };
        let inj = FaultInjector::new(FaultPlan::new(FaultKind::FlipComparator, Tp::Compare, 6));
        let out = tc.restore_context_faulty(0, Some(&snap), 200, &inj);
        assert!(out.degraded);
        assert_eq!(out.comparator_cycles, clean.comparator_cycles * 2);
        assert_eq!(tc.visibility(0, 0), Visibility::FirstAccess);
        assert_eq!(tc.visibility(1, 0), Visibility::FirstAccess);
        assert_eq!(inj.detected(), 1);
    }

    #[test]
    fn rollover_during_injected_mid_save_abort_stays_safe() {
        // Satellite rollover edge: a save aborts (snapshot discarded by the
        // OS), then the counter rolls over before the process resumes. The
        // resume restores as a fresh process — the strictest possible
        // degradation — so the wrap cannot matter.
        let mut tc = state(8, 1, 8);
        tc.on_fill(0, 0, 200);
        // Save aborted: the OS keeps no snapshot (None). Another tenant
        // fills line 1 across the wrap.
        tc.restore_context(0, None, 250);
        tc.on_fill(1, 0, 300);
        let out = tc.restore_context(0, None, 320);
        assert!(!out.rollover);
        assert_eq!(tc.visibility(0, 0), Visibility::FirstAccess);
        assert_eq!(tc.visibility(1, 0), Visibility::FirstAccess);
        assert_eq!(out.transfer_lines, 0);
    }

    #[test]
    fn faulty_restore_with_disabled_injector_matches_plain_restore() {
        let (mut a, snap_a) = faulted_scenario(32, 10, 100, 150);
        let (mut b, snap_b) = faulted_scenario(32, 10, 100, 150);
        let plain = a.restore_context(0, Some(&snap_a), 200);
        let faulty = b.restore_context_faulty(0, Some(&snap_b), 200, &FaultInjector::disabled());
        assert_eq!(plain, faulty);
        assert!(!plain.degraded);
    }
}
