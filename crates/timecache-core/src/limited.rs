//! Limited-pointer visibility tracking.
//!
//! Section VI-C of the paper notes that one s-bit per hardware context per
//! line scales poorly for server-class LLCs and points at coherence-
//! directory techniques — specifically limited pointers (Agarwal et al.,
//! ISCA 1988) — as the remedy: since applications rarely share a line
//! across many contexts, track at most `k` sharer *ids* (`k·log2(n)` bits)
//! instead of `n` presence bits.
//!
//! [`LimitedPointers`] implements that representation for s-bits. The
//! safety argument carries over unchanged because pointer overflow is
//! resolved by *revoking* a victim pointer's visibility: revocation can
//! only cause extra first-access misses, never a stale hit. The property
//! test in the crate's test suite checks exactly that bound against the
//! full-map representation.

/// Per-line limited-pointer sharer slots standing in for per-context
/// s-bits.
///
/// Each line has `k` slots; a slot holds `context + 1` (0 = empty). A
/// context has visibility of a line iff one of the line's slots names it.
///
/// # Examples
///
/// ```
/// use timecache_core::LimitedPointers;
///
/// let mut lp = LimitedPointers::new(64, 8, 2);
/// lp.grant(3, 0);
/// lp.grant(3, 1);
/// assert!(lp.has(3, 0) && lp.has(3, 1));
/// // A third sharer overflows the 2 pointers: someone loses visibility.
/// lp.grant(3, 7);
/// assert!(lp.has(3, 7));
/// let survivors = (0..8).filter(|&c| lp.has(3, c)).count();
/// assert_eq!(survivors, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitedPointers {
    /// `lines * k` slots; value 0 = empty, else context id + 1.
    slots: Vec<u32>,
    num_lines: usize,
    num_contexts: usize,
    k: usize,
    /// Round-robin victim cursor for overflow replacement.
    rr: usize,
}

impl LimitedPointers {
    /// Creates tracking for `num_lines` lines, `num_contexts` contexts,
    /// and `k` pointers per line.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `k > num_contexts` (at that point
    /// a full bit map is strictly smaller — use it instead).
    pub fn new(num_lines: usize, num_contexts: usize, k: usize) -> Self {
        assert!(num_lines > 0, "need at least one line");
        assert!(num_contexts > 0, "need at least one context");
        assert!(
            k > 0 && k <= num_contexts,
            "k must be in 1..=num_contexts, got {k}"
        );
        LimitedPointers {
            slots: vec![0; num_lines * k],
            num_lines,
            num_contexts,
            k,
            rr: 0,
        }
    }

    /// Number of pointers per line.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of lines covered.
    pub fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Number of contexts representable.
    pub fn num_contexts(&self) -> usize {
        self.num_contexts
    }

    fn row(&self, line: usize) -> &[u32] {
        &self.slots[line * self.k..(line + 1) * self.k]
    }

    fn row_mut(&mut self, line: usize) -> &mut [u32] {
        &mut self.slots[line * self.k..(line + 1) * self.k]
    }

    /// Whether `ctx` currently has visibility of `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` or `ctx` is out of range.
    pub fn has(&self, line: usize, ctx: usize) -> bool {
        self.check(line, ctx);
        self.row(line).contains(&(ctx as u32 + 1))
    }

    /// Grants `ctx` visibility of `line`, evicting a round-robin victim
    /// pointer on overflow (the victim pays an extra first-access miss
    /// later — safe, only slower).
    ///
    /// # Panics
    ///
    /// Panics if `line` or `ctx` is out of range.
    pub fn grant(&mut self, line: usize, ctx: usize) {
        self.check(line, ctx);
        let tag = ctx as u32 + 1;
        let k = self.k;
        let rr = self.rr;
        let row = self.row_mut(line);
        if row.contains(&tag) {
            return;
        }
        if let Some(slot) = row.iter_mut().find(|s| **s == 0) {
            *slot = tag;
            return;
        }
        row[rr % k] = tag;
        self.rr = rr.wrapping_add(1);
    }

    /// Revokes `ctx`'s visibility of `line` (no-op if absent).
    ///
    /// # Panics
    ///
    /// Panics if `line` or `ctx` is out of range.
    pub fn revoke(&mut self, line: usize, ctx: usize) {
        self.check(line, ctx);
        let tag = ctx as u32 + 1;
        for slot in self.row_mut(line) {
            if *slot == tag {
                *slot = 0;
            }
        }
    }

    /// Grants `ctx` exclusive visibility of `line` (the fill case: the
    /// filling context is the only sharer).
    ///
    /// # Panics
    ///
    /// Panics if `line` or `ctx` is out of range.
    pub fn set_exclusive(&mut self, line: usize, ctx: usize) {
        self.check(line, ctx);
        let tag = ctx as u32 + 1;
        let row = self.row_mut(line);
        row.fill(0);
        row[0] = tag;
    }

    /// Clears every pointer of `line` (eviction/invalidation).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn clear_line(&mut self, line: usize) {
        assert!(line < self.num_lines, "line {line} out of range");
        self.row_mut(line).fill(0);
    }

    /// Revokes `ctx`'s visibility of every line (fresh process / rollover).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn clear_ctx(&mut self, ctx: usize) {
        assert!(ctx < self.num_contexts, "context {ctx} out of range");
        let tag = ctx as u32 + 1;
        for slot in &mut self.slots {
            if *slot == tag {
                *slot = 0;
            }
        }
    }

    /// Extracts `ctx`'s visibility as a packed bit vector (the snapshot the
    /// OS saves at preemption), one `u64` per 64 lines.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn extract_bits(&self, ctx: usize) -> Vec<u64> {
        assert!(ctx < self.num_contexts, "context {ctx} out of range");
        let tag = ctx as u32 + 1;
        let mut bits = vec![0u64; self.num_lines.div_ceil(64)];
        for line in 0..self.num_lines {
            if self.row(line).contains(&tag) {
                bits[line / 64] |= 1 << (line % 64);
            }
        }
        bits
    }

    /// Loads a saved bit vector for `ctx`: revokes everything it holds,
    /// then grants the snapshot's lines (possibly evicting other contexts'
    /// pointers on overflow — conservative for them, not for security).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range or the bit vector does not cover
    /// `num_lines`.
    pub fn load_bits(&mut self, ctx: usize, bits: &[u64]) {
        assert!(ctx < self.num_contexts, "context {ctx} out of range");
        assert_eq!(
            bits.len(),
            self.num_lines.div_ceil(64),
            "snapshot word count mismatch"
        );
        self.clear_ctx(ctx);
        for line in 0..self.num_lines {
            if bits[line / 64] >> (line % 64) & 1 == 1 {
                self.grant(line, ctx);
            }
        }
    }

    /// Applies a comparator reset mask for one context: revokes `ctx`'s
    /// visibility of every line whose mask bit is set. Returns the number
    /// of revocations (pointers that actually named `ctx`).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range or the mask does not cover
    /// `num_lines`.
    pub fn apply_reset_mask(&mut self, ctx: usize, mask: &[u64]) -> usize {
        assert!(ctx < self.num_contexts, "context {ctx} out of range");
        assert_eq!(
            mask.len(),
            self.num_lines.div_ceil(64),
            "reset mask word count mismatch"
        );
        let tag = ctx as u32 + 1;
        let mut revoked = 0;
        for line in 0..self.num_lines {
            if mask[line / 64] >> (line % 64) & 1 == 1 {
                for slot in self.row_mut(line) {
                    if *slot == tag {
                        *slot = 0;
                        revoked += 1;
                    }
                }
            }
        }
        revoked
    }

    /// Storage cost in bits: `lines * k * ceil(log2(contexts + 1))` —
    /// the Section VI-C area argument, to compare against `lines *
    /// contexts` for the full map.
    pub fn storage_bits(&self) -> usize {
        let id_bits = usize::BITS as usize - (self.num_contexts).leading_zeros() as usize;
        self.num_lines * self.k * id_bits
    }

    fn check(&self, line: usize, ctx: usize) {
        assert!(line < self.num_lines, "line {line} out of range");
        assert!(ctx < self.num_contexts, "context {ctx} out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_revoke() {
        let mut lp = LimitedPointers::new(8, 4, 2);
        assert!(!lp.has(0, 0));
        lp.grant(0, 0);
        assert!(lp.has(0, 0));
        lp.revoke(0, 0);
        assert!(!lp.has(0, 0));
    }

    #[test]
    fn grant_is_idempotent() {
        let mut lp = LimitedPointers::new(8, 4, 2);
        lp.grant(0, 1);
        lp.grant(0, 1);
        lp.grant(0, 2);
        assert!(lp.has(0, 1) && lp.has(0, 2), "no self-eviction");
    }

    #[test]
    fn overflow_revokes_exactly_one() {
        let mut lp = LimitedPointers::new(8, 8, 3);
        for ctx in 0..3 {
            lp.grant(5, ctx);
        }
        lp.grant(5, 7);
        let holders: Vec<_> = (0..8).filter(|&c| lp.has(5, c)).collect();
        assert_eq!(holders.len(), 3);
        assert!(holders.contains(&7), "new sharer always wins a slot");
    }

    #[test]
    fn set_exclusive_models_fill() {
        let mut lp = LimitedPointers::new(8, 4, 2);
        lp.grant(2, 0);
        lp.grant(2, 1);
        lp.set_exclusive(2, 3);
        assert!(lp.has(2, 3));
        assert!(!lp.has(2, 0) && !lp.has(2, 1));
    }

    #[test]
    fn clear_ctx_is_global_revocation() {
        let mut lp = LimitedPointers::new(8, 4, 2);
        lp.grant(1, 2);
        lp.grant(3, 2);
        lp.grant(3, 1);
        lp.clear_ctx(2);
        assert!(!lp.has(1, 2) && !lp.has(3, 2));
        assert!(lp.has(3, 1), "other contexts unaffected");
    }

    #[test]
    fn bits_roundtrip() {
        let mut lp = LimitedPointers::new(70, 4, 2);
        lp.grant(0, 1);
        lp.grant(69, 1);
        lp.grant(5, 0);
        let bits = lp.extract_bits(1);
        assert_eq!(bits[0] & 1, 1);
        assert_eq!(bits[1] >> 5 & 1, 1);

        let mut other = LimitedPointers::new(70, 4, 2);
        other.load_bits(1, &bits);
        assert!(other.has(0, 1) && other.has(69, 1));
        assert!(!other.has(5, 1));
    }

    #[test]
    fn storage_beats_full_map_for_many_contexts() {
        // 64 contexts, 2 pointers: 2*7 = 14 bits/line vs 64 bits/line.
        let lp = LimitedPointers::new(1000, 64, 2);
        assert!(lp.storage_bits() < 1000 * 64);
        assert_eq!(lp.storage_bits(), 1000 * 2 * 7);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn oversized_k_rejected() {
        LimitedPointers::new(8, 2, 3);
    }
}
