//! # timecache-core
//!
//! The hardware mechanism proposed by *TimeCache: Using Time to Eliminate
//! Cache Side Channels when Sharing Software* (Ojha & Dwarkadas, ISCA 2021),
//! implemented as a standalone, simulator-agnostic library.
//!
//! TimeCache eliminates **reuse-based** cache side channels (flush+reload,
//! evict+reload) by giving every hardware context a *private view* of cache
//! line residency: the first access by a context to a line that some other
//! context brought into the cache is serviced with miss-equivalent latency
//! (a **first-access miss**). A context only ever observes a cache hit for
//! lines it has itself paid a miss (or first-access miss) for, so cache
//! residency created by a victim is invisible to an attacker.
//!
//! The mechanism consists of:
//!
//! * a per-line, per-hardware-context **s-bit** ("has this context already
//!   accessed this resident line?") — [`SBitArray`];
//! * a per-line fill timestamp **Tc** stored in a *transposed* SRAM array so
//!   all lines' timestamps can be streamed out one bit-plane at a time —
//!   [`TransposeArray`];
//! * a **bit-serial, timestamp-parallel comparator** (Fig. 6 of the paper)
//!   that, on a context switch, resets the s-bits of every line filled after
//!   the resuming process was preempted (`Tc > Ts`) in time proportional to
//!   the timestamp *width*, not the number of lines — [`BitSerialComparator`];
//! * per-process **caching-context snapshots** saved/restored by trusted
//!   software at context switches — [`Snapshot`];
//! * everything glued together per cache level by [`TimeCacheState`].
//!
//! For robustness work the crate also ships a deterministic, seed-driven
//! [`FaultInjector`] that strikes the mechanism's rare paths (rollover,
//! snapshot save/restore, the comparator sweep) so harnesses can prove the
//! defense degrades conservatively — never to a stale hit — under faults;
//! see [`fault`](crate::FaultInjector) and
//! [`TimeCacheState::restore_context_faulty`].
//!
//! # Quick start
//!
//! ```
//! use timecache_core::{TimeCacheState, TimeCacheConfig, Visibility};
//!
//! // A cache with 128 lines shared by 2 hardware contexts, 32-bit timestamps.
//! let cfg = TimeCacheConfig::new(32);
//! let mut tc = TimeCacheState::new(128, 2, cfg);
//!
//! // Context 0 fills line 5 at cycle 100: line is visible to ctx 0 only.
//! tc.on_fill(5, 0, 100);
//! assert_eq!(tc.visibility(5, 0), Visibility::Visible);
//! assert_eq!(tc.visibility(5, 1), Visibility::FirstAccess);
//!
//! // Context 1 touches it: a first-access miss, after which it is visible.
//! tc.record_first_access(5, 1);
//! assert_eq!(tc.visibility(5, 1), Visibility::Visible);
//! ```
//!
//! The crate has no third-party dependencies and performs no I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod comparator;
mod config;
mod fault;
mod limited;
mod rng;
mod sbit;
mod snapshot;
mod state;
mod timestamp;
mod transpose;

pub use area::AreaModel;
pub use comparator::{BitSerialComparator, CompareOutcome};
pub use config::{SharerTracking, TimeCacheConfig};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultRecord, TriggerPoint};
pub use limited::LimitedPointers;
pub use rng::FastRng;
pub use sbit::SBitArray;
pub use snapshot::Snapshot;
pub use state::{RestoreOutcome, TimeCacheState, Visibility};
pub use timestamp::{TimestampWidth, WrappingTime};
pub use transpose::TransposeArray;
