//! Randomized (but fully deterministic, seed-driven) tests for the
//! TimeCache hardware mechanism.
//!
//! These verify the gate-level comparator against the functional predicate,
//! the transpose array against a plain vector, and the central security
//! invariant of the state machine: *a context never observes `Visible` for a
//! line it has not itself paid a (first-access) miss for since the line's
//! most recent fill*.
//!
//! The workspace builds offline with no third-party crates (DESIGN.md §6),
//! so instead of `proptest` these drive the same invariants from an
//! in-file xorshift64* generator over a fixed set of seeds.

use timecache_core::{
    BitSerialComparator, SBitArray, TimeCacheConfig, TimeCacheState, TimestampWidth,
    TransposeArray, Visibility, WrappingTime,
};

/// Minimal xorshift64* PRNG (same algorithm as `timecache_workloads::rng`,
/// duplicated here because `timecache-core` sits below the workload crate).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The bit-serial circuit computes exactly `tc > ts` for every line.
#[test]
fn comparator_matches_functional_compare() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let width = (rng.below(64) + 1) as u8;
        let w = TimestampWidth::new(width);
        let len = (rng.below(299) + 1) as usize;
        let tcs: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let mut arr = TransposeArray::new(len, w);
        for (i, &v) in tcs.iter().enumerate() {
            arr.write_word(i, v);
        }
        let ts_raw = rng.next_u64();
        let ts = WrappingTime::from_cycle(ts_raw, w);
        let out = BitSerialComparator::compare(&mut arr, ts);
        for (i, &v) in tcs.iter().enumerate() {
            let expected = w.truncate(v) > ts.value();
            let got = out.reset_mask[i / 64] >> (i % 64) & 1 == 1;
            assert_eq!(got, expected, "seed {seed} line {i} tc {v} ts {ts_raw}");
        }
        assert_eq!(out.cycles, width as u64 + 1);
    }
}

/// The comparator never flags phantom lines beyond the array length.
#[test]
fn comparator_mask_has_no_phantom_bits() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(0x100 + seed);
        let len = (rng.below(199) + 1) as usize;
        let ts_raw = rng.next_u64();
        let w = TimestampWidth::new(16);
        let mut arr = TransposeArray::new(len, w);
        for i in 0..len {
            arr.write_word(i, u64::MAX); // everything maximally new
        }
        let out = BitSerialComparator::compare(&mut arr, WrappingTime::from_cycle(ts_raw, w));
        let expected = if w.truncate(u64::MAX) > w.truncate(ts_raw) {
            len
        } else {
            0
        };
        assert_eq!(out.reset_count(), expected, "seed {seed}");
    }
}

/// Transposed storage round-trips arbitrary word sequences.
#[test]
fn transpose_roundtrip() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(0x200 + seed);
        let width = (rng.below(64) + 1) as u8;
        let w = TimestampWidth::new(width);
        let len = (rng.below(199) + 1) as usize;
        let values: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let mut arr = TransposeArray::new(len, w);
        for (i, &v) in values.iter().enumerate() {
            arr.write_word(i, v);
        }
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(arr.read_word(i), w.truncate(v), "seed {seed} word {i}");
        }
    }
}

/// SBitArray behaves like a reference Vec<bool> under a random op
/// sequence (set / clear / reset-mask / clear_all).
#[test]
fn sbits_match_reference_model() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(0x300 + seed);
        let len = (rng.below(199) + 1) as usize;
        let mut s = SBitArray::new(len);
        let mut model = vec![false; len];
        let nops = rng.below(100) as usize;
        for _ in 0..nops {
            let op = rng.below(4) as u8;
            let idx = rng.below(len as u64) as usize;
            let maskseed = rng.next_u64();
            match op {
                0 => {
                    s.set(idx);
                    model[idx] = true;
                }
                1 => {
                    s.clear(idx);
                    model[idx] = false;
                }
                2 => {
                    s.clear_all();
                    model.fill(false);
                }
                _ => {
                    let words = len.div_ceil(64);
                    let mask: Vec<u64> = (0..words)
                        .map(|i| maskseed.rotate_left(i as u32 * 7))
                        .collect();
                    s.apply_reset_mask(&mask);
                    for (i, m) in model.iter_mut().enumerate() {
                        if mask[i / 64] >> (i % 64) & 1 == 1 {
                            *m = false;
                        }
                    }
                }
            }
        }
        for (i, &m) in model.iter().enumerate() {
            assert_eq!(s.get(i), m, "seed {seed} bit {i}");
        }
        assert_eq!(s.count_set(), model.iter().filter(|&&b| b).count());
    }
}

/// Random event trace over the full state machine, checked against a
/// reference model that tracks, per (line, context), whether the context has
/// accessed the line since its latest fill — including save/restore with an
/// oracle that knows true (unbounded) time.
#[derive(Debug, Clone)]
enum Ev {
    Fill { line: usize, ctx: usize },
    Evict { line: usize },
    Access { line: usize, ctx: usize },
    SwitchOut { ctx: usize, slot: usize },
    SwitchIn { ctx: usize, slot: usize },
}

fn random_event(rng: &mut Rng, lines: usize, ctxs: usize, slots: usize) -> Ev {
    let line = rng.below(lines as u64) as usize;
    let ctx = rng.below(ctxs as u64) as usize;
    let slot = rng.below(slots as u64) as usize;
    match rng.below(5) {
        0 => Ev::Fill { line, ctx },
        1 => Ev::Evict { line },
        2 => Ev::Access { line, ctx },
        3 => Ev::SwitchOut { ctx, slot },
        _ => Ev::SwitchIn { ctx, slot },
    }
}

#[test]
fn state_machine_never_leaks_residency() {
    const LINES: usize = 24;
    const CTXS: usize = 2;
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x400 + seed);
        let nevents = rng.below(200) as usize;
        // Wide counter: no rollover in this trace, so the hardware should
        // *exactly* match the oracle (with narrow counters the hardware is
        // allowed extra misses but never extra hits; covered below).
        let mut hw = TimeCacheState::new(LINES, CTXS, TimeCacheConfig::new(32));
        // Oracle: paid[line][ctx] = has the *currently mapped process* on ctx
        // accessed the line since its last fill?
        let mut paid = [[false; CTXS]; LINES];
        // Saved oracle state per snapshot slot, parallel to hardware snapshots.
        let mut hw_snaps: Vec<Option<timecache_core::Snapshot>> = vec![None; 3];
        let mut oracle_snaps: Vec<Option<([bool; LINES], u64)>> = vec![None; 3];
        // fill_time[line] in true time for the oracle.
        let mut fill_time = [0u64; LINES];
        let mut now = 1u64;

        for _ in 0..nevents {
            now += 1;
            match random_event(&mut rng, LINES, CTXS, 3) {
                Ev::Fill { line, ctx } => {
                    hw.on_fill(line, ctx, now);
                    fill_time[line] = now;
                    for (c, p) in paid[line].iter_mut().enumerate() {
                        *p = c == ctx;
                    }
                }
                Ev::Evict { line } => {
                    hw.on_evict(line);
                    paid[line].fill(false);
                }
                Ev::Access { line, ctx } => {
                    let vis = hw.visibility(line, ctx);
                    let expected = if paid[line][ctx] {
                        Visibility::Visible
                    } else {
                        Visibility::FirstAccess
                    };
                    assert_eq!(vis, expected, "seed {seed} line {line} ctx {ctx}");
                    if vis == Visibility::FirstAccess {
                        hw.record_first_access(line, ctx);
                        paid[line][ctx] = true;
                    }
                }
                Ev::SwitchOut { ctx, slot } => {
                    hw_snaps[slot] = Some(hw.save_context(ctx, now));
                    let mut bits = [false; LINES];
                    for (line, row) in paid.iter().enumerate() {
                        bits[line] = row[ctx];
                    }
                    oracle_snaps[slot] = Some((bits, now));
                    // A different process takes the context: fresh view.
                    hw.restore_context(ctx, None, now);
                    for row in paid.iter_mut() {
                        row[ctx] = false;
                    }
                }
                Ev::SwitchIn { ctx, slot } => {
                    let out = hw.restore_context(ctx, hw_snaps[slot].as_ref(), now);
                    assert!(!out.rollover, "32-bit counter cannot roll over here");
                    match &oracle_snaps[slot] {
                        Some((bits, ts)) => {
                            for line in 0..LINES {
                                // Valid iff paid at save time AND the line
                                // was not refilled after the save.
                                paid[line][ctx] = bits[line] && fill_time[line] <= *ts;
                            }
                        }
                        None => {
                            for row in paid.iter_mut() {
                                row[ctx] = false;
                            }
                        }
                    }
                }
            }
        }

        // Final visibility sweep must match the oracle everywhere.
        for (line, row) in paid.iter().enumerate() {
            for (ctx, &p) in row.iter().enumerate() {
                let expected = if p {
                    Visibility::Visible
                } else {
                    Visibility::FirstAccess
                };
                assert_eq!(hw.visibility(line, ctx), expected, "seed {seed}");
            }
        }
    }
}

/// With a *narrow* (rollover-prone) counter the hardware may take extra
/// first-access misses but must never be more permissive than the
/// oracle: Visible implies the oracle says paid.
#[test]
fn narrow_counters_only_err_towards_misses() {
    const LINES: usize = 16;
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x500 + seed);
        let nevents = rng.below(150) as usize;
        let step = rng.below(39) + 1; // large steps force 6-bit rollover
        let mut hw = TimeCacheState::new(LINES, 1, TimeCacheConfig::new(6));
        let mut paid = [false; LINES];
        let mut hw_snaps: Vec<Option<timecache_core::Snapshot>> = vec![None; 2];
        let mut oracle_snaps: Vec<Option<([bool; LINES], u64)>> = vec![None; 2];
        let mut fill_time = [0u64; LINES];
        let mut now = 1u64;

        for _ in 0..nevents {
            now += step;
            match random_event(&mut rng, LINES, 1, 2) {
                Ev::Fill { line, .. } => {
                    hw.on_fill(line, 0, now);
                    fill_time[line] = now;
                    paid[line] = true;
                }
                Ev::Evict { line } => {
                    hw.on_evict(line);
                    paid[line] = false;
                }
                Ev::Access { line, .. } => {
                    if hw.visibility(line, 0) == Visibility::Visible {
                        assert!(paid[line], "seed {seed}: stale hit on line {line}");
                    } else {
                        hw.record_first_access(line, 0);
                        paid[line] = true;
                    }
                }
                Ev::SwitchOut { slot, .. } => {
                    hw_snaps[slot] = Some(hw.save_context(0, now));
                    let mut bits = [false; LINES];
                    bits.copy_from_slice(&paid);
                    oracle_snaps[slot] = Some((bits, now));
                    hw.restore_context(0, None, now);
                    paid.fill(false);
                }
                Ev::SwitchIn { slot, .. } => {
                    hw.restore_context(0, hw_snaps[slot].as_ref(), now);
                    match &oracle_snaps[slot] {
                        Some((bits, ts)) => {
                            for line in 0..LINES {
                                paid[line] = bits[line] && fill_time[line] <= *ts;
                            }
                        }
                        None => paid.fill(false),
                    }
                }
            }
        }

        for (line, &p) in paid.iter().enumerate() {
            if hw.visibility(line, 0) == Visibility::Visible {
                assert!(p, "seed {seed}: stale hit on line {line} at end");
            }
        }
    }
}
