//! Property-based tests for the TimeCache hardware mechanism.
//!
//! These verify the gate-level comparator against the functional predicate,
//! the transpose array against a plain vector, and the central security
//! invariant of the state machine: *a context never observes `Visible` for a
//! line it has not itself paid a (first-access) miss for since the line's
//! most recent fill*.

use proptest::prelude::*;
use timecache_core::{
    BitSerialComparator, SBitArray, TimeCacheConfig, TimeCacheState, TimestampWidth,
    TransposeArray, Visibility, WrappingTime,
};

proptest! {
    /// The bit-serial circuit computes exactly `tc > ts` for every line.
    #[test]
    fn comparator_matches_functional_compare(
        width in 1u8..=64,
        ts_raw in any::<u64>(),
        tcs in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let w = TimestampWidth::new(width);
        let mut arr = TransposeArray::new(tcs.len(), w);
        for (i, &v) in tcs.iter().enumerate() {
            arr.write_word(i, v);
        }
        let ts = WrappingTime::from_cycle(ts_raw, w);
        let out = BitSerialComparator::compare(&arr, ts);
        for (i, &v) in tcs.iter().enumerate() {
            let expected = w.truncate(v) > ts.value();
            let got = out.reset_mask[i / 64] >> (i % 64) & 1 == 1;
            prop_assert_eq!(got, expected, "line {} tc {} ts {}", i, v, ts_raw);
        }
        prop_assert_eq!(out.cycles, width as u64 + 1);
    }

    /// The comparator never flags phantom lines beyond the array length.
    #[test]
    fn comparator_mask_has_no_phantom_bits(
        len in 1usize..200,
        ts_raw in any::<u64>(),
    ) {
        let w = TimestampWidth::new(16);
        let mut arr = TransposeArray::new(len, w);
        for i in 0..len {
            arr.write_word(i, u64::MAX); // everything maximally new
        }
        let out = BitSerialComparator::compare(&arr, WrappingTime::from_cycle(ts_raw, w));
        let expected = if w.truncate(u64::MAX) > w.truncate(ts_raw) { len } else { 0 };
        prop_assert_eq!(out.reset_count(), expected);
    }

    /// Transposed storage round-trips arbitrary word sequences.
    #[test]
    fn transpose_roundtrip(
        width in 1u8..=64,
        values in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let w = TimestampWidth::new(width);
        let mut arr = TransposeArray::new(values.len(), w);
        for (i, &v) in values.iter().enumerate() {
            arr.write_word(i, v);
        }
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(arr.read_word(i), w.truncate(v));
        }
    }

    /// SBitArray behaves like a reference Vec<bool> under a random op
    /// sequence (set / clear / reset-mask / clear_all).
    #[test]
    fn sbits_match_reference_model(
        len in 1usize..200,
        ops in prop::collection::vec((0u8..4, any::<usize>(), any::<u64>()), 0..100),
    ) {
        let mut s = SBitArray::new(len);
        let mut model = vec![false; len];
        for (op, idx, maskseed) in ops {
            let idx = idx % len;
            match op {
                0 => { s.set(idx); model[idx] = true; }
                1 => { s.clear(idx); model[idx] = false; }
                2 => { s.clear_all(); model.fill(false); }
                _ => {
                    let words = len.div_ceil(64);
                    let mask: Vec<u64> = (0..words)
                        .map(|i| maskseed.rotate_left(i as u32 * 7))
                        .collect();
                    s.apply_reset_mask(&mask);
                    for (i, m) in model.iter_mut().enumerate() {
                        if mask[i / 64] >> (i % 64) & 1 == 1 {
                            *m = false;
                        }
                    }
                }
            }
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(s.get(i), m, "bit {}", i);
        }
        prop_assert_eq!(s.count_set(), model.iter().filter(|&&b| b).count());
    }
}

/// Random event trace over the full state machine, checked against a
/// reference model that tracks, per (line, context), whether the context has
/// accessed the line since its latest fill — including save/restore with an
/// oracle that knows true (unbounded) time.
#[derive(Debug, Clone)]
enum Ev {
    Fill { line: usize, ctx: usize },
    Evict { line: usize },
    Access { line: usize, ctx: usize },
    SwitchOut { ctx: usize, slot: usize },
    SwitchIn { ctx: usize, slot: usize },
}

fn ev_strategy(lines: usize, ctxs: usize, slots: usize) -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0..lines, 0..ctxs).prop_map(|(line, ctx)| Ev::Fill { line, ctx }),
        (0..lines).prop_map(|line| Ev::Evict { line }),
        (0..lines, 0..ctxs).prop_map(|(line, ctx)| Ev::Access { line, ctx }),
        (0..ctxs, 0..slots).prop_map(|(ctx, slot)| Ev::SwitchOut { ctx, slot }),
        (0..ctxs, 0..slots).prop_map(|(ctx, slot)| Ev::SwitchIn { ctx, slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn state_machine_never_leaks_residency(
        events in prop::collection::vec(ev_strategy(24, 2, 3), 0..200),
    ) {
        const LINES: usize = 24;
        const CTXS: usize = 2;
        // Wide counter: no rollover in this trace, so the hardware should
        // *exactly* match the oracle (with narrow counters the hardware is
        // allowed extra misses but never extra hits; covered below).
        let mut hw = TimeCacheState::new(LINES, CTXS, TimeCacheConfig::new(32));
        // Oracle: paid[line][ctx] = has the *currently mapped process* on ctx
        // accessed the line since its last fill?
        let mut paid = [[false; CTXS]; LINES];
        // Saved oracle state per snapshot slot, parallel to hardware snapshots.
        let mut hw_snaps: Vec<Option<timecache_core::Snapshot>> = vec![None; 3];
        let mut oracle_snaps: Vec<Option<([bool; LINES], u64)>> = vec![None; 3];
        // fill_time[line] in true time for the oracle.
        let mut fill_time = [0u64; LINES];
        let mut now = 1u64;

        for ev in events {
            now += 1;
            match ev {
                Ev::Fill { line, ctx } => {
                    hw.on_fill(line, ctx, now);
                    fill_time[line] = now;
                    for c in 0..CTXS {
                        paid[line][c] = c == ctx;
                    }
                }
                Ev::Evict { line } => {
                    hw.on_evict(line);
                    for c in 0..CTXS {
                        paid[line][c] = false;
                    }
                }
                Ev::Access { line, ctx } => {
                    let vis = hw.visibility(line, ctx);
                    let expected = if paid[line][ctx] {
                        Visibility::Visible
                    } else {
                        Visibility::FirstAccess
                    };
                    prop_assert_eq!(vis, expected, "line {} ctx {}", line, ctx);
                    if vis == Visibility::FirstAccess {
                        hw.record_first_access(line, ctx);
                        paid[line][ctx] = true;
                    }
                }
                Ev::SwitchOut { ctx, slot } => {
                    hw_snaps[slot] = Some(hw.save_context(ctx, now));
                    let mut bits = [false; LINES];
                    for (line, row) in paid.iter().enumerate() {
                        bits[line] = row[ctx];
                    }
                    oracle_snaps[slot] = Some((bits, now));
                    // A different process takes the context: fresh view.
                    hw.restore_context(ctx, None, now);
                    for row in paid.iter_mut() {
                        row[ctx] = false;
                    }
                }
                Ev::SwitchIn { ctx, slot } => {
                    let out = hw.restore_context(ctx, hw_snaps[slot].as_ref(), now);
                    prop_assert!(!out.rollover, "32-bit counter cannot roll over here");
                    match &oracle_snaps[slot] {
                        Some((bits, ts)) => {
                            for line in 0..LINES {
                                // Valid iff paid at save time AND the line
                                // was not refilled after the save.
                                paid[line][ctx] = bits[line] && fill_time[line] <= *ts;
                            }
                        }
                        None => {
                            for row in paid.iter_mut() {
                                row[ctx] = false;
                            }
                        }
                    }
                }
            }
        }

        // Final visibility sweep must match the oracle everywhere.
        for line in 0..LINES {
            for ctx in 0..CTXS {
                let expected = if paid[line][ctx] {
                    Visibility::Visible
                } else {
                    Visibility::FirstAccess
                };
                prop_assert_eq!(hw.visibility(line, ctx), expected);
            }
        }
    }

    /// With a *narrow* (rollover-prone) counter the hardware may take extra
    /// first-access misses but must never be more permissive than the
    /// oracle: Visible implies the oracle says paid.
    #[test]
    fn narrow_counters_only_err_towards_misses(
        events in prop::collection::vec(ev_strategy(16, 1, 2), 0..150),
        step in 1u64..40,
    ) {
        const LINES: usize = 16;
        let mut hw = TimeCacheState::new(LINES, 1, TimeCacheConfig::new(6));
        let mut paid = [false; LINES];
        let mut hw_snaps: Vec<Option<timecache_core::Snapshot>> = vec![None; 2];
        let mut oracle_snaps: Vec<Option<([bool; LINES], u64)>> = vec![None; 2];
        let mut fill_time = [0u64; LINES];
        let mut now = 1u64;

        for ev in events {
            now += step; // large steps force frequent rollover of 6-bit counter
            match ev {
                Ev::Fill { line, .. } => {
                    hw.on_fill(line, 0, now);
                    fill_time[line] = now;
                    paid[line] = true;
                }
                Ev::Evict { line } => {
                    hw.on_evict(line);
                    paid[line] = false;
                }
                Ev::Access { line, .. } => {
                    if hw.visibility(line, 0) == Visibility::Visible {
                        prop_assert!(paid[line], "stale hit on line {}", line);
                    } else {
                        hw.record_first_access(line, 0);
                        paid[line] = true;
                    }
                }
                Ev::SwitchOut { slot, .. } => {
                    hw_snaps[slot] = Some(hw.save_context(0, now));
                    let mut bits = [false; LINES];
                    bits.copy_from_slice(&paid);
                    oracle_snaps[slot] = Some((bits, now));
                    hw.restore_context(0, None, now);
                    paid.fill(false);
                }
                Ev::SwitchIn { slot, .. } => {
                    hw.restore_context(0, hw_snaps[slot].as_ref(), now);
                    match &oracle_snaps[slot] {
                        Some((bits, ts)) => {
                            for line in 0..LINES {
                                paid[line] = bits[line] && fill_time[line] <= *ts;
                            }
                        }
                        None => paid.fill(false),
                    }
                }
            }
        }

        for line in 0..LINES {
            if hw.visibility(line, 0) == Visibility::Visible {
                prop_assert!(paid[line], "stale hit on line {} at end", line);
            }
        }
    }
}
