//! Safety property of the limited-pointer representation: under any event
//! sequence, a context that the limited tracker shows as *visible* is also
//! visible under the full s-bit map — pointer overflow only ever revokes
//! visibility (extra misses), never grants it (stale hits).

use proptest::prelude::*;
use timecache_core::{LimitedPointers, SBitArray};

#[derive(Debug, Clone)]
enum Ev {
    Fill { line: usize, ctx: usize },
    FirstAccess { line: usize, ctx: usize },
    Evict { line: usize },
    ResetCtx { ctx: usize },
}

fn ev(lines: usize, ctxs: usize) -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0..lines, 0..ctxs).prop_map(|(line, ctx)| Ev::Fill { line, ctx }),
        (0..lines, 0..ctxs).prop_map(|(line, ctx)| Ev::FirstAccess { line, ctx }),
        (0..lines).prop_map(|line| Ev::Evict { line }),
        (0..ctxs).prop_map(|ctx| Ev::ResetCtx { ctx }),
    ]
}

proptest! {
    #[test]
    fn limited_is_never_more_permissive(
        k in 1usize..4,
        events in prop::collection::vec(ev(16, 6), 0..300),
    ) {
        const LINES: usize = 16;
        const CTXS: usize = 6;
        let mut limited = LimitedPointers::new(LINES, CTXS, k);
        let mut full: Vec<SBitArray> = (0..CTXS).map(|_| SBitArray::new(LINES)).collect();

        for e in events {
            match e {
                Ev::Fill { line, ctx } => {
                    limited.set_exclusive(line, ctx);
                    for (c, bits) in full.iter_mut().enumerate() {
                        if c == ctx {
                            bits.set(line);
                        } else {
                            bits.clear(line);
                        }
                    }
                }
                Ev::FirstAccess { line, ctx } => {
                    limited.grant(line, ctx);
                    full[ctx].set(line);
                }
                Ev::Evict { line } => {
                    limited.clear_line(line);
                    for bits in &mut full {
                        bits.clear(line);
                    }
                }
                Ev::ResetCtx { ctx } => {
                    limited.clear_ctx(ctx);
                    full[ctx].clear_all();
                }
            }
            // Invariant: limited-visible ⇒ full-visible.
            for line in 0..LINES {
                for ctx in 0..CTXS {
                    if limited.has(line, ctx) {
                        prop_assert!(
                            full[ctx].get(line),
                            "line {} ctx {} visible in limited but not full",
                            line,
                            ctx
                        );
                    }
                }
            }
        }
    }

    /// With k == num_contexts the representations are exactly equivalent
    /// (enough slots for every context: nothing is ever revoked).
    #[test]
    fn full_k_is_exact(
        events in prop::collection::vec(ev(12, 3), 0..200),
    ) {
        const LINES: usize = 12;
        const CTXS: usize = 3;
        let mut limited = LimitedPointers::new(LINES, CTXS, CTXS);
        let mut full: Vec<SBitArray> = (0..CTXS).map(|_| SBitArray::new(LINES)).collect();

        for e in events {
            match e {
                Ev::Fill { line, ctx } => {
                    limited.set_exclusive(line, ctx);
                    for (c, bits) in full.iter_mut().enumerate() {
                        if c == ctx { bits.set(line); } else { bits.clear(line); }
                    }
                }
                Ev::FirstAccess { line, ctx } => {
                    limited.grant(line, ctx);
                    full[ctx].set(line);
                }
                Ev::Evict { line } => {
                    limited.clear_line(line);
                    for bits in &mut full { bits.clear(line); }
                }
                Ev::ResetCtx { ctx } => {
                    limited.clear_ctx(ctx);
                    full[ctx].clear_all();
                }
            }
        }
        for line in 0..LINES {
            for ctx in 0..CTXS {
                prop_assert_eq!(limited.has(line, ctx), full[ctx].get(line));
            }
        }
    }

    /// Snapshot extraction/load round-trips through the packed bit form.
    #[test]
    fn extract_load_roundtrip(
        grants in prop::collection::vec((0usize..16, 0usize..4), 0..64),
    ) {
        let mut a = LimitedPointers::new(16, 4, 2);
        for (line, ctx) in grants {
            a.grant(line, ctx);
        }
        for ctx in 0..4 {
            let bits = a.extract_bits(ctx);
            let mut b = LimitedPointers::new(16, 4, 2);
            b.load_bits(ctx, &bits);
            for line in 0..16 {
                prop_assert_eq!(b.has(line, ctx), a.has(line, ctx));
            }
        }
    }
}
