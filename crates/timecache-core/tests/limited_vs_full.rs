//! Safety property of the limited-pointer representation: under any event
//! sequence, a context that the limited tracker shows as *visible* is also
//! visible under the full s-bit map — pointer overflow only ever revokes
//! visibility (extra misses), never grants it (stale hits).
//!
//! Deterministic seed-driven randomization (no third-party crates; see
//! DESIGN.md §6).

use timecache_core::{LimitedPointers, SBitArray};

/// Minimal xorshift64* PRNG (duplicated from `timecache_workloads::rng`
/// because `timecache-core` sits below the workload crate).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[derive(Debug, Clone)]
enum Ev {
    Fill { line: usize, ctx: usize },
    FirstAccess { line: usize, ctx: usize },
    Evict { line: usize },
    ResetCtx { ctx: usize },
}

fn random_event(rng: &mut Rng, lines: usize, ctxs: usize) -> Ev {
    let line = rng.below(lines as u64) as usize;
    let ctx = rng.below(ctxs as u64) as usize;
    match rng.below(4) {
        0 => Ev::Fill { line, ctx },
        1 => Ev::FirstAccess { line, ctx },
        2 => Ev::Evict { line },
        _ => Ev::ResetCtx { ctx },
    }
}

fn apply(e: &Ev, limited: &mut LimitedPointers, full: &mut [SBitArray]) {
    match *e {
        Ev::Fill { line, ctx } => {
            limited.set_exclusive(line, ctx);
            for (c, bits) in full.iter_mut().enumerate() {
                if c == ctx {
                    bits.set(line);
                } else {
                    bits.clear(line);
                }
            }
        }
        Ev::FirstAccess { line, ctx } => {
            limited.grant(line, ctx);
            full[ctx].set(line);
        }
        Ev::Evict { line } => {
            limited.clear_line(line);
            for bits in full.iter_mut() {
                bits.clear(line);
            }
        }
        Ev::ResetCtx { ctx } => {
            limited.clear_ctx(ctx);
            full[ctx].clear_all();
        }
    }
}

#[test]
fn limited_is_never_more_permissive() {
    const LINES: usize = 16;
    const CTXS: usize = 6;
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let k = (rng.below(3) + 1) as usize;
        let nevents = rng.below(300) as usize;
        let mut limited = LimitedPointers::new(LINES, CTXS, k);
        let mut full: Vec<SBitArray> = (0..CTXS).map(|_| SBitArray::new(LINES)).collect();

        for _ in 0..nevents {
            let e = random_event(&mut rng, LINES, CTXS);
            apply(&e, &mut limited, &mut full);
            // Invariant: limited-visible ⇒ full-visible.
            for line in 0..LINES {
                for (ctx, full_ctx) in full.iter().enumerate() {
                    if limited.has(line, ctx) {
                        assert!(
                            full_ctx.get(line),
                            "seed {seed} k {k}: line {line} ctx {ctx} visible in \
                             limited but not full"
                        );
                    }
                }
            }
        }
    }
}

/// With k == num_contexts the representations are exactly equivalent
/// (enough slots for every context: nothing is ever revoked).
#[test]
fn full_k_is_exact() {
    const LINES: usize = 12;
    const CTXS: usize = 3;
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x100 + seed);
        let nevents = rng.below(200) as usize;
        let mut limited = LimitedPointers::new(LINES, CTXS, CTXS);
        let mut full: Vec<SBitArray> = (0..CTXS).map(|_| SBitArray::new(LINES)).collect();

        for _ in 0..nevents {
            let e = random_event(&mut rng, LINES, CTXS);
            apply(&e, &mut limited, &mut full);
        }
        for line in 0..LINES {
            for (ctx, full_ctx) in full.iter().enumerate() {
                assert_eq!(limited.has(line, ctx), full_ctx.get(line), "seed {seed}");
            }
        }
    }
}

/// Snapshot extraction/load round-trips through the packed bit form.
#[test]
fn extract_load_roundtrip() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(0x200 + seed);
        let mut a = LimitedPointers::new(16, 4, 2);
        let ngrants = rng.below(64) as usize;
        for _ in 0..ngrants {
            let line = rng.below(16) as usize;
            let ctx = rng.below(4) as usize;
            a.grant(line, ctx);
        }
        for ctx in 0..4 {
            let bits = a.extract_bits(ctx);
            let mut b = LimitedPointers::new(16, 4, 2);
            b.load_bits(ctx, &bits);
            for line in 0..16 {
                assert_eq!(b.has(line, ctx), a.has(line, ctx), "seed {seed} ctx {ctx}");
            }
        }
    }
}
