//! The full-system runner: cores, scheduler, and the hierarchy.

use crate::error::OsError;
use crate::invariant::InvariantChecker;
use crate::metrics::{ProcessMetrics, RunReport};
use crate::process::{Pid, Process};
use crate::program::{DataKind, Observation, Op, Program};
use crate::switch::SwitchCostModel;
use std::collections::VecDeque;
use timecache_core::{FaultInjector, FaultKind, FaultPlan, TriggerPoint};
use timecache_sim::{AccessKind, AccessOutcome, ConfigError, Hierarchy, HierarchyConfig, Level};
use timecache_telemetry::{Counter, Phase, Scope, ServedBy, Telemetry, TraceEvent};

/// System-level configuration: the hierarchy plus scheduling parameters.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Cache hierarchy configuration (cores, sizes, security mode).
    pub hierarchy: HierarchyConfig,
    /// Scheduler time slice in cycles. The default, 2 M cycles, is 1 ms at
    /// the paper's 2 GHz — the low end of typical Linux time slices.
    pub quantum_cycles: u64,
    /// Context-switch cost model.
    pub switch_cost: SwitchCostModel,
    /// Ablation knob: when set, the scheduler never saves or restores
    /// s-bit snapshots — every switch resets the caching context, which is
    /// behaviourally equivalent to flushing visibility on context switches
    /// (the expensive design Section V-B argues against).
    pub discard_snapshots: bool,
    /// Observability handle. Disabled by default; when enabled, the system
    /// attaches it to the hierarchy, streams scheduler events (snapshot
    /// saves, restores with the charged DMA cost, rollover resets) into
    /// its tracer, and attributes every simulated cycle to a phase
    /// (compute / memory stall / switch cost) per process and context.
    pub telemetry: Telemetry,
    /// Robustness testing: when set, a seed-driven [`FaultInjector`] built
    /// from this plan is attached to the hierarchy (snapshot drop/corrupt,
    /// rollover force/defer, comparator glitches) and to the scheduler's
    /// save path (mid-save aborts). `None` — the default — injects nothing
    /// and costs one branch per trigger site.
    pub fault_plan: Option<FaultPlan>,
    /// When true, every memory access is fed through the
    /// [`InvariantChecker`]: a process observing a hit-latency access to a
    /// line it has not itself paid a first-access miss for (since the
    /// line's current fill generation) is recorded as a violation. Off by
    /// default; entirely outside the simulated timing path.
    pub check_invariants: bool,
    /// How many times an injected mid-save abort ([`FaultKind::AbortSave`])
    /// is retried before the save is abandoned. An abandoned save leaves
    /// the process without a snapshot, so its next restore degrades to a
    /// conservative full s-bit reset — safe, merely slower.
    pub save_retry_limit: u32,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            hierarchy: HierarchyConfig::default(),
            quantum_cycles: 2_000_000,
            switch_cost: SwitchCostModel::default(),
            discard_snapshots: false,
            telemetry: Telemetry::disabled(),
            fault_plan: None,
            check_invariants: false,
            save_retry_limit: 3,
        }
    }
}

/// Pre-resolved scheduler metric handles (only allocated when telemetry is
/// enabled, so the scheduler loop stays allocation- and lookup-free).
#[derive(Debug, Clone)]
struct OsSensors {
    tel: Telemetry,
    /// `os_context_switches_total`.
    switches: Counter,
    /// `os_switch_cycles_total{kind=}` — total vs TimeCache-specific share.
    switch_cycles: Counter,
    tc_switch_cycles: Counter,
    /// `os_snapshot_saves_total`.
    saves: Counter,
    /// `os_quanta_expired_total` / `os_yields_total`.
    quanta_expired: Counter,
    yields: Counter,
    /// `os_instructions_total`.
    instructions: Counter,
    /// `fault_injected_total{kind=}`, indexed by [`FaultKind::index`].
    faults: [Counter; 6],
    /// `fault_detected_total`.
    faults_detected: Counter,
    /// `invariant_violations_total`.
    invariant_violations: Counter,
    /// `os_save_retries_total` / `os_save_aborts_total`.
    save_retries: Counter,
    save_aborts: Counter,
}

impl OsSensors {
    fn create(tel: &Telemetry) -> Option<Box<OsSensors>> {
        let reg = tel.registry()?;
        Some(Box::new(OsSensors {
            tel: tel.clone(),
            switches: reg.counter(
                "os_context_switches_total",
                "Context switches performed (CR3 changes, boot excluded).",
                &[],
            ),
            switch_cycles: reg.counter(
                "os_switch_cycles_total",
                "Cycles charged for context switches.",
                &[("kind", "total")],
            ),
            tc_switch_cycles: reg.counter(
                "os_switch_cycles_total",
                "Cycles charged for context switches.",
                &[("kind", "timecache")],
            ),
            saves: reg.counter(
                "os_snapshot_saves_total",
                "s-bit snapshots saved at preemption.",
                &[],
            ),
            quanta_expired: reg.counter(
                "os_quanta_expired_total",
                "Preemptions caused by quantum expiry.",
                &[],
            ),
            yields: reg.counter("os_yields_total", "Voluntary yields executed.", &[]),
            instructions: reg.counter(
                "os_instructions_total",
                "Instructions retired across all processes.",
                &[],
            ),
            faults: FaultKind::ALL.map(|k| {
                reg.counter(
                    "fault_injected_total",
                    "Faults injected by the configured fault plan.",
                    &[("kind", k.as_str())],
                )
            }),
            faults_detected: reg.counter(
                "fault_detected_total",
                "Injected faults the defense detected and neutralised.",
                &[],
            ),
            invariant_violations: reg.counter(
                "invariant_violations_total",
                "Observed breaches of the first-access security invariant.",
                &[],
            ),
            save_retries: reg.counter(
                "os_save_retries_total",
                "Snapshot saves retried after an injected mid-save abort.",
                &[],
            ),
            save_aborts: reg.counter(
                "os_save_aborts_total",
                "Snapshot saves abandoned after exhausting the retry budget.",
                &[],
            ),
        }))
    }
}

/// Per-hardware-context scheduler state.
#[derive(Debug)]
struct ContextState {
    core: usize,
    thread: usize,
    /// Local cycle clock of this context.
    clock: u64,
    /// Runnable processes (indices into `System::processes`).
    queue: VecDeque<usize>,
    /// Currently dispatched process.
    current: Option<usize>,
    /// Cycles left in the current quantum.
    quantum_left: u64,
    /// Whether any process has ever been dispatched here (the first
    /// dispatch is free: the machine is booting, not switching).
    ever_dispatched: bool,
    /// The process that most recently occupied this context. Re-dispatching
    /// the same process with no intervening occupant is not a context
    /// switch (the paper's trigger is a CR3 *change*): the hardware s-bits
    /// are already this process's own and stay untouched.
    last_process: Option<usize>,
}

/// A simulated machine: a [`Hierarchy`], a set of processes, and a
/// round-robin scheduler per hardware context.
///
/// Multi-context execution is interleaved causally: the context with the
/// smallest local clock always executes next, so cross-context interactions
/// (shared lines, coherence) happen in global time order.
pub struct System {
    cfg: SystemConfig,
    hier: Hierarchy,
    processes: Vec<Process>,
    /// Hardware-context index each process is pinned to, parallel to
    /// `processes`.
    affinity: Vec<usize>,
    contexts: Vec<ContextState>,
    switches: u64,
    switch_cycles: u64,
    tc_switch_cycles: u64,
    sensors: Option<Box<OsSensors>>,
    /// Shared with the hierarchy; disabled (one branch per site) unless a
    /// [`SystemConfig::fault_plan`] was supplied.
    faults: FaultInjector,
    /// Allocated only when [`SystemConfig::check_invariants`] is set.
    invariants: Option<Box<InvariantChecker>>,
    /// `log2(line size)`, for mapping byte addresses to checker lines.
    line_shift: u32,
    /// Detections already mirrored into `fault_detected_total`.
    detected_reported: u64,
}

impl System {
    /// Builds a system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the hierarchy configuration is invalid.
    pub fn new(cfg: SystemConfig) -> Result<Self, ConfigError> {
        let mut hier = Hierarchy::new(cfg.hierarchy.clone())?;
        hier.attach_telemetry(&cfg.telemetry);
        let faults = match cfg.fault_plan {
            Some(plan) => FaultInjector::new(plan),
            None => FaultInjector::disabled(),
        };
        hier.attach_faults(&faults);
        let invariants = cfg.check_invariants.then(Box::<InvariantChecker>::default);
        let line_shift = hier.line_size().trailing_zeros();
        let sensors = OsSensors::create(&cfg.telemetry);
        let contexts = (0..cfg.hierarchy.cores)
            .flat_map(|core| {
                (0..cfg.hierarchy.smt_per_core).map(move |thread| ContextState {
                    core,
                    thread,
                    clock: 0,
                    queue: VecDeque::new(),
                    current: None,
                    quantum_left: 0,
                    ever_dispatched: false,
                    last_process: None,
                })
            })
            .collect();
        Ok(System {
            cfg,
            hier,
            processes: Vec::new(),
            affinity: Vec::new(),
            contexts,
            switches: 0,
            switch_cycles: 0,
            tc_switch_cycles: 0,
            sensors,
            faults,
            invariants,
            line_shift,
            detected_reported: 0,
        })
    }

    /// Spawns `program` pinned to hardware context `(core, thread)`,
    /// optionally capped at `target_instructions`. Returns the new pid.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NoSuchContext`] if `(core, thread)` does not
    /// exist on the simulated machine.
    pub fn try_spawn(
        &mut self,
        program: Box<dyn Program>,
        core: usize,
        thread: usize,
        target_instructions: Option<u64>,
    ) -> Result<Pid, OsError> {
        let ctx = self
            .context_index(core, thread)
            .ok_or(OsError::NoSuchContext { core, thread })?;
        let pid = Pid(self.processes.len() as u32);
        self.processes
            .push(Process::new(pid, program, target_instructions));
        self.affinity.push(ctx);
        let idx = self.processes.len() - 1;
        self.contexts[ctx].queue.push_back(idx);
        Ok(pid)
    }

    /// [`System::try_spawn`], for callers that treat a bad placement as a
    /// programming error.
    ///
    /// # Panics
    ///
    /// Panics if `(core, thread)` does not exist.
    pub fn spawn(
        &mut self,
        program: Box<dyn Program>,
        core: usize,
        thread: usize,
        target_instructions: Option<u64>,
    ) -> Pid {
        self.try_spawn(program, core, thread, target_instructions)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The simulated hierarchy (for inspection).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The telemetry handle the system reports through (disabled unless one
    /// was supplied via [`SystemConfig::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.cfg.telemetry
    }

    /// Clears cache statistics (e.g. after a warm-up run).
    pub fn reset_stats(&mut self) {
        self.hier.reset_stats();
    }

    /// Faults injected so far by the configured [`SystemConfig::fault_plan`]
    /// (0 when no plan is set).
    pub fn fault_injections(&self) -> u64 {
        self.faults.injected()
    }

    /// Injected faults the defense detected and neutralised (snapshot
    /// checksum mismatches, comparator-redundancy disagreements, software
    /// rollover cross-checks).
    pub fn fault_detections(&self) -> u64 {
        self.faults.detected()
    }

    /// Total security-invariant violations observed (0 when
    /// [`SystemConfig::check_invariants`] is off).
    pub fn invariant_violations(&self) -> u64 {
        self.invariants.as_ref().map_or(0, |i| i.total_violations())
    }

    /// The invariant checker, when enabled — for inspecting retained
    /// [`crate::invariant::Violation`] details.
    pub fn invariants(&self) -> Option<&InvariantChecker> {
        self.invariants.as_deref()
    }

    /// The largest context clock so far (total simulated cycles).
    ///
    /// Returns 0 on a freshly built system — no instruction has advanced
    /// any context clock yet. The `unwrap_or(0)` also covers the
    /// degenerate zero-context machine, which [`Hierarchy::new`] rejects
    /// (`cores` must be nonzero), so in practice `max()` always sees at
    /// least one clock; 0 therefore always means "nothing has run".
    pub fn total_cycles(&self) -> u64 {
        self.contexts.iter().map(|c| c.clock).max().unwrap_or(0)
    }

    /// Extends a completed (or running) process's instruction target by
    /// `extra` instructions and re-queues it if it had finished, enabling
    /// warm-up/measure phased runs:
    ///
    /// ```
    /// use timecache_os::{System, SystemConfig, programs::Spin};
    ///
    /// let mut sys = System::new(SystemConfig::default()).expect("valid");
    /// let pid = sys.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(1_000));
    /// sys.run(u64::MAX);                  // warm-up phase
    /// let warm = sys.total_cycles();
    /// sys.reset_stats();
    /// sys.extend_target(pid, 4_000);
    /// let report = sys.run(u64::MAX);     // measurement phase
    /// assert!(report.total_cycles > warm);
    /// assert_eq!(report.process(pid).unwrap().instructions, 5_000);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not exist, the process has no instruction
    /// target, or its program already returned `Done`. See
    /// [`System::try_extend_target`] for the non-panicking form.
    pub fn extend_target(&mut self, pid: Pid, extra: u64) {
        self.try_extend_target(pid, extra)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`System::extend_target`] that reports failure instead of
    /// panicking, so harnesses can surface a bad phased-run setup as a
    /// failed job rather than a dead worker.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] if `pid` was never spawned,
    /// [`OsError::NoInstructionTarget`] if it was spawned uncapped, and
    /// [`OsError::ProgramFinished`] if its program already returned `Done`
    /// on its own (there is nothing left to run).
    pub fn try_extend_target(&mut self, pid: Pid, extra: u64) -> Result<(), OsError> {
        let pi = self
            .processes
            .iter()
            .position(|p| p.pid() == pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        let p = &mut self.processes[pi];
        let target = p
            .target_instructions
            .ok_or(OsError::NoInstructionTarget(pid))?;
        if !(p.completed || p.instructions < target) {
            return Err(OsError::ProgramFinished(pid));
        }
        p.target_instructions = Some(target + extra);
        if p.completed {
            p.completed = false;
            p.completion_cycle = None;
            // Re-queue on the context that hosted it (processes are pinned).
            let ctx = self
                .contexts
                .iter()
                .position(|c| c.queue.contains(&pi) || c.current == Some(pi))
                .unwrap_or_else(|| {
                    // Not queued anywhere: find its original context by
                    // searching for the context with matching affinity. The
                    // spawn pinned it; completed processes leave no trace,
                    // so remember affinity per process instead.
                    self.affinity[pi]
                });
            self.contexts[ctx].queue.push_back(pi);
        }
        Ok(())
    }

    /// Runs until every process completes or the global clock passes
    /// `max_cycles` (a safety valve for non-terminating programs; those are
    /// reported with `completed == false`).
    pub fn run(&mut self, max_cycles: u64) -> RunReport {
        while let Some(ctx) = self.next_runnable_context(max_cycles) {
            if self.contexts[ctx].current.is_none() {
                self.dispatch(ctx);
                continue;
            }
            self.step(ctx);
        }
        self.report()
    }

    // ------------------------------------------------------------------

    fn context_index(&self, core: usize, thread: usize) -> Option<usize> {
        self.contexts
            .iter()
            .position(|c| c.core == core && c.thread == thread)
    }

    /// The context with the smallest clock that still has work to do.
    fn next_runnable_context(&self, max_cycles: u64) -> Option<usize> {
        self.contexts
            .iter()
            .enumerate()
            .filter(|(_, c)| (c.current.is_some() || !c.queue.is_empty()) && c.clock < max_cycles)
            .min_by_key(|(_, c)| c.clock)
            .map(|(i, _)| i)
    }

    /// Brings the next queued process onto the context, restoring its
    /// caching context and charging the switch cost (except at boot).
    fn dispatch(&mut self, ctx: usize) {
        let Some(next) = self.contexts[ctx].queue.pop_front() else {
            return;
        };
        let (core, thread) = (self.contexts[ctx].core, self.contexts[ctx].thread);
        let now = self.contexts[ctx].clock;

        // No CR3 change, no switch: the same process resuming on the same
        // context keeps its live hardware s-bits (this happens when a
        // single-process context renews across phased runs).
        if self.contexts[ctx].last_process != Some(next) {
            let snapshot = if self.processes[next].has_run && !self.cfg.discard_snapshots {
                self.processes[next].snapshot.clone()
            } else {
                None
            };
            let cost = self
                .hier
                .restore_context(core, thread, snapshot.as_ref(), now);

            if self.contexts[ctx].ever_dispatched {
                let cycles = self.cfg.switch_cost.cycles(&cost);
                self.contexts[ctx].clock += cycles;
                self.switches += 1;
                self.switch_cycles += cycles;
                self.tc_switch_cycles += self.cfg.switch_cost.timecache_overhead_cycles(&cost);

                if let Some(s) = &self.sensors {
                    let pid = self.processes[next].pid().0;
                    s.switches.inc();
                    s.switch_cycles.add(cycles);
                    s.tc_switch_cycles
                        .add(self.cfg.switch_cost.timecache_overhead_cycles(&cost));
                    s.tel.emit_at(
                        now,
                        TraceEvent::SwitchRestore {
                            core: core as u32,
                            thread: thread as u32,
                            pid,
                            comparator_cycles: cost.comparator_cycles,
                            transfer_lines: cost.transfer_lines,
                            charged_cycles: cycles,
                            sbits_reset: cost.sbits_reset,
                        },
                    );
                    if cost.rollover {
                        s.tel.emit_at(
                            now,
                            TraceEvent::RolloverReset {
                                core: core as u32,
                                thread: thread as u32,
                                pid,
                            },
                        );
                    }
                    if let Some(p) = s.tel.profiler() {
                        p.record(Scope::Process(pid), Phase::SwitchCost, cycles);
                        p.record(Scope::Context(ctx as u32), Phase::SwitchCost, cycles);
                    }
                }
            }
            self.drain_fault_records(now);
        }
        self.contexts[ctx].ever_dispatched = true;
        self.contexts[ctx].last_process = Some(next);
        self.contexts[ctx].current = Some(next);
        self.contexts[ctx].quantum_left = self.cfg.quantum_cycles;
        self.processes[next].has_run = true;
    }

    /// Executes one instruction of the context's current process.
    fn step(&mut self, ctx: usize) {
        // `run` only steps contexts with a dispatched process; an empty
        // context is a scheduler bug, but degrade to a no-op (the run loop
        // will dispatch or finish) rather than bringing the System down.
        let Some(pi) = self.contexts[ctx].current else {
            return;
        };
        let (core, thread) = (self.contexts[ctx].core, self.contexts[ctx].thread);
        let l1_hit = self.cfg.hierarchy.latencies.l1_hit;

        let op = self.processes[pi].program.next_op();
        if op == Op::Done {
            self.complete(ctx, pi);
            return;
        }

        let now = self.contexts[ctx].clock;
        let mut cycles = 1u64; // base CPI of the in-order core
        let mut data_latency = None;
        let mut flush_latency = None;
        let mut yielded = false;

        let pc = match op {
            Op::Instr { pc, .. } | Op::Flush { pc, .. } | Op::Yield { pc } => pc,
            Op::Done => unreachable!(),
        };
        // Instruction fetch: hits are fully pipelined; only miss latency
        // beyond an L1 hit stalls the core.
        let ifetch = self.hier.access(core, thread, AccessKind::IFetch, pc, now);
        cycles += ifetch.latency.saturating_sub(l1_hit);
        self.check_invariant(pi, pc, &ifetch, now + cycles);

        match op {
            Op::Instr { data, .. } => {
                if let Some((kind, addr)) = data {
                    let ak = match kind {
                        DataKind::Load => AccessKind::Load,
                        DataKind::Store => AccessKind::Store,
                    };
                    let out = self.hier.access(core, thread, ak, addr, now + cycles);
                    cycles += out.latency.saturating_sub(l1_hit);
                    data_latency = Some(out.latency);
                    self.check_invariant(pi, addr, &out, now + cycles);
                }
            }
            Op::Flush { target, .. } => {
                let lat = self.hier.clflush(target);
                cycles += lat;
                flush_latency = Some(lat);
                let line = target >> self.line_shift;
                if let Some(inv) = self.invariants.as_mut() {
                    inv.flush(line);
                }
            }
            Op::Yield { .. } => {
                yielded = true;
            }
            Op::Done => unreachable!(),
        }

        self.contexts[ctx].clock += cycles;
        self.contexts[ctx].quantum_left = self.contexts[ctx].quantum_left.saturating_sub(cycles);
        self.processes[pi].instructions += 1;
        self.processes[pi].cpu_cycles += cycles;

        if let Some(s) = &self.sensors {
            s.instructions.inc();
            if let Some(p) = s.tel.profiler() {
                // One base cycle of useful work; everything beyond it was
                // spent waiting on the hierarchy (or a flush completing).
                let pid = self.processes[pi].pid().0;
                p.record(Scope::Process(pid), Phase::Compute, 1);
                p.record(Scope::Context(ctx as u32), Phase::Compute, 1);
                if cycles > 1 {
                    p.record(Scope::Process(pid), Phase::MemoryStall, cycles - 1);
                    p.record(Scope::Context(ctx as u32), Phase::MemoryStall, cycles - 1);
                }
            }
        }

        let obs = Observation {
            instr_index: self.processes[pi].instructions - 1,
            data_latency,
            flush_latency,
            now: self.contexts[ctx].clock,
        };
        self.processes[pi].program.observe(obs);

        let target_hit = self.processes[pi]
            .target_instructions
            .is_some_and(|t| self.processes[pi].instructions >= t);
        if target_hit {
            self.complete(ctx, pi);
            return;
        }

        if yielded || self.contexts[ctx].quantum_left == 0 {
            if let Some(s) = &self.sensors {
                if yielded {
                    s.yields.inc();
                } else {
                    s.quanta_expired.inc();
                }
            }
            self.preempt(ctx, pi);
        }
    }

    /// Takes the current process off the context, saving its caching
    /// context, and re-queues it.
    fn preempt(&mut self, ctx: usize, pi: usize) {
        let (core, thread) = (self.contexts[ctx].core, self.contexts[ctx].thread);
        let now = self.contexts[ctx].clock;
        if self.contexts[ctx].queue.is_empty() {
            // Nobody to switch to: keep running with a fresh quantum.
            self.contexts[ctx].quantum_left = self.cfg.quantum_cycles;
            return;
        }
        if !self.cfg.discard_snapshots {
            // An injected mid-save abort (AbortSave) models the switch path
            // being interrupted while the s-bit DMA is in flight: the OS
            // retries a bounded number of times, then abandons the save.
            // An abandoned save is safe — the process simply has no
            // snapshot, so its next restore falls back to a conservative
            // full s-bit reset (fresh-process treatment).
            let mut attempts = 0u32;
            let snapshot = loop {
                if self.faults.fire(FaultKind::AbortSave, TriggerPoint::Save) {
                    attempts += 1;
                    if let Some(s) = &self.sensors {
                        s.save_retries.inc();
                    }
                    if attempts > self.cfg.save_retry_limit {
                        if let Some(s) = &self.sensors {
                            s.save_aborts.inc();
                        }
                        break None;
                    }
                    continue;
                }
                break Some(self.hier.save_context(core, thread, now));
            };
            let saved = snapshot.is_some();
            self.processes[pi].snapshot = snapshot;
            if saved {
                if let Some(s) = &self.sensors {
                    s.saves.inc();
                    s.tel.emit_at(
                        now,
                        TraceEvent::SwitchSave {
                            core: core as u32,
                            thread: thread as u32,
                            pid: self.processes[pi].pid().0,
                        },
                    );
                }
            }
            self.drain_fault_records(now);
        }
        self.contexts[ctx].queue.push_back(pi);
        self.contexts[ctx].current = None;
    }

    /// Feeds one resolved access through the invariant checker (no-op
    /// unless [`SystemConfig::check_invariants`] is set), mirroring any
    /// violation into telemetry.
    fn check_invariant(&mut self, pi: usize, addr: u64, out: &AccessOutcome, cycle: u64) {
        let pid = self.processes[pi].pid().0;
        let line = addr >> self.line_shift;
        let Some(inv) = self.invariants.as_mut() else {
            return;
        };
        if let Some(v) = inv.observe(pid, line, out, cycle) {
            if let Some(s) = &self.sensors {
                s.invariant_violations.inc();
                s.tel.emit_at(
                    cycle,
                    TraceEvent::InvariantViolation {
                        pid: v.pid,
                        line: v.line,
                        latency: v.latency,
                        served_by: match v.served_by {
                            Level::L1 => ServedBy::L1,
                            Level::LLC => ServedBy::Llc,
                            Level::RemoteL1 => ServedBy::RemoteL1,
                            Level::Memory => ServedBy::Memory,
                        },
                    },
                );
            }
        }
    }

    /// Mirrors the injector's accumulated [`timecache_core::FaultRecord`]s
    /// into telemetry counters and trace events. Called after each
    /// save/restore choreography (the only places faults fire).
    fn drain_fault_records(&mut self, cycle: u64) {
        if !self.faults.is_enabled() {
            return;
        }
        let records = self.faults.take_records();
        let detected = self.faults.detected();
        if let Some(s) = &self.sensors {
            for rec in &records {
                s.faults[rec.kind.index()].inc();
                s.tel.emit_at(
                    cycle,
                    TraceEvent::FaultInjected {
                        kind: rec.kind.as_str(),
                        trigger: rec.trigger.as_str(),
                        detected: rec.detected,
                    },
                );
            }
            s.faults_detected.add(detected - self.detected_reported);
        }
        self.detected_reported = detected;
    }

    /// Marks a process finished and frees the context.
    fn complete(&mut self, ctx: usize, pi: usize) {
        self.processes[pi].completed = true;
        self.processes[pi].completion_cycle = Some(self.contexts[ctx].clock);
        self.contexts[ctx].current = None;
    }

    fn report(&self) -> RunReport {
        let processes = self
            .processes
            .iter()
            .map(|p| ProcessMetrics {
                pid: p.pid(),
                name: p.name().to_owned(),
                instructions: p.instructions,
                cpu_cycles: p.cpu_cycles,
                completion_cycle: p.completion_cycle,
                completed: p.completed,
            })
            .collect();
        RunReport {
            processes,
            // Same `unwrap_or(0)` edge as `System::total_cycles`: 0 means
            // the report was taken before anything ran.
            total_cycles: self.contexts.iter().map(|c| c.clock).max().unwrap_or(0),
            total_instructions: self.processes.iter().map(|p| p.instructions).sum(),
            context_switches: self.switches,
            switch_cycles: self.switch_cycles,
            timecache_switch_cycles: self.tc_switch_cycles,
            stats: self.hier.stats(),
        }
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("processes", &self.processes.len())
            .field("contexts", &self.contexts.len())
            .field("switches", &self.switches)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{SharedWriter, Spin, StridedLoop};
    use timecache_sim::SecurityMode;

    fn sys(security: SecurityMode, cores: usize) -> System {
        let mut cfg = SystemConfig::default();
        cfg.hierarchy.cores = cores;
        cfg.hierarchy.security = security;
        cfg.quantum_cycles = 10_000;
        System::new(cfg).unwrap()
    }

    #[test]
    fn single_process_runs_to_target() {
        let mut s = sys(SecurityMode::Baseline, 1);
        s.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(1000));
        let r = s.run(10_000_000);
        assert!(r.all_completed());
        assert_eq!(r.processes[0].instructions, 1000);
        assert_eq!(r.context_switches, 0, "nothing to switch to");
        assert!(r.total_cycles >= 1000);
    }

    #[test]
    fn program_done_terminates() {
        let mut s = sys(SecurityMode::Baseline, 1);
        s.spawn(Box::new(Spin::new(50)), 0, 0, None);
        let r = s.run(1_000_000);
        assert!(r.all_completed());
        assert_eq!(r.processes[0].instructions, 50);
    }

    #[test]
    fn two_processes_round_robin() {
        let mut s = sys(SecurityMode::Baseline, 1);
        s.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(30_000));
        s.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(30_000));
        let r = s.run(100_000_000);
        assert!(r.all_completed());
        assert!(r.context_switches >= 4, "switches: {}", r.context_switches);
        assert!(r.switch_cycles > 0);
        // Baseline: no TimeCache bookkeeping.
        assert_eq!(r.timecache_switch_cycles, 0);
    }

    #[test]
    fn timecache_switches_cost_more() {
        use timecache_core::TimeCacheConfig;
        let mut base = sys(SecurityMode::Baseline, 1);
        base.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(20_000));
        base.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(20_000));
        let rb = base.run(100_000_000);

        let mut tc = sys(SecurityMode::TimeCache(TimeCacheConfig::default()), 1);
        tc.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(20_000));
        tc.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(20_000));
        let rt = tc.run(100_000_000);

        assert!(rt.timecache_switch_cycles > 0);
        assert!(rt.switch_cycles > rb.switch_cycles);
    }

    #[test]
    fn yield_hands_over_the_cpu() {
        // A SharedWriter yields after each sweep; a Spin shares the core.
        let mut s = sys(SecurityMode::Baseline, 1);
        s.spawn(Box::new(SharedWriter::new(0x9000, 4, 64)), 0, 0, Some(100));
        s.spawn(Box::new(SharedWriter::new(0xA000, 4, 64)), 0, 0, Some(100));
        let r = s.run(10_000_000);
        assert!(r.all_completed());
        // Both writers yield every 5 instructions, forcing many switches —
        // far more than the quantum alone (10k cycles) would produce.
        assert!(r.context_switches > 20, "switches {}", r.context_switches);
    }

    #[test]
    fn multicore_contexts_advance_in_causal_order() {
        let mut s = sys(SecurityMode::Baseline, 2);
        s.spawn(
            Box::new(StridedLoop::new(0x10_0000, 4096, 64)),
            0,
            0,
            Some(5000),
        );
        s.spawn(
            Box::new(StridedLoop::new(0x20_0000, 4096, 64)),
            1,
            0,
            Some(5000),
        );
        let r = s.run(10_000_000);
        assert!(r.all_completed());
        assert_eq!(r.context_switches, 0);
        let s = &r.stats;
        assert!(s.l1d[0].accesses > 0 && s.l1d[1].accesses > 0);
    }

    #[test]
    fn memory_traffic_is_accounted() {
        let mut s = sys(SecurityMode::Baseline, 1);
        s.spawn(
            Box::new(StridedLoop::new(0x10_0000, 256 * 1024, 64)),
            0,
            0,
            Some(8192),
        );
        let r = s.run(100_000_000);
        // 256 KiB working set exceeds the 32 KiB L1D: every load misses L1.
        assert!(r.stats.l1d[0].misses > 3000, "{:?}", r.stats.l1d[0]);
        // CPI well above 1 due to stalls.
        assert!(r.processes[0].cpi() > 1.5);
    }

    #[test]
    fn run_limit_stops_nonterminating_programs() {
        let mut s = sys(SecurityMode::Baseline, 1);
        s.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, None);
        let r = s.run(10_000);
        assert!(!r.all_completed());
        assert!(r.total_cycles >= 10_000);
    }

    #[test]
    fn spawn_checks_context() {
        let mut s = sys(SecurityMode::Baseline, 1);
        let err = s.try_spawn(Box::new(Spin::new(1)), 3, 0, None).unwrap_err();
        assert_eq!(err, OsError::NoSuchContext { core: 3, thread: 0 });
        assert_eq!(err.to_string(), "no hardware context (3,0)");
    }

    #[test]
    fn extend_target_supports_phased_runs() {
        let mut s = sys(SecurityMode::Baseline, 1);
        let a = s.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(1_000));
        let b = s.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(1_000));
        let warm = s.run(u64::MAX);
        assert!(warm.all_completed());
        let warm_cycles = s.total_cycles();

        s.reset_stats();
        s.extend_target(a, 2_000);
        s.extend_target(b, 2_000);
        let r = s.run(u64::MAX);
        assert!(r.all_completed());
        assert_eq!(r.process(a).unwrap().instructions, 3_000);
        assert_eq!(r.process(b).unwrap().instructions, 3_000);
        assert!(r.total_cycles > warm_cycles);
    }

    #[test]
    fn extend_target_checks_pid() {
        let mut s = sys(SecurityMode::Baseline, 1);
        let err = s.try_extend_target(crate::Pid(9), 1).unwrap_err();
        assert_eq!(err, OsError::NoSuchProcess(crate::Pid(9)));
        assert!(err.to_string().contains("does not exist"));
    }

    #[test]
    fn extend_target_requires_an_instruction_target() {
        let mut s = sys(SecurityMode::Baseline, 1);
        let pid = s.spawn(Box::new(Spin::new(50)), 0, 0, None);
        assert_eq!(
            s.try_extend_target(pid, 1),
            Err(OsError::NoInstructionTarget(pid))
        );
    }

    #[test]
    fn total_cycles_is_zero_only_before_anything_runs() {
        let mut s = sys(SecurityMode::Baseline, 1);
        // Freshly booted: every context clock is 0, so max() is Some(0) —
        // indistinguishable from the defensive unwrap_or(0) and correct
        // either way: nothing has run.
        assert_eq!(s.total_cycles(), 0);
        s.spawn(Box::new(Spin::new(10)), 0, 0, None);
        assert_eq!(s.total_cycles(), 0, "spawning does not advance clocks");
        let r = s.run(1_000);
        assert!(s.total_cycles() > 0);
        assert_eq!(r.total_cycles, s.total_cycles());
    }

    #[test]
    fn telemetry_mirrors_scheduler_accounting() {
        use timecache_core::TimeCacheConfig;

        let mut cfg = SystemConfig::default();
        cfg.hierarchy.security = SecurityMode::TimeCache(TimeCacheConfig::default());
        cfg.quantum_cycles = 10_000;
        cfg.telemetry = Telemetry::enabled();
        let tel = cfg.telemetry.clone();
        let mut s = System::new(cfg).unwrap();
        s.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(20_000));
        s.spawn(Box::new(Spin::new(u64::MAX)), 0, 0, Some(20_000));
        let r = s.run(100_000_000);
        assert!(r.all_completed());

        let reg = tel.registry().unwrap();
        assert_eq!(
            reg.counter_value("os_context_switches_total", &[]),
            Some(r.context_switches)
        );
        assert_eq!(
            reg.counter_value("os_switch_cycles_total", &[("kind", "total")]),
            Some(r.switch_cycles)
        );
        assert_eq!(
            reg.counter_value("os_switch_cycles_total", &[("kind", "timecache")]),
            Some(r.timecache_switch_cycles)
        );
        assert_eq!(
            reg.counter_value("os_instructions_total", &[]),
            Some(r.total_instructions)
        );

        // The sim-layer counters agree exactly with the run's CacheStats.
        for (cache, cs) in [
            ("l1i", r.stats.l1i_total()),
            ("l1d", r.stats.l1d_total()),
            ("llc", r.stats.llc),
        ] {
            for (outcome, expected) in [
                ("hit", cs.hits),
                ("first_access", cs.first_access),
                ("miss", cs.misses),
            ] {
                assert_eq!(
                    reg.counter_value(
                        "sim_cache_accesses_total",
                        &[("cache", cache), ("outcome", outcome)],
                    ),
                    Some(expected),
                    "{cache}/{outcome}"
                );
            }
        }

        // Every restore of a previously-run process shows up in the trace.
        let tracer = tel.tracer().unwrap();
        let saves = tracer
            .records()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::SwitchSave { .. }))
            .count() as u64;
        let restores = tracer
            .records()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::SwitchRestore { .. }))
            .count() as u64;
        assert_eq!(
            reg.counter_value("os_snapshot_saves_total", &[]),
            Some(saves)
        );
        assert_eq!(restores, r.context_switches);

        // The profiler accounts one compute cycle per retired instruction
        // and every charged switch cycle.
        let prof = tel.profiler().unwrap();
        let compute: u64 = (0..r.processes.len() as u32)
            .map(|pid| prof.process_cycles(pid).get(Phase::Compute))
            .sum();
        assert_eq!(compute, r.total_instructions);
        assert_eq!(
            prof.context_cycles(0).get(Phase::SwitchCost),
            r.switch_cycles
        );
    }

    /// Two processes time-sliced on one context, both walking the same
    /// small buffer — the canonical shared-cache setup the invariant
    /// checker must judge correctly in both security modes.
    fn shared_buffer_system(security: SecurityMode, plan: Option<FaultPlan>) -> System {
        let mut cfg = SystemConfig::default();
        cfg.hierarchy.security = security;
        cfg.quantum_cycles = 10_000;
        cfg.check_invariants = true;
        cfg.fault_plan = plan;
        cfg.telemetry = Telemetry::enabled();
        let mut s = System::new(cfg).unwrap();
        s.spawn(
            Box::new(StridedLoop::new(0x10_0000, 16 * 1024, 64)),
            0,
            0,
            Some(8_000),
        );
        s.spawn(
            Box::new(StridedLoop::new(0x10_0000, 16 * 1024, 64)),
            0,
            0,
            Some(8_000),
        );
        s
    }

    #[test]
    fn invariant_checker_flags_baseline_sharing() {
        let mut s = shared_buffer_system(SecurityMode::Baseline, None);
        let tel = s.telemetry().clone();
        let r = s.run(u64::MAX);
        assert!(r.all_completed());
        // With no defense, the second process hits lines the first one
        // fetched without ever paying a miss for them: a leak.
        assert!(s.invariant_violations() > 0);
        let v = s.invariants().unwrap().violations()[0];
        assert_ne!(v.served_by, Level::Memory);
        assert_eq!(
            tel.registry()
                .unwrap()
                .counter_value("invariant_violations_total", &[]),
            Some(s.invariant_violations())
        );
    }

    #[test]
    fn invariant_checker_is_clean_under_timecache() {
        use timecache_core::TimeCacheConfig;
        let mut s = shared_buffer_system(SecurityMode::TimeCache(TimeCacheConfig::default()), None);
        let r = s.run(u64::MAX);
        assert!(r.all_completed());
        assert_eq!(
            s.invariant_violations(),
            0,
            "first: {:?}",
            s.invariants().unwrap().violations().first()
        );
    }

    #[test]
    fn injected_snapshot_corruption_is_detected_and_stays_invariant_clean() {
        use timecache_core::TimeCacheConfig;
        let plan = FaultPlan::new(FaultKind::CorruptSnapshot, TriggerPoint::Restore, 0xC0DE);
        let mut s = shared_buffer_system(
            SecurityMode::TimeCache(TimeCacheConfig::default()),
            Some(plan),
        );
        let tel = s.telemetry().clone();
        let r = s.run(u64::MAX);
        assert!(r.all_completed());
        assert!(s.fault_injections() > 0);
        // Every corrupted snapshot trips the integrity checksum.
        assert_eq!(s.fault_detections(), s.fault_injections());
        assert_eq!(s.invariant_violations(), 0);

        let reg = tel.registry().unwrap();
        assert_eq!(
            reg.counter_value("fault_injected_total", &[("kind", "corrupt_snapshot")]),
            Some(s.fault_injections())
        );
        assert_eq!(
            reg.counter_value("fault_detected_total", &[]),
            Some(s.fault_detections())
        );
        let tracer = tel.tracer().unwrap();
        assert!(tracer
            .records()
            .iter()
            .any(|e| matches!(e.event, TraceEvent::FaultInjected { .. })));
    }

    #[test]
    fn aborted_saves_degrade_to_fresh_restores() {
        use timecache_core::TimeCacheConfig;
        // Rate 1.0: every save attempt aborts, exhausting the retry budget,
        // so no process ever keeps a snapshot.
        let plan = FaultPlan::new(FaultKind::AbortSave, TriggerPoint::Save, 0xAB0);
        let mut s = shared_buffer_system(
            SecurityMode::TimeCache(TimeCacheConfig::default()),
            Some(plan),
        );
        let tel = s.telemetry().clone();
        let r = s.run(u64::MAX);
        assert!(r.all_completed());
        assert!(s.fault_injections() > 0);
        assert_eq!(s.invariant_violations(), 0, "losing snapshots must be safe");
        let reg = tel.registry().unwrap();
        let retries = reg.counter_value("os_save_retries_total", &[]).unwrap();
        let aborts = reg.counter_value("os_save_aborts_total", &[]).unwrap();
        assert!(aborts > 0);
        // Each abandoned save burned the full retry budget + the final try.
        assert_eq!(retries, aborts * 4);
        // No snapshot ever completed, so none were counted as saved.
        assert_eq!(reg.counter_value("os_snapshot_saves_total", &[]), Some(0));
    }

    #[test]
    fn fault_rate_is_respected_between_runs_with_the_same_seed() {
        use timecache_core::TimeCacheConfig;
        let run = || {
            let plan =
                FaultPlan::new(FaultKind::DropSnapshot, TriggerPoint::Restore, 77).with_rate(0.5);
            let mut s = shared_buffer_system(
                SecurityMode::TimeCache(TimeCacheConfig::default()),
                Some(plan),
            );
            let r = s.run(u64::MAX);
            assert!(r.all_completed());
            (s.fault_injections(), r.total_cycles)
        };
        let (a_inj, a_cycles) = run();
        let (b_inj, b_cycles) = run();
        assert!(a_inj > 0);
        // Same seed, same schedule: bit-identical runs.
        assert_eq!(a_inj, b_inj);
        assert_eq!(a_cycles, b_cycles);
    }
}
