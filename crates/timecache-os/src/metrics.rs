//! Run reports: per-process and system-wide metrics.

use crate::process::Pid;
use timecache_sim::HierarchyStats;

/// Per-process results of a [`crate::System::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessMetrics {
    /// The process.
    pub pid: Pid,
    /// Program name.
    pub name: String,
    /// Instructions retired.
    pub instructions: u64,
    /// CPU cycles the process consumed on its context (excluding time it
    /// spent preempted, including its share of switch costs).
    pub cpu_cycles: u64,
    /// Wall-clock cycle (context clock) at which the process completed.
    pub completion_cycle: Option<u64>,
    /// Whether it completed (program done or instruction target hit).
    pub completed: bool,
}

impl ProcessMetrics {
    /// Cycles per instruction, the per-process performance figure
    /// normalized execution times are computed from.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cpu_cycles as f64 / self.instructions as f64
        }
    }
}

/// The outcome of a [`crate::System::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-process metrics, in spawn order.
    pub processes: Vec<ProcessMetrics>,
    /// The largest context clock when the run ended: total simulated time.
    pub total_cycles: u64,
    /// Total instructions retired by all processes.
    pub total_instructions: u64,
    /// Number of context switches performed.
    pub context_switches: u64,
    /// Cycles spent in context switches (base plus s-bit bookkeeping).
    pub switch_cycles: u64,
    /// Of `switch_cycles`, the TimeCache-specific share (s-bit DMA and
    /// comparator) — the paper's 0.024 % component.
    pub timecache_switch_cycles: u64,
    /// Cache statistics accumulated over the run.
    pub stats: HierarchyStats,
}

impl RunReport {
    /// Whether every spawned process completed.
    pub fn all_completed(&self) -> bool {
        self.processes.iter().all(|p| p.completed)
    }

    /// LLC misses (including first-access misses) per thousand retired
    /// instructions — Table II's MPKI columns.
    pub fn llc_mpki(&self) -> f64 {
        self.stats.llc.mpki(self.total_instructions)
    }

    /// First-access (delayed-access) MPKI at the LLC — Figs. 8/9b.
    pub fn llc_first_access_mpki(&self) -> f64 {
        self.stats.llc.first_access_mpki(self.total_instructions)
    }

    /// Metrics for one pid.
    pub fn process(&self, pid: Pid) -> Option<&ProcessMetrics> {
        self.processes.iter().find(|p| p.pid == pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm(cycles: u64, instrs: u64) -> ProcessMetrics {
        ProcessMetrics {
            pid: Pid(0),
            name: "t".into(),
            instructions: instrs,
            cpu_cycles: cycles,
            completion_cycle: Some(cycles),
            completed: true,
        }
    }

    #[test]
    fn cpi_math() {
        assert!((pm(1500, 1000).cpi() - 1.5).abs() < 1e-12);
        assert_eq!(pm(10, 0).cpi(), 0.0);
    }

    #[test]
    fn cpi_edge_cases() {
        // Zero instructions with zero cycles: still zero, never NaN.
        assert_eq!(pm(0, 0).cpi(), 0.0);
        assert!(!pm(0, 0).cpi().is_nan());
        // Zero cycles over nonzero instructions.
        assert_eq!(pm(0, 10).cpi(), 0.0);
        // An ideal in-order run: exactly one cycle per instruction.
        assert!((pm(1_000_000, 1_000_000).cpi() - 1.0).abs() < 1e-12);
        // Huge counts stay finite.
        assert!(pm(u64::MAX, 1).cpi().is_finite());
    }

    #[test]
    fn report_helpers() {
        let r = RunReport {
            processes: vec![pm(10, 10)],
            total_cycles: 10,
            total_instructions: 10_000,
            context_switches: 0,
            switch_cycles: 0,
            timecache_switch_cycles: 0,
            stats: HierarchyStats {
                llc: timecache_sim::CacheStats {
                    misses: 40,
                    first_access: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
        };
        assert!(r.all_completed());
        assert!((r.llc_mpki() - 5.0).abs() < 1e-12);
        assert!((r.llc_first_access_mpki() - 1.0).abs() < 1e-12);
        assert!(r.process(Pid(0)).is_some());
        assert!(r.process(Pid(9)).is_none());
    }
}
