//! Context-switch cost model.

use timecache_sim::SwitchCost;

/// How the s-bit snapshot DMA is priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaCost {
    /// The paper's methodology (Section VI-D): a fixed delay per context
    /// switch — 1.08 µs measured on a Xeon for the simulated system's
    /// buffer, "added to each context switch". 2160 cycles at 2 GHz.
    PaperConstant(u64),
    /// A per-64-byte-transfer price, for modelling how a single-channel
    /// DMA would actually scale with cache size (used by ablations).
    PerLine(u64),
}

/// How many cycles a context switch costs.
///
/// # Examples
///
/// ```
/// use timecache_os::SwitchCostModel;
///
/// let m = SwitchCostModel::default();
/// // A null switch (baseline mode: no transfers) costs just the base.
/// assert_eq!(m.cycles(&Default::default()), m.base_cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchCostModel {
    /// Cycles for a null context switch (register save, runqueue, TLB...).
    /// ~1 µs at 2 GHz.
    pub base_cycles: u64,
    /// s-bit DMA pricing. The default follows the paper: a constant
    /// 2160-cycle (1.08 µs at 2 GHz) charge whenever snapshots move.
    pub dma: DmaCost,
}

impl Default for SwitchCostModel {
    fn default() -> Self {
        SwitchCostModel {
            base_cycles: 2000,
            dma: DmaCost::PaperConstant(2160),
        }
    }
}

impl SwitchCostModel {
    /// Total cycles charged for a switch whose restore reported `cost`.
    ///
    /// The comparator sweep is additionally charged (it cannot overlap the
    /// first user instruction). With per-line pricing, the save of the
    /// outgoing context moves as many lines as the restore of the incoming
    /// one, so that term is doubled.
    pub fn cycles(&self, cost: &SwitchCost) -> u64 {
        self.base_cycles + self.dma_cycles(cost) + cost.comparator_cycles
    }

    /// The TimeCache-specific part of [`SwitchCostModel::cycles`] (what the
    /// paper reports as the 0.024 % bookkeeping overhead).
    pub fn timecache_overhead_cycles(&self, cost: &SwitchCost) -> u64 {
        self.cycles(cost) - self.base_cycles
    }

    fn dma_cycles(&self, cost: &SwitchCost) -> u64 {
        if cost.transfer_lines == 0 {
            return 0;
        }
        match self.dma {
            DmaCost::PaperConstant(cycles) => cycles,
            DmaCost::PerLine(per_line) => 2 * cost.transfer_lines * per_line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_charges_the_paper_constant() {
        let m = SwitchCostModel::default();
        let small = SwitchCost {
            transfer_lines: 66, // 2 MB LLC hierarchy
            comparator_cycles: 33,
            ..Default::default()
        };
        let large = SwitchCost {
            transfer_lines: 258, // 8 MB LLC hierarchy
            comparator_cycles: 33,
            ..Default::default()
        };
        // Same DMA charge regardless of size — the paper's methodology.
        assert_eq!(
            m.timecache_overhead_cycles(&small),
            m.timecache_overhead_cycles(&large)
        );
        assert_eq!(m.timecache_overhead_cycles(&small), 2160 + 33);
    }

    #[test]
    fn per_line_mode_scales_with_cache_size() {
        let m = SwitchCostModel {
            base_cycles: 2000,
            dma: DmaCost::PerLine(16),
        };
        let cost = SwitchCost {
            transfer_lines: 66,
            comparator_cycles: 33,
            ..Default::default()
        };
        // 2 transfers (save + restore) x 66 lines x 16 cycles.
        assert_eq!(m.timecache_overhead_cycles(&cost), 2 * 66 * 16 + 33);
    }

    #[test]
    fn baseline_switches_cost_base_only() {
        let m = SwitchCostModel::default();
        assert_eq!(m.cycles(&SwitchCost::default()), 2000);
        assert_eq!(m.timecache_overhead_cycles(&SwitchCost::default()), 0);
    }
}
