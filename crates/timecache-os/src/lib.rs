//! # timecache-os
//!
//! A miniature operating-system model on top of [`timecache_sim`]: processes
//! running [`Program`]s, a round-robin scheduler with per-hardware-context
//! run queues and cycle quanta, and the trusted-software half of the
//! TimeCache defense — saving and restoring per-process caching contexts
//! (s-bit snapshots and `Ts`) at every context switch, with the associated
//! cost model (Section VI-D of the paper).
//!
//! The paper triggers snapshot save/restore on CR3 writes inside gem5; here
//! the scheduler performs the same sequence explicitly:
//!
//! 1. save the outgoing process's [`timecache_sim::ContextSnapshot`] with
//!    the current cycle as its `Ts`;
//! 2. restore the incoming process's snapshot (or reset for a new process);
//! 3. let hardware's bit-serial comparator reset stale s-bits;
//! 4. charge the switch cost: a base (null-switch) cost plus the s-bit DMA
//!    transfer cost.
//!
//! # Quick start
//!
//! ```
//! use timecache_os::{System, SystemConfig, programs::StridedLoop};
//!
//! let mut sys = System::new(SystemConfig::default()).expect("valid config");
//! // Two processes time-sliced on core 0, each touching 64 KiB privately.
//! sys.spawn(Box::new(StridedLoop::new(0x100_0000, 64 * 1024, 64)), 0, 0, Some(10_000));
//! sys.spawn(Box::new(StridedLoop::new(0x200_0000, 64 * 1024, 64)), 0, 0, Some(10_000));
//! let report = sys.run(20_000_000);
//! assert!(report.all_completed());
//! assert_eq!(report.processes.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod invariant;
mod metrics;
mod process;
mod program;
pub mod programs;
mod switch;
mod system;
pub mod trace;
pub mod vm;

pub use error::OsError;
pub use metrics::{ProcessMetrics, RunReport};
pub use process::{Pid, Process};
pub use program::{DataKind, Observation, Op, Program};
pub use switch::{DmaCost, SwitchCostModel};
pub use system::{System, SystemConfig};
pub use trace::{Recorder, Trace, TraceProgram};
