//! Typed errors for the OS model.
//!
//! The scheduler's fallible entry points ([`crate::System::try_spawn`],
//! [`crate::System::try_extend_target`], [`crate::Trace::from_text`])
//! return these instead of panicking, so harnesses — the resilient sweep
//! engine in particular — can report a bad configuration as a failed job
//! rather than a dead worker. The `Display` strings are byte-for-byte the
//! legacy panic messages, so the panicking convenience wrappers (which
//! simply `panic!("{err}")`) keep every historical message intact.

use crate::process::Pid;

/// What went wrong inside the OS model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// A spawn named a (core, thread) pair the simulated machine lacks.
    NoSuchContext {
        /// Requested core index.
        core: usize,
        /// Requested SMT thread index on that core.
        thread: usize,
    },
    /// An operation named a [`Pid`] that was never spawned.
    NoSuchProcess(Pid),
    /// [`crate::System::try_extend_target`] was called on a process that
    /// was spawned without an instruction target.
    NoInstructionTarget(Pid),
    /// The process's program emitted `Done` on its own; its instruction
    /// target cannot be extended to keep it running.
    ProgramFinished(Pid),
    /// A trace text could not be parsed.
    TraceParse {
        /// 1-based line number of the first malformed line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::NoSuchContext { core, thread } => {
                write!(f, "no hardware context ({core},{thread})")
            }
            OsError::NoSuchProcess(pid) => write!(f, "{pid} does not exist"),
            OsError::NoInstructionTarget(pid) => {
                write!(f, "{pid} has no instruction target")
            }
            OsError::ProgramFinished(pid) => {
                write!(f, "{pid}'s program finished on its own; cannot extend")
            }
            OsError::TraceParse { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for OsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_legacy_panic_messages() {
        assert_eq!(
            OsError::NoSuchContext { core: 3, thread: 0 }.to_string(),
            "no hardware context (3,0)"
        );
        assert_eq!(
            OsError::NoSuchProcess(Pid(9)).to_string(),
            "pid9 does not exist"
        );
        assert_eq!(
            OsError::NoInstructionTarget(Pid(2)).to_string(),
            "pid2 has no instruction target"
        );
        assert_eq!(
            OsError::ProgramFinished(Pid(1)).to_string(),
            "pid1's program finished on its own; cannot extend"
        );
        assert_eq!(
            OsError::TraceParse {
                line: 4,
                message: "missing addr".into()
            }
            .to_string(),
            "line 4: missing addr"
        );
    }

    #[test]
    fn implements_the_std_error_trait() {
        let e: Box<dyn std::error::Error> = Box::new(OsError::NoSuchProcess(Pid(0)));
        assert!(e.to_string().contains("does not exist"));
    }
}
