//! Processes: schedulable entities owning a program and a saved caching
//! context.

use crate::program::Program;
use std::fmt;
use timecache_sim::ContextSnapshot;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// The scheduler-visible state of a process.
pub struct Process {
    pid: Pid,
    name: String,
    pub(crate) program: Box<dyn Program>,
    /// Saved caching context (None until first preemption; also None in
    /// baseline mode, where snapshots are empty anyway). `has_run` tells the
    /// restore path whether None means "new process" or "baseline".
    pub(crate) snapshot: Option<ContextSnapshot>,
    pub(crate) has_run: bool,
    pub(crate) instructions: u64,
    pub(crate) cpu_cycles: u64,
    pub(crate) target_instructions: Option<u64>,
    pub(crate) completed: bool,
    /// Cycle (on its context clock) when the process completed.
    pub(crate) completion_cycle: Option<u64>,
}

impl Process {
    /// Wraps a program as a process. `target_instructions` optionally caps
    /// the run length (the paper simulates fixed instruction budgets).
    pub fn new(pid: Pid, program: Box<dyn Program>, target_instructions: Option<u64>) -> Self {
        let name = program.name().to_owned();
        Process {
            pid,
            name,
            program,
            snapshot: None,
            has_run: false,
            instructions: 0,
            cpu_cycles: 0,
            target_instructions: None.or(target_instructions),
            completed: false,
            completion_cycle: None,
        }
    }

    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// CPU cycles consumed so far (excluding time spent preempted).
    pub fn cpu_cycles(&self) -> u64 {
        self.cpu_cycles
    }

    /// Whether the process has finished (program `Done` or target reached).
    pub fn completed(&self) -> bool {
        self.completed
    }
}

impl fmt::Debug for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("instructions", &self.instructions)
            .field("completed", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::Spin;

    #[test]
    fn wraps_program_metadata() {
        let p = Process::new(Pid(3), Box::new(Spin::new(5)), Some(100));
        assert_eq!(p.pid(), Pid(3));
        assert_eq!(p.name(), "spin");
        assert_eq!(p.instructions(), 0);
        assert!(!p.completed());
        assert_eq!(p.pid().to_string(), "pid3");
    }
}
