//! Virtual memory with fork and copy-on-write sharing.
//!
//! The paper motivates TimeCache with exactly this deployment: once reuse
//! channels are closed, operators can use fork/COW and page deduplication
//! freely ("unix-style process fork operations or Docker-style
//! containers") without handing attackers a shared-memory channel. This
//! module supplies the substrate: per-process page tables, `fork` with
//! copy-on-write, shared (deduplicated) mappings, and a [`VmProgram`]
//! wrapper that translates a program's virtual addresses — physical
//! sharing and COW divergence then flow naturally into the simulated
//! cache hierarchy.
//!
//! COW faults are modelled mechanically: the faulting store is preceded by
//! the page copy's actual line-by-line loads and stores, so the fault's
//! cache and timing footprint is simulated rather than waved at.

use crate::program::{DataKind, Observation, Op, Program};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use timecache_sim::Addr;

/// Page size (4 KiB, 64 cache lines).
pub const PAGE_SIZE: u64 = 4096;

/// Cache line size assumed for COW copy traffic.
const LINE: u64 = 64;

/// An address-space identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(u32);

/// One page mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mapping {
    /// Physical page base address.
    ppage: Addr,
    /// Copy-on-write: shared until first store.
    cow: bool,
}

/// One process's page table.
#[derive(Debug, Clone, Default)]
struct AddressSpace {
    /// Virtual page base -> mapping.
    pages: HashMap<Addr, Mapping>,
}

/// The system-wide VM state: all address spaces plus the physical
/// allocator. Shared by every [`VmProgram`] via [`Vm`].
#[derive(Debug)]
struct VmState {
    spaces: Vec<AddressSpace>,
    /// Physical allocation cursor (fresh pages are never recycled; the
    /// simulator only cares about distinctness).
    next_ppage: Addr,
    /// Count of COW faults taken (diagnostics).
    cow_faults: u64,
}

/// Shared handle to the VM manager.
///
/// # Examples
///
/// ```
/// use timecache_os::vm::{Vm, PAGE_SIZE};
///
/// let vm = Vm::new();
/// let parent = vm.new_space();
/// vm.map_anon(parent, 0x1000, PAGE_SIZE);
/// let child = vm.fork(parent);
///
/// // Reads share physical memory...
/// let (p, _) = vm.translate(parent, 0x1234, false);
/// let (c, _) = vm.translate(child, 0x1234, false);
/// assert_eq!(p, c);
///
/// // ...until a write copies the page.
/// let (c_w, copied) = vm.translate(child, 0x1234, true);
/// assert!(copied.is_some());
/// assert_ne!(c_w, p);
/// ```
#[derive(Debug, Clone)]
pub struct Vm {
    state: Rc<RefCell<VmState>>,
}

impl Default for Vm {
    fn default() -> Self {
        Vm::new()
    }
}

impl Vm {
    /// Creates an empty VM manager. Physical pages are carved from a
    /// private arena high in the address space so they never collide with
    /// the conventional layout regions.
    pub fn new() -> Self {
        Vm {
            state: Rc::new(RefCell::new(VmState {
                spaces: Vec::new(),
                next_ppage: 0x0900_0000_0000,
                cow_faults: 0,
            })),
        }
    }

    /// Creates a fresh, empty address space.
    pub fn new_space(&self) -> VmId {
        let mut st = self.state.borrow_mut();
        st.spaces.push(AddressSpace::default());
        VmId(st.spaces.len() as u32 - 1)
    }

    /// Maps `bytes` of fresh anonymous memory at `vbase` (private,
    /// writable).
    ///
    /// # Panics
    ///
    /// Panics if `space` is unknown, `vbase` is not page-aligned, or the
    /// range overlaps an existing mapping.
    pub fn map_anon(&self, space: VmId, vbase: Addr, bytes: u64) {
        assert_eq!(vbase % PAGE_SIZE, 0, "vbase must be page-aligned");
        let mut st = self.state.borrow_mut();
        for i in 0..bytes.div_ceil(PAGE_SIZE) {
            let ppage = st.next_ppage;
            st.next_ppage += PAGE_SIZE;
            let prev = st.spaces[space.0 as usize]
                .pages
                .insert(vbase + i * PAGE_SIZE, Mapping { ppage, cow: false });
            assert!(prev.is_none(), "overlapping mapping at {vbase:#x}");
        }
    }

    /// Maps `bytes` of *shared* physical memory (a deduplicated page range
    /// or shared library) at `vbase`, backed by `pbase`. Multiple spaces
    /// mapping the same `pbase` share the lines — stores do NOT copy
    /// (like `MAP_SHARED`).
    ///
    /// # Panics
    ///
    /// Panics on misalignment or overlap.
    pub fn map_shared(&self, space: VmId, vbase: Addr, pbase: Addr, bytes: u64) {
        assert_eq!(vbase % PAGE_SIZE, 0, "vbase must be page-aligned");
        assert_eq!(pbase % PAGE_SIZE, 0, "pbase must be page-aligned");
        let mut st = self.state.borrow_mut();
        for i in 0..bytes.div_ceil(PAGE_SIZE) {
            let prev = st.spaces[space.0 as usize].pages.insert(
                vbase + i * PAGE_SIZE,
                Mapping {
                    ppage: pbase + i * PAGE_SIZE,
                    cow: false,
                },
            );
            assert!(prev.is_none(), "overlapping mapping at {vbase:#x}");
        }
    }

    /// Forks `parent`: the child receives the same mappings, with every
    /// anonymous page downgraded to copy-on-write in **both** spaces
    /// (exactly `fork(2)` semantics; shared mappings stay shared).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown.
    pub fn fork(&self, parent: VmId) -> VmId {
        let mut st = self.state.borrow_mut();
        let mut parent_pages = st.spaces[parent.0 as usize].pages.clone();
        for m in parent_pages.values_mut() {
            m.cow = true;
        }
        st.spaces[parent.0 as usize].pages = parent_pages.clone();
        st.spaces.push(AddressSpace {
            pages: parent_pages,
        });
        VmId(st.spaces.len() as u32 - 1)
    }

    /// Translates a virtual address. For a store to a COW page, allocates
    /// a private copy, repoints the mapping, and returns
    /// `Some((old_ppage, new_ppage))` so the caller can simulate the copy
    /// traffic.
    ///
    /// # Panics
    ///
    /// Panics on an unmapped address (the simulated process would fault).
    pub fn translate(
        &self,
        space: VmId,
        vaddr: Addr,
        is_write: bool,
    ) -> (Addr, Option<(Addr, Addr)>) {
        let mut st = self.state.borrow_mut();
        let vpage = vaddr & !(PAGE_SIZE - 1);
        let offset = vaddr & (PAGE_SIZE - 1);
        let mapping = *st.spaces[space.0 as usize]
            .pages
            .get(&vpage)
            .unwrap_or_else(|| panic!("segfault: {vaddr:#x} unmapped in {space:?}"));
        if is_write && mapping.cow {
            let new_ppage = st.next_ppage;
            st.next_ppage += PAGE_SIZE;
            st.cow_faults += 1;
            st.spaces[space.0 as usize].pages.insert(
                vpage,
                Mapping {
                    ppage: new_ppage,
                    cow: false,
                },
            );
            return (new_ppage + offset, Some((mapping.ppage, new_ppage)));
        }
        (mapping.ppage + offset, None)
    }

    /// Total COW faults taken so far.
    pub fn cow_faults(&self) -> u64 {
        self.state.borrow().cow_faults
    }
}

/// Wraps a program so its memory accesses are translated through an
/// address space; COW faults inject the page copy's line traffic before
/// the faulting store.
///
/// Instruction fetches are translated too (text is demand-shared after a
/// fork, exactly the reuse surface the paper defends).
pub struct VmProgram<P> {
    inner: P,
    vm: Vm,
    space: VmId,
    /// Pending injected ops (COW copy traffic, then the faulting store).
    pending: Vec<Op>,
}

impl<P: Program> VmProgram<P> {
    /// Wraps `inner` to run inside `space`.
    pub fn new(inner: P, vm: Vm, space: VmId) -> Self {
        VmProgram {
            inner,
            vm,
            space,
            pending: Vec::new(),
        }
    }

    fn translate_op(&mut self, op: Op) -> Op {
        match op {
            Op::Instr { pc, data } => {
                let (pc, _) = self.vm.translate(self.space, pc, false);
                let data = data.map(|(kind, vaddr)| {
                    let is_write = kind == DataKind::Store;
                    let (paddr, cow) = self.vm.translate(self.space, vaddr, is_write);
                    if let Some((old, new)) = cow {
                        // Inject the page copy: read each old line, write
                        // each new line, then retry the store. Pushed in
                        // reverse (pending pops from the back).
                        self.pending.push(Op::Instr {
                            pc,
                            data: Some((kind, paddr)),
                        });
                        for i in (0..PAGE_SIZE / LINE).rev() {
                            self.pending.push(Op::Instr {
                                pc,
                                data: Some((DataKind::Store, new + i * LINE)),
                            });
                            self.pending.push(Op::Instr {
                                pc,
                                data: Some((DataKind::Load, old + i * LINE)),
                            });
                        }
                    }
                    (kind, paddr)
                });
                match data {
                    Some((kind, paddr)) if !self.pending.is_empty() => {
                        // The faulting store was queued behind the copy;
                        // issue the first copy op instead.
                        let _ = (kind, paddr);
                        self.pending.pop().expect("copy ops queued")
                    }
                    _ => Op::Instr { pc, data },
                }
            }
            Op::Flush { pc, target } => {
                let (pc, _) = self.vm.translate(self.space, pc, false);
                let (target, _) = self.vm.translate(self.space, target, false);
                Op::Flush { pc, target }
            }
            Op::Yield { pc } => {
                let (pc, _) = self.vm.translate(self.space, pc, false);
                Op::Yield { pc }
            }
            Op::Done => Op::Done,
        }
    }
}

impl<P: Program> Program for VmProgram<P> {
    fn next_op(&mut self) -> Op {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        let op = self.inner.next_op();
        self.translate_op(op)
    }

    fn observe(&mut self, obs: Observation) {
        // Injected copy ops are invisible to the wrapped program; only
        // forward observations when nothing synthetic is in flight.
        if self.pending.is_empty() {
            self.inner.observe(obs);
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl<P: fmt::Debug> fmt::Debug for VmProgram<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmProgram")
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::Spin;

    #[test]
    fn anon_pages_are_private_per_space() {
        let vm = Vm::new();
        let a = vm.new_space();
        let b = vm.new_space();
        vm.map_anon(a, 0x1000, PAGE_SIZE);
        vm.map_anon(b, 0x1000, PAGE_SIZE);
        let (pa, _) = vm.translate(a, 0x1000, false);
        let (pb, _) = vm.translate(b, 0x1000, false);
        assert_ne!(pa, pb);
    }

    #[test]
    fn shared_mappings_alias_physical_lines() {
        let vm = Vm::new();
        let a = vm.new_space();
        let b = vm.new_space();
        vm.map_shared(a, 0x2000, 0x0800_0000_0000, PAGE_SIZE);
        vm.map_shared(b, 0x9000, 0x0800_0000_0000, PAGE_SIZE);
        let (pa, _) = vm.translate(a, 0x2040, false);
        let (pb, _) = vm.translate(b, 0x9040, false);
        assert_eq!(pa, pb, "dedup: same physical line via different vaddrs");
    }

    #[test]
    fn fork_shares_reads_and_copies_on_write() {
        let vm = Vm::new();
        let parent = vm.new_space();
        vm.map_anon(parent, 0x4000, 2 * PAGE_SIZE);
        let child = vm.fork(parent);

        let (p, _) = vm.translate(parent, 0x4008, false);
        let (c, _) = vm.translate(child, 0x4008, false);
        assert_eq!(p, c);

        // Child writes: page copied, addresses diverge; parent keeps the
        // original physical page.
        let (cw, fault) = vm.translate(child, 0x4008, true);
        assert!(fault.is_some());
        assert_ne!(cw, p);
        let (p2, _) = vm.translate(parent, 0x4008, false);
        assert_eq!(p2, p);
        // Second write: no further fault.
        let (cw2, fault2) = vm.translate(child, 0x4008, true);
        assert_eq!(cw2, cw);
        assert!(fault2.is_none());
        assert_eq!(vm.cow_faults(), 1);

        // The untouched second page stays shared.
        let (pp, _) = vm.translate(parent, 0x5010, false);
        let (cp, _) = vm.translate(child, 0x5010, false);
        assert_eq!(pp, cp);
    }

    #[test]
    fn parent_write_after_fork_also_copies() {
        let vm = Vm::new();
        let parent = vm.new_space();
        vm.map_anon(parent, 0x4000, PAGE_SIZE);
        let child = vm.fork(parent);
        let (shared, _) = vm.translate(child, 0x4000, false);
        let (pw, fault) = vm.translate(parent, 0x4000, true);
        assert!(fault.is_some());
        assert_ne!(pw, shared);
        // Child still reads the original page.
        let (c2, _) = vm.translate(child, 0x4000, false);
        assert_eq!(c2, shared);
    }

    #[test]
    #[should_panic(expected = "segfault")]
    fn unmapped_access_faults() {
        let vm = Vm::new();
        let a = vm.new_space();
        vm.translate(a, 0xDEAD_0000, false);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn double_map_rejected() {
        let vm = Vm::new();
        let a = vm.new_space();
        vm.map_anon(a, 0x1000, PAGE_SIZE);
        vm.map_anon(a, 0x1000, PAGE_SIZE);
    }

    /// A two-op program: store to a COW page, then done.
    #[derive(Debug)]
    struct OneStore {
        done: bool,
    }

    impl Program for OneStore {
        fn next_op(&mut self) -> Op {
            if self.done {
                return Op::Done;
            }
            self.done = true;
            Op::Instr {
                pc: 0x1000,
                data: Some((DataKind::Store, 0x4010)),
            }
        }
    }

    #[test]
    fn vm_program_injects_cow_copy_traffic() {
        let vm = Vm::new();
        let parent = vm.new_space();
        vm.map_anon(parent, 0x1000, PAGE_SIZE); // text
        vm.map_anon(parent, 0x4000, PAGE_SIZE); // data
        let child = vm.fork(parent);

        let mut prog = VmProgram::new(OneStore { done: false }, vm.clone(), child);
        let mut ops = Vec::new();
        loop {
            let op = prog.next_op();
            if op == Op::Done {
                break;
            }
            ops.push(op);
        }
        // 64 loads + 64 stores of copy traffic + the retried store.
        assert_eq!(ops.len(), 129, "{}", ops.len());
        let stores = ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    Op::Instr {
                        data: Some((DataKind::Store, _)),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(stores, 65);
        // The final op is the faulting store, landed on the *new* page.
        let last = ops.last().unwrap();
        if let Op::Instr {
            data: Some((DataKind::Store, addr)),
            ..
        } = last
        {
            let (expected, _) = vm.translate(child, 0x4010, false);
            assert_eq!(*addr, expected);
        } else {
            panic!("last op not a store: {last:?}");
        }
        assert_eq!(vm.cow_faults(), 1);
    }

    #[test]
    fn vm_program_translates_everything_else() {
        let vm = Vm::new();
        let s = vm.new_space();
        vm.map_anon(s, 0x5500_0000, PAGE_SIZE); // Spin's code page
        let mut prog = VmProgram::new(Spin::new(2), vm.clone(), s);
        let op = prog.next_op();
        if let Op::Instr { pc, .. } = op {
            let (expected, _) = vm.translate(s, 0x5500_0000, false);
            assert_eq!(pc, expected);
        } else {
            panic!("unexpected {op:?}");
        }
    }
}
