//! Small built-in programs for tests, examples, and calibration.

use crate::program::{DataKind, Op, Program};
use timecache_sim::Addr;

/// Loads sequentially through a buffer with a fixed stride, looping forever
/// (bounded by the per-process instruction target).
///
/// Useful as a deterministic cache-filling workload.
#[derive(Debug, Clone)]
pub struct StridedLoop {
    base: Addr,
    bytes: u64,
    stride: u64,
    offset: u64,
    pc: Addr,
}

impl StridedLoop {
    /// A loop reading `bytes` bytes starting at `base`, `stride` bytes at a
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` or `stride` is zero.
    pub fn new(base: Addr, bytes: u64, stride: u64) -> Self {
        assert!(bytes > 0 && stride > 0, "bytes and stride must be nonzero");
        StridedLoop {
            base,
            bytes,
            stride,
            offset: 0,
            pc: base ^ 0x7F00_0000, // code lives away from the data
        }
    }
}

impl Program for StridedLoop {
    fn next_op(&mut self) -> Op {
        let addr = self.base + self.offset;
        self.offset = (self.offset + self.stride) % self.bytes;
        // A tiny code loop: 8 distinct instruction lines.
        self.pc = (self.pc & !0x1FF) | ((self.pc + 64) & 0x1FF);
        Op::Instr {
            pc: self.pc,
            data: Some((DataKind::Load, addr)),
        }
    }

    fn name(&self) -> &str {
        "strided-loop"
    }
}

/// Writes a value repeatedly to every line of a shared buffer, then yields —
/// the victim half of the paper's Section VI-A.1 microbenchmark.
#[derive(Debug, Clone)]
pub struct SharedWriter {
    base: Addr,
    lines: u64,
    line_size: u64,
    next: u64,
    pc: Addr,
}

impl SharedWriter {
    /// A writer touching `lines` cache lines starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or `line_size` is not a power of two.
    pub fn new(base: Addr, lines: u64, line_size: u64) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(line_size.is_power_of_two(), "line size must be 2^k");
        SharedWriter {
            base,
            lines,
            line_size,
            next: 0,
            pc: 0x4400_0000,
        }
    }
}

impl Program for SharedWriter {
    fn next_op(&mut self) -> Op {
        let addr = self.base + self.next * self.line_size;
        self.next += 1;
        if self.next > self.lines {
            self.next = 0;
            return Op::Yield { pc: self.pc };
        }
        Op::Instr {
            pc: self.pc,
            data: Some((DataKind::Store, addr)),
        }
    }

    fn name(&self) -> &str {
        "shared-writer"
    }
}

/// Retires `n` arithmetic instructions (no data accesses), then finishes.
#[derive(Debug, Clone)]
pub struct Spin {
    remaining: u64,
    pc: Addr,
}

impl Spin {
    /// A program of `n` no-memory instructions.
    pub fn new(n: u64) -> Self {
        Spin {
            remaining: n,
            pc: 0x5500_0000,
        }
    }
}

impl Program for Spin {
    fn next_op(&mut self) -> Op {
        if self.remaining == 0 {
            return Op::Done;
        }
        self.remaining -= 1;
        Op::Instr {
            pc: self.pc,
            data: None,
        }
    }

    fn name(&self) -> &str {
        "spin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_loop_wraps() {
        let mut p = StridedLoop::new(0x1000, 128, 64);
        let addrs: Vec<_> = (0..4)
            .map(|_| match p.next_op() {
                Op::Instr {
                    data: Some((_, a)), ..
                } => a,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1000, 0x1040]);
    }

    #[test]
    fn shared_writer_yields_after_sweep() {
        let mut p = SharedWriter::new(0x2000, 2, 64);
        assert!(matches!(
            p.next_op(),
            Op::Instr {
                data: Some((DataKind::Store, 0x2000)),
                ..
            }
        ));
        assert!(matches!(
            p.next_op(),
            Op::Instr {
                data: Some((DataKind::Store, 0x2040)),
                ..
            }
        ));
        assert!(matches!(p.next_op(), Op::Yield { .. }));
        // And starts over.
        assert!(matches!(
            p.next_op(),
            Op::Instr {
                data: Some((DataKind::Store, 0x2000)),
                ..
            }
        ));
    }

    #[test]
    fn spin_terminates() {
        let mut p = Spin::new(2);
        assert!(matches!(p.next_op(), Op::Instr { data: None, .. }));
        assert!(matches!(p.next_op(), Op::Instr { data: None, .. }));
        assert_eq!(p.next_op(), Op::Done);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn strided_loop_validates() {
        StridedLoop::new(0, 0, 64);
    }
}
