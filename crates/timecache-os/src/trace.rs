//! Trace recording and replay.
//!
//! Execution-driven programs are the primary interface, but a trace-driven
//! mode is valuable for reproducibility (capture an interesting run once,
//! replay it bit-for-bit), for cross-tool comparison (feed the same trace
//! to another simulator), and for regression-pinning workloads in tests.
//!
//! [`Recorder`] wraps any [`Program`] and logs every op it emits;
//! [`TraceProgram`] replays a recorded op stream. A compact text
//! serialization (one op per line) keeps traces diffable and
//! storable as fixtures.

use crate::error::OsError;
use crate::program::{DataKind, Observation, Op, Program};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use timecache_sim::{AccessKind, AccessOutcome, BatchClock, Hierarchy};

/// A recorded instruction trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// The recorded ops.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends one op.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Serializes to the line-oriented text format:
    ///
    /// ```text
    /// I <pc>                 # instruction without data access
    /// L <pc> <addr>          # load
    /// S <pc> <addr>          # store
    /// F <pc> <target>        # clflush
    /// Y <pc>                 # yield
    /// D                      # done
    /// ```
    ///
    /// Addresses are lowercase hex without prefix.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.ops.len() * 16);
        for op in &self.ops {
            match *op {
                Op::Instr { pc, data: None } => {
                    let _ = writeln!(out, "I {pc:x}");
                }
                Op::Instr {
                    pc,
                    data: Some((DataKind::Load, a)),
                } => {
                    let _ = writeln!(out, "L {pc:x} {a:x}");
                }
                Op::Instr {
                    pc,
                    data: Some((DataKind::Store, a)),
                } => {
                    let _ = writeln!(out, "S {pc:x} {a:x}");
                }
                Op::Flush { pc, target } => {
                    let _ = writeln!(out, "F {pc:x} {target:x}");
                }
                Op::Yield { pc } => {
                    let _ = writeln!(out, "Y {pc:x}");
                }
                Op::Done => {
                    let _ = writeln!(out, "D");
                }
            }
        }
        out
    }

    /// Parses the text format produced by [`Trace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`OsError::TraceParse`] describing the first malformed
    /// line (its `Display` keeps the historical `line N: ...` shape).
    pub fn from_text(text: &str) -> Result<Self, OsError> {
        let mut ops = Vec::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            // A line with no tokens is blank: skip it. This replaces the
            // old `expect("nonempty line")` panic path with control flow
            // that cannot be wrong about whitespace handling.
            let Some(tag) = parts.next() else {
                continue;
            };
            let mut hex = |name: &str| -> Result<u64, OsError> {
                let tok = parts.next().ok_or_else(|| OsError::TraceParse {
                    line: no + 1,
                    message: format!("missing {name}"),
                })?;
                u64::from_str_radix(tok, 16).map_err(|e| OsError::TraceParse {
                    line: no + 1,
                    message: format!("bad {name} ({e})"),
                })
            };
            let op = match tag {
                "I" => Op::Instr {
                    pc: hex("pc")?,
                    data: None,
                },
                "L" => Op::Instr {
                    pc: hex("pc")?,
                    data: Some((DataKind::Load, hex("addr")?)),
                },
                "S" => Op::Instr {
                    pc: hex("pc")?,
                    data: Some((DataKind::Store, hex("addr")?)),
                },
                "F" => Op::Flush {
                    pc: hex("pc")?,
                    target: hex("target")?,
                },
                "Y" => Op::Yield { pc: hex("pc")? },
                "D" => Op::Done,
                other => {
                    return Err(OsError::TraceParse {
                        line: no + 1,
                        message: format!("unknown tag {other:?}"),
                    })
                }
            };
            if let Some(extra) = parts.next() {
                return Err(OsError::TraceParse {
                    line: no + 1,
                    message: format!("trailing token {extra:?} after {tag} op"),
                });
            }
            ops.push(op);
        }
        Ok(Trace { ops })
    }

    /// Replays the trace's memory operations directly against a
    /// [`Hierarchy`] as hardware context `(core, thread)`, without the
    /// scheduler: each `Instr` is an instruction fetch at its pc plus the
    /// optional data access, `Flush` executes a `clflush`, `Yield` is a
    /// no-op (there is no scheduler to yield to), and `Done` stops the
    /// replay. The clock starts at `start` and advances serially — each
    /// operation issues when the previous one completes.
    ///
    /// Consecutive instruction runs are submitted through
    /// [`Hierarchy::access_batch`], which is what makes this the fast path
    /// for trace-driven measurement. Returns the access outcomes in
    /// program order and the final clock value.
    pub fn replay_hierarchy(
        &self,
        hier: &mut Hierarchy,
        core: usize,
        thread: usize,
        start: u64,
    ) -> (Vec<AccessOutcome>, u64) {
        let mut outcomes = Vec::new();
        let mut now = start;
        // Reused buffer of the current uninterrupted access run.
        let mut batch: Vec<(AccessKind, u64)> = Vec::new();
        let flush_batch =
            |hier: &mut Hierarchy, batch: &mut Vec<(AccessKind, u64)>, now: &mut u64| {
                if batch.is_empty() {
                    return Vec::new();
                }
                let (outs, end) =
                    hier.access_batch(core, thread, batch, *now, BatchClock::LatencyPlus(0));
                *now = end;
                batch.clear();
                outs
            };
        for op in &self.ops {
            match *op {
                Op::Instr { pc, data } => {
                    batch.push((AccessKind::IFetch, pc));
                    if let Some((kind, addr)) = data {
                        let kind = match kind {
                            DataKind::Load => AccessKind::Load,
                            DataKind::Store => AccessKind::Store,
                        };
                        batch.push((kind, addr));
                    }
                }
                Op::Flush { pc, target } => {
                    batch.push((AccessKind::IFetch, pc));
                    outcomes.extend(flush_batch(hier, &mut batch, &mut now));
                    now += hier.clflush(target);
                }
                Op::Yield { pc } => {
                    batch.push((AccessKind::IFetch, pc));
                }
                Op::Done => break,
            }
        }
        outcomes.extend(flush_batch(hier, &mut batch, &mut now));
        (outcomes, now)
    }
}

/// Shared handle to a trace being recorded.
pub type TraceHandle = Rc<RefCell<Trace>>;

/// Wraps a program, recording every op it emits (including the final
/// `Done`) into a shared [`Trace`].
pub struct Recorder<P> {
    inner: P,
    trace: TraceHandle,
}

impl<P: Program> Recorder<P> {
    /// Wraps `inner`; read the trace from the returned handle after the
    /// run.
    pub fn new(inner: P) -> (Self, TraceHandle) {
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new()));
        (
            Recorder {
                inner,
                trace: Rc::clone(&trace),
            },
            trace,
        )
    }
}

impl<P: Program> Program for Recorder<P> {
    fn next_op(&mut self) -> Op {
        let op = self.inner.next_op();
        self.trace.borrow_mut().push(op);
        op
    }

    fn observe(&mut self, obs: Observation) {
        self.inner.observe(obs);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for Recorder<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("inner", &self.inner)
            .finish()
    }
}

/// Replays a [`Trace`] as a program. Emits `Done` forever once exhausted.
#[derive(Debug, Clone)]
pub struct TraceProgram {
    trace: Trace,
    cursor: usize,
    name: String,
}

impl TraceProgram {
    /// Builds a replayer.
    pub fn new(trace: Trace, name: impl Into<String>) -> Self {
        TraceProgram {
            trace,
            cursor: 0,
            name: name.into(),
        }
    }
}

impl Program for TraceProgram {
    fn next_op(&mut self) -> Op {
        match self.trace.ops().get(self.cursor) {
            Some(&op) => {
                self.cursor += 1;
                op
            }
            None => Op::Done,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{SharedWriter, Spin};
    use crate::{System, SystemConfig};

    #[test]
    fn text_roundtrip_covers_every_op() {
        let mut t = Trace::new();
        t.push(Op::Instr {
            pc: 0x10,
            data: None,
        });
        t.push(Op::Instr {
            pc: 0x20,
            data: Some((DataKind::Load, 0xABC)),
        });
        t.push(Op::Instr {
            pc: 0x30,
            data: Some((DataKind::Store, 0xDEF)),
        });
        t.push(Op::Flush {
            pc: 0x40,
            target: 0x123,
        });
        t.push(Op::Yield { pc: 0x50 });
        t.push(Op::Done);
        let text = t.to_text();
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }

    #[test]
    fn parser_skips_blank_and_comment_lines() {
        let t = Trace::from_text("# header\n\nI 10\n  # trailing\nD\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn parser_reports_bad_lines() {
        // Errors are typed now; Display keeps the historical text.
        let err = Trace::from_text("X 10").unwrap_err();
        assert!(matches!(err, crate::OsError::TraceParse { line: 1, .. }));
        assert!(err.to_string().contains("unknown tag"));
        assert!(Trace::from_text("L 10")
            .unwrap_err()
            .to_string()
            .contains("missing addr"));
        assert_eq!(
            Trace::from_text("I 10\nL zz 10").unwrap_err().to_string(),
            "line 2: bad pc (invalid digit found in string)"
        );
    }

    #[test]
    fn parser_rejects_trailing_tokens() {
        let err = Trace::from_text("D one-field-too-many").unwrap_err();
        assert!(matches!(err, crate::OsError::TraceParse { line: 1, .. }));
        assert!(err.to_string().contains("trailing token"));
        assert!(Trace::from_text("I 10 20").is_err());
        assert!(Trace::from_text("L 10 20 30").is_err());
    }

    #[test]
    fn parser_skips_whitespace_only_lines_without_panicking() {
        // The old parser `expect`ed at least one token on any line that
        // survived the blank/comment filter; whitespace-only lines must
        // parse as blank, not panic or error.
        let t = Trace::from_text("\t \nI 10\n   \nD\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn recorder_captures_program_output() {
        let (rec, handle) = Recorder::new(SharedWriter::new(0x1000, 2, 64));
        let mut rec = rec;
        let emitted: Vec<Op> = (0..5).map(|_| rec.next_op()).collect();
        assert_eq!(handle.borrow().ops(), emitted.as_slice());
        assert_eq!(rec.name(), "shared-writer");
    }

    #[test]
    fn replay_reproduces_a_recorded_run_exactly() {
        // Record a run, then replay the trace: same cycle count and stats.
        let run = |program: Box<dyn Program>| {
            let mut sys = System::new(SystemConfig::default()).unwrap();
            sys.spawn(program, 0, 0, Some(2_000));
            sys.run(u64::MAX)
        };

        let (rec, handle) = Recorder::new(SharedWriter::new(0x2000, 16, 64));
        let original = run(Box::new(rec));
        let trace = handle.borrow().clone();
        let replayed = run(Box::new(TraceProgram::new(trace, "replay")));

        assert_eq!(original.total_cycles, replayed.total_cycles);
        assert_eq!(original.stats, replayed.stats);
    }

    #[test]
    fn exhausted_trace_is_done() {
        let mut p = TraceProgram::new(Trace::new(), "empty");
        assert_eq!(p.next_op(), Op::Done);
        assert_eq!(p.next_op(), Op::Done);
        assert_eq!(p.name(), "empty");
    }

    #[test]
    fn replay_hierarchy_matches_per_access_loop() {
        use timecache_sim::HierarchyConfig;

        let trace = Trace::from_text(
            "I 10\nL 20 4000\nS 24 4040\nI 28\nF 2c 4000\nY 30\nL 34 8000\nD\nI ff\n",
        )
        .unwrap();

        let mut batched = Hierarchy::new(HierarchyConfig::default()).unwrap();
        let (outs, end) = trace.replay_hierarchy(&mut batched, 0, 0, 1);

        // Reference: the same op stream through Hierarchy::access one at a
        // time with the same serial clock rule.
        let mut reference = Hierarchy::new(HierarchyConfig::default()).unwrap();
        let mut now = 1;
        let mut expect = Vec::new();
        let one = |h: &mut Hierarchy, now: &mut u64, kind, addr| {
            let o = h.access(0, 0, kind, addr, *now);
            *now += o.latency;
            o
        };
        expect.push(one(&mut reference, &mut now, AccessKind::IFetch, 0x10));
        expect.push(one(&mut reference, &mut now, AccessKind::IFetch, 0x20));
        expect.push(one(&mut reference, &mut now, AccessKind::Load, 0x4000));
        expect.push(one(&mut reference, &mut now, AccessKind::IFetch, 0x24));
        expect.push(one(&mut reference, &mut now, AccessKind::Store, 0x4040));
        expect.push(one(&mut reference, &mut now, AccessKind::IFetch, 0x28));
        expect.push(one(&mut reference, &mut now, AccessKind::IFetch, 0x2c));
        now += reference.clflush(0x4000);
        expect.push(one(&mut reference, &mut now, AccessKind::IFetch, 0x30));
        expect.push(one(&mut reference, &mut now, AccessKind::IFetch, 0x34));
        expect.push(one(&mut reference, &mut now, AccessKind::Load, 0x8000));

        assert_eq!(outs, expect);
        assert_eq!(end, now);
        assert_eq!(batched.stats(), reference.stats());
    }

    #[test]
    fn spin_records_done_marker() {
        let (rec, handle) = Recorder::new(Spin::new(1));
        let mut rec = rec;
        while rec.next_op() != Op::Done {}
        let t = handle.borrow();
        assert_eq!(t.ops().last(), Some(&Op::Done));
    }
}
