//! Runtime security-invariant checker.
//!
//! TimeCache's guarantee (Ojha & Dwarkadas, ISCA 2021) is that cache
//! latency never tells a process about *another* process's accesses: every
//! process pays a first-access (miss-latency) penalty for each cache line
//! once per fill generation before it can observe a hit. This module checks
//! that property dynamically, from outside the defense's own bookkeeping:
//!
//! > A process must never observe a hit-latency access to a line it has not
//! > itself paid a memory-latency first access for since the line's current
//! > fill generation.
//!
//! The checker shadows the hierarchy with a *fill epoch* per line, bumped
//! whenever the line's contents are (re)established from memory — a true
//! LLC miss fill or a `clflush`. A process "pays" for a line by taking a
//! memory-latency access to it; payment is remembered per `(pid, line)`
//! together with the epoch it was made in. Any fast access (served by L1,
//! LLC, or a remote L1) whose payment is missing or stale is a violation:
//! the data's residency predates this process's own work, so its latency
//! leaks someone else's access pattern.
//!
//! With the TimeCache defense on, the s-bit machinery makes violations
//! impossible by construction (the first-access mechanism forces the
//! payment); with the defense off, classic Prime+Probe / Flush+Reload
//! sharing patterns trip it immediately. The fault-injection matrix
//! (`experiments fault-sweep`) relies on this asymmetry: zero violations
//! with the defense on — even under injected faults — and reliable
//! violations with it off.
//!
//! Checking costs two hash-map probes per memory access and is entirely
//! off the simulated timing path; it is gated behind
//! [`SystemConfig::check_invariants`](crate::SystemConfig::check_invariants).

use std::collections::HashMap;
use timecache_sim::{AccessOutcome, Level};

/// One observed breach of the first-access invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The observing process.
    pub pid: u32,
    /// The line (byte address >> line-size bits) whose latency leaked.
    pub line: u64,
    /// The observed (fast) latency in cycles.
    pub latency: u64,
    /// Which component served the access faster than memory.
    pub served_by: Level,
    /// Simulated cycle at which the access completed.
    pub cycle: u64,
}

/// Capped number of violations retained with full detail; the total count
/// keeps incrementing past the cap.
const MAX_RETAINED: usize = 256;

/// Shadow state for the first-access invariant. See the module docs.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    /// Current fill generation per line (missing = 0, the initial epoch).
    fill_epoch: HashMap<u64, u64>,
    /// Epoch in which each `(pid, line)` last paid memory latency.
    paid: HashMap<(u32, u64), u64>,
    violations: Vec<Violation>,
    total_violations: u64,
}

impl InvariantChecker {
    /// A fresh checker: no fills witnessed, no payments recorded.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// Feeds one completed memory access through the checker.
    ///
    /// Returns the violation, if this access was one. Call *after* the
    /// hierarchy resolved the access, with the line index the hierarchy
    /// used (`addr >> line_bits`).
    pub fn observe(
        &mut self,
        pid: u32,
        line: u64,
        out: &AccessOutcome,
        cycle: u64,
    ) -> Option<Violation> {
        let epoch = self.fill_epoch.get(&line).copied().unwrap_or(0);
        let mut violation = None;
        if out.served_by != Level::Memory {
            // Fast path: only legitimate if this process paid for this line
            // in the line's current fill generation.
            if self.paid.get(&(pid, line)) != Some(&epoch) {
                let v = Violation {
                    pid,
                    line,
                    latency: out.latency,
                    served_by: out.served_by,
                    cycle,
                };
                self.total_violations += 1;
                if self.violations.len() < MAX_RETAINED {
                    self.violations.push(v);
                }
                violation = Some(v);
            }
        } else {
            // Memory latency paid. A true LLC miss (not a first-access
            // replay of already-resident data) re-establishes the line
            // from memory and opens a new fill generation.
            let epoch = if !out.l1_tag_hit && !out.first_access_llc {
                let e = self.fill_epoch.entry(line).or_insert(0);
                *e += 1;
                *e
            } else {
                epoch
            };
            self.paid.insert((pid, line), epoch);
        }
        violation
    }

    /// Records a `clflush` of `line`: the cached copy is gone, so the next
    /// residency is a new fill generation and every payment is stale.
    pub fn flush(&mut self, line: u64) {
        *self.fill_epoch.entry(line).or_insert(0) += 1;
    }

    /// Total violations observed, including any past the retention cap.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// The first [`MAX_RETAINED`] violations, in observation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(served_by: Level, l1_tag_hit: bool, first_access_llc: bool) -> AccessOutcome {
        AccessOutcome {
            latency: if served_by == Level::Memory { 200 } else { 4 },
            served_by,
            l1_tag_hit,
            first_access_l1: false,
            first_access_llc,
        }
    }

    #[test]
    fn paying_then_hitting_is_clean() {
        let mut c = InvariantChecker::new();
        // True miss: fill + payment.
        assert!(c
            .observe(1, 0x40, &outcome(Level::Memory, false, false), 10)
            .is_none());
        // Subsequent hits at any level are earned.
        assert!(c
            .observe(1, 0x40, &outcome(Level::L1, true, false), 20)
            .is_none());
        assert!(c
            .observe(1, 0x40, &outcome(Level::LLC, false, false), 30)
            .is_none());
        assert_eq!(c.total_violations(), 0);
    }

    #[test]
    fn unpaid_fast_access_is_a_violation() {
        let mut c = InvariantChecker::new();
        // pid 1 fills the line; pid 2 then observes a fast hit it never
        // paid for — the classic shared-cache leak.
        c.observe(1, 0x40, &outcome(Level::Memory, false, false), 10);
        let v = c
            .observe(2, 0x40, &outcome(Level::LLC, false, false), 20)
            .expect("leak must be flagged");
        assert_eq!((v.pid, v.line, v.served_by), (2, 0x40, Level::LLC));
        assert_eq!(c.total_violations(), 1);
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn first_access_replay_pays_without_opening_a_new_generation() {
        let mut c = InvariantChecker::new();
        c.observe(1, 0x40, &outcome(Level::Memory, false, false), 10);
        // pid 2 takes a first-access miss on the resident line (TimeCache
        // defense): memory latency paid, data served from the same fill.
        c.observe(2, 0x40, &outcome(Level::Memory, false, true), 20);
        // Both processes may now hit.
        assert!(c
            .observe(1, 0x40, &outcome(Level::L1, true, false), 30)
            .is_none());
        assert!(c
            .observe(2, 0x40, &outcome(Level::LLC, false, false), 40)
            .is_none());
        assert_eq!(c.total_violations(), 0);
    }

    #[test]
    fn refill_invalidates_old_payments() {
        let mut c = InvariantChecker::new();
        c.observe(1, 0x40, &outcome(Level::Memory, false, false), 10);
        // Someone else evicts and refills the line: new generation.
        c.observe(2, 0x40, &outcome(Level::Memory, false, false), 20);
        // pid 1's old payment is stale; a fast hit now leaks pid 2's fill.
        assert!(c
            .observe(1, 0x40, &outcome(Level::LLC, false, false), 30)
            .is_some());
        assert_eq!(c.total_violations(), 1);
    }

    #[test]
    fn flush_forces_repayment() {
        let mut c = InvariantChecker::new();
        c.observe(1, 0x40, &outcome(Level::Memory, false, false), 10);
        c.flush(0x40);
        // Flush+Reload probe: a fast access after the flush is a leak.
        assert!(c
            .observe(1, 0x40, &outcome(Level::L1, true, false), 20)
            .is_some());
        // Repaying with a true miss restores the process's standing.
        c.observe(1, 0x40, &outcome(Level::Memory, false, false), 30);
        assert!(c
            .observe(1, 0x40, &outcome(Level::L1, true, false), 40)
            .is_none());
    }

    #[test]
    fn dram_wait_replay_with_l1_tag_hit_counts_as_payment() {
        let mut c = InvariantChecker::new();
        c.observe(1, 0x40, &outcome(Level::Memory, false, false), 10);
        // First access at the L1 that still waits for DRAM (tag hit, memory
        // latency): pays, but the resident fill is untouched.
        c.observe(2, 0x40, &outcome(Level::Memory, true, false), 20);
        assert!(c
            .observe(2, 0x40, &outcome(Level::L1, true, false), 30)
            .is_none());
        // pid 1's payment stayed valid throughout.
        assert!(c
            .observe(1, 0x40, &outcome(Level::L1, true, false), 40)
            .is_none());
    }

    #[test]
    fn retention_is_capped_but_counting_is_not() {
        let mut c = InvariantChecker::new();
        c.observe(1, 0, &outcome(Level::Memory, false, false), 0);
        for i in 0..(MAX_RETAINED as u64 + 10) {
            c.observe(2, 0, &outcome(Level::LLC, false, false), i);
        }
        assert_eq!(c.total_violations(), MAX_RETAINED as u64 + 10);
        assert_eq!(c.violations().len(), MAX_RETAINED);
    }
}
