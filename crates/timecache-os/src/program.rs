//! The program abstraction: a stream of instructions a process executes.
//!
//! Programs are *execution-driven* rather than trace files: each call to
//! [`Program::next_op`] produces the next instruction, so programs can react
//! to what they observe (an attacker times its loads via
//! [`Program::observe`] and decides what to probe next).

use timecache_sim::Addr;

/// The data side of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataKind {
    /// A load.
    Load,
    /// A store.
    Store,
}

/// One step of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute one instruction fetched from `pc`, optionally performing a
    /// data access.
    Instr {
        /// Code address the instruction is fetched from.
        pc: Addr,
        /// Optional data access performed by the instruction.
        data: Option<(DataKind, Addr)>,
    },
    /// A `clflush target` instruction fetched from `pc`: evicts the line
    /// from the entire hierarchy.
    Flush {
        /// Code address the instruction is fetched from.
        pc: Addr,
        /// Byte address whose line is flushed.
        target: Addr,
    },
    /// Voluntarily yield the CPU (models `sched_yield`/`sleep`); the
    /// instruction at `pc` is still fetched and retired.
    Yield {
        /// Code address of the yielding instruction.
        pc: Addr,
    },
    /// The program has finished; the process terminates.
    Done,
}

/// What the hardware reported for the most recently executed op.
///
/// Delivered to [`Program::observe`] after every retired instruction,
/// mirroring what real attack code gets from `rdtscp` around an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Index of the retired instruction within this process.
    pub instr_index: u64,
    /// Latency of the data access, if the op had one.
    pub data_latency: Option<u64>,
    /// Latency of the `clflush`, if the op was a flush.
    pub flush_latency: Option<u64>,
    /// Current cycle on this hardware context after the op.
    pub now: u64,
}

/// A process body: an instruction generator plus an observation sink.
///
/// Implementations live mostly in `timecache-workloads` (synthetic SPEC/
/// PARSEC-like generators, the RSA victim) and `timecache-attacks`
/// (flush+reload and friends); [`crate::programs`] provides small built-ins
/// for tests and examples.
pub trait Program {
    /// Produces the next instruction. Called once per retired instruction;
    /// return [`Op::Done`] to terminate the process.
    fn next_op(&mut self) -> Op;

    /// Receives timing feedback for the instruction that just retired.
    /// Programs that do not measure anything can keep the default no-op.
    fn observe(&mut self, _obs: Observation) {}

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "program"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two;

    impl Program for Two {
        fn next_op(&mut self) -> Op {
            Op::Done
        }
    }

    #[test]
    fn default_name_and_observe() {
        let mut p = Two;
        assert_eq!(p.name(), "program");
        p.observe(Observation {
            instr_index: 0,
            data_latency: None,
            flush_latency: None,
            now: 0,
        });
        assert_eq!(p.next_op(), Op::Done);
    }

    #[test]
    fn ops_are_value_types() {
        let a = Op::Instr {
            pc: 4,
            data: Some((DataKind::Load, 64)),
        };
        assert_eq!(a, a);
        assert_ne!(a, Op::Done);
    }
}
