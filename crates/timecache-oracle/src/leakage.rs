//! The statistical leakage oracle: every attack channel, assessed
//! uniformly with Welch's t-test.
//!
//! For each [`Channel`] the oracle runs two *arms* — victim active
//! (secret-dependent access happens) and victim idle/secret-0 — collects
//! the attacker-observable latency sample per round, and compares the arms
//! with [`welch_t`]. This is done twice: at **baseline** (no defense),
//! where |t| must exceed [`LEAKAGE_THRESHOLD`] (the channel genuinely
//! works), and under the channel's **defended** configuration, where |t|
//! must stay below it (the defense genuinely closes it).
//!
//! Channels are modeled directly at the [`Hierarchy`] level with an
//! explicit save/restore context-switch choreography (the [`Duet`]
//! helper), so the oracle is independent of the attack programs in
//! `timecache-attacks` — it cross-checks them rather than re-using them.
//!
//! Defended configurations follow the paper's taxonomy: reuse channels
//! (flush+reload, evict+reload, coherence, covert, spectre, RSA) fall to
//! plain TimeCache; flush+flush additionally needs the constant-time
//! `clflush` of Section VII-C; contention channels (prime+probe,
//! evict+time) and the LRU-state channel travel through tag/replacement
//! state that TimeCache deliberately leaves shared, and are closed by the
//! keyed (randomized) index the paper points to.

use std::collections::BTreeMap;

use crate::welch::{welch_t, LEAKAGE_THRESHOLD};
use timecache_core::TimeCacheConfig;
use timecache_sim::{
    AccessKind, CacheConfig, ContextSnapshot, Hierarchy, HierarchyConfig, IndexFn, LineAddr,
    SecurityMode,
};

/// One attack channel under assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    FlushReload,
    EvictReload,
    PrimeProbe,
    FlushFlush,
    EvictTime,
    LruState,
    Coherence,
    Covert,
    Spectre,
    Rsa,
}

impl Channel {
    /// Every channel, in matrix order.
    pub const ALL: [Channel; 10] = [
        Channel::FlushReload,
        Channel::EvictReload,
        Channel::PrimeProbe,
        Channel::FlushFlush,
        Channel::EvictTime,
        Channel::LruState,
        Channel::Coherence,
        Channel::Covert,
        Channel::Spectre,
        Channel::Rsa,
    ];

    /// Stable name (CSV column value).
    pub fn name(self) -> &'static str {
        match self {
            Channel::FlushReload => "flush+reload",
            Channel::EvictReload => "evict+reload",
            Channel::PrimeProbe => "prime+probe",
            Channel::FlushFlush => "flush+flush",
            Channel::EvictTime => "evict+time",
            Channel::LruState => "lru-state",
            Channel::Coherence => "coherence",
            Channel::Covert => "covert",
            Channel::Spectre => "spectre",
            Channel::Rsa => "rsa",
        }
    }

    /// The defended configuration's label.
    pub fn defense(self) -> &'static str {
        match self {
            Channel::PrimeProbe | Channel::EvictTime => "timecache+keyed-llc",
            Channel::LruState => "timecache+keyed-l1d",
            Channel::FlushFlush => "timecache+ct-clflush",
            _ => "timecache",
        }
    }
}

const LINE: u64 = 64;
/// L1: 1 KiB, 2-way → 8 sets, 512 B span.
const L1_SPAN: u64 = 512;
const L1_SETS: u64 = 8;
/// LLC: 8 KiB, 4-way → 32 sets, 2 KiB span.
const LLC_SPAN: u64 = 2048;
const LLC_SETS: u64 = 32;
const LLC_WAYS: u64 = 4;

/// The victim's secret-dependent line (L1 set 5, LLC set 5 under modulo).
const TARGET: u64 = 0x2_0000 + 5 * LINE;
/// Same LLC *and* L1 set as [`TARGET`] (modulo): LLC eviction lines.
fn evictor(k: u64) -> u64 {
    TARGET + k * LLC_SPAN
}
/// Same L1 set as [`TARGET`], different LLC set: keeps the idle arm's L1
/// pressure identical to the active arm's without touching the LLC set.
fn decoy(k: u64) -> u64 {
    TARGET + 8 * LINE + k * LLC_SPAN
}
/// LRU-channel filler/evictor: same L1 set as [`TARGET`], distinct LLC
/// sets, so the channel lives purely in L1 replacement state.
const LRU_FILLER: u64 = TARGET + L1_SPAN;
const LRU_EVICTOR: u64 = TARGET + 2 * L1_SPAN;
/// Covert-channel bit lines (adjacent sets; the receiver probes bit 1).
const COVERT_0: u64 = 0x3_0000;
const COVERT_1: u64 = 0x3_0000 + LINE;
/// Spectre probe array entries for secret bit 0/1.
const SPECTRE_T0: u64 = 0x4_0000;
const SPECTRE_T1: u64 = 0x4_0000 + LINE;
/// RSA square-and-multiply lines: the squaring code (always touched) and
/// the multiply routine (touched only for 1-bits of the exponent).
const RSA_SQUARE: u64 = 0x5_0000;
const RSA_MULTIPLY: u64 = 0x5_0000 + LINE;

/// Smallest key whose permutation maps `isolate` to a set none of `others`
/// lands in — the oracle's stand-in for "the attacker cannot build an
/// eviction set without the key".
fn pick_key(num_sets: u64, isolate: u64, others: &[u64]) -> u64 {
    let set = |key: u64, addr: u64| {
        IndexFn::Keyed { key }.set_of(LineAddr::from_raw(addr / LINE), num_sets)
    };
    (1u64..65_536)
        .find(|&k| {
            let s = set(k, isolate);
            others.iter().all(|&o| set(k, o) != s)
        })
        .expect("a non-colliding key exists")
}

/// Hierarchy configuration for one channel/arm.
fn config(channel: Channel, defended: bool) -> HierarchyConfig {
    let cores = if channel == Channel::Coherence { 2 } else { 1 };
    let mut cfg = HierarchyConfig::with_cores(cores);
    cfg.l1i = CacheConfig::new(1024, 2, LINE);
    cfg.l1d = CacheConfig::new(1024, 2, LINE);
    cfg.llc = CacheConfig::new(8192, LLC_WAYS as u32, LINE);
    if defended {
        // 32-bit timestamps: wide enough that these short runs never roll
        // over, so the arms cannot desynchronize through rollover resets.
        let mut tc = TimeCacheConfig::new(32);
        if channel == Channel::FlushFlush {
            tc = tc.with_constant_time_clflush(true);
        }
        cfg.security = SecurityMode::TimeCache(tc);
        match channel {
            Channel::PrimeProbe => {
                let primes: Vec<u64> = (1..=LLC_WAYS).map(evictor).collect();
                cfg.llc.index = IndexFn::Keyed {
                    key: pick_key(LLC_SETS, TARGET, &primes),
                };
            }
            Channel::EvictTime => {
                let lines: Vec<u64> = (1..=8).flat_map(|k| [evictor(k), decoy(k)]).collect();
                cfg.llc.index = IndexFn::Keyed {
                    key: pick_key(LLC_SETS, TARGET, &lines),
                };
            }
            Channel::LruState => {
                cfg.l1d.index = IndexFn::Keyed {
                    key: pick_key(L1_SETS, TARGET, &[LRU_FILLER, LRU_EVICTOR]),
                };
            }
            _ => {}
        }
    }
    cfg
}

const VICTIM: u32 = 1;
const ATTACKER: u32 = 2;

/// Two time-multiplexed processes on one hardware context, with the full
/// save/restore choreography a kernel would perform at each switch.
struct Duet {
    h: Hierarchy,
    now: u64,
    current: u32,
    snaps: BTreeMap<u32, ContextSnapshot>,
}

impl Duet {
    fn new(cfg: HierarchyConfig) -> Duet {
        Duet {
            h: Hierarchy::new(cfg).expect("leakage configs are valid"),
            now: 1,
            current: ATTACKER,
            snaps: BTreeMap::new(),
        }
    }

    fn switch_to(&mut self, pid: u32) {
        if pid == self.current {
            return;
        }
        let snap = self.h.save_context(0, 0, self.now);
        self.snaps.insert(self.current, snap);
        let cost = self.h.restore_context(0, 0, self.snaps.get(&pid), self.now);
        self.now += cost.comparator_cycles + cost.transfer_lines + 1;
        self.current = pid;
    }

    fn load(&mut self, addr: u64) -> u64 {
        let out = self.h.access(0, 0, AccessKind::Load, addr, self.now);
        self.now += out.latency + 1;
        out.latency
    }

    fn flush(&mut self, addr: u64) -> u64 {
        let lat = self.h.clflush(addr);
        self.now += lat + 1;
        lat
    }
}

/// Rounds discarded while per-round state reaches its steady cycle.
const WARMUP: usize = 2;

/// Collects one arm's attacker-observable samples for a channel.
fn collect(channel: Channel, defended: bool, active: bool, rounds: usize) -> Vec<f64> {
    if channel == Channel::Coherence {
        return collect_coherence(defended, active, rounds);
    }
    let mut d = Duet::new(config(channel, defended));
    let mut out = Vec::with_capacity(rounds);
    for round in 0..rounds + WARMUP {
        let sample = match channel {
            Channel::FlushReload => {
                d.switch_to(ATTACKER);
                d.flush(TARGET);
                d.switch_to(VICTIM);
                if active {
                    d.load(TARGET);
                }
                d.switch_to(ATTACKER);
                d.load(TARGET) as f64
            }
            Channel::EvictReload => {
                d.switch_to(ATTACKER);
                for k in 1..=8 {
                    d.load(evictor(k));
                }
                d.switch_to(VICTIM);
                if active {
                    d.load(TARGET);
                }
                d.switch_to(ATTACKER);
                d.load(TARGET) as f64
            }
            Channel::PrimeProbe => {
                d.switch_to(ATTACKER);
                for k in 1..=LLC_WAYS {
                    d.load(evictor(k));
                }
                d.switch_to(VICTIM);
                if active {
                    d.load(TARGET);
                }
                d.switch_to(ATTACKER);
                (1..=LLC_WAYS).map(|k| d.load(evictor(k))).sum::<u64>() as f64
            }
            Channel::FlushFlush => {
                d.switch_to(ATTACKER);
                d.flush(TARGET);
                d.switch_to(VICTIM);
                if active {
                    d.load(TARGET);
                }
                d.switch_to(ATTACKER);
                d.flush(TARGET) as f64
            }
            Channel::EvictTime => {
                // Victim-timed: the sample is the victim's own access
                // latency (observable to the attacker as total runtime).
                d.switch_to(VICTIM);
                d.load(TARGET);
                d.switch_to(ATTACKER);
                for k in 1..=8 {
                    d.load(if active { evictor(k) } else { decoy(k) });
                }
                d.switch_to(VICTIM);
                d.load(TARGET) as f64
            }
            Channel::LruState => {
                d.switch_to(ATTACKER);
                d.load(TARGET);
                d.load(LRU_FILLER);
                d.switch_to(VICTIM);
                if active {
                    d.load(TARGET);
                }
                d.switch_to(ATTACKER);
                d.load(LRU_EVICTOR);
                d.load(TARGET) as f64
            }
            Channel::Covert => {
                // Sender (victim role) transmits a 1-bit (active) or 0-bit
                // (idle) per round; the receiver probes the 1-line.
                d.switch_to(ATTACKER);
                d.flush(COVERT_1);
                d.flush(COVERT_0);
                d.switch_to(VICTIM);
                d.load(if active { COVERT_1 } else { COVERT_0 });
                d.switch_to(ATTACKER);
                d.load(COVERT_1) as f64
            }
            Channel::Spectre => {
                // The transient gadget touches probe_array[bit]; the
                // attacker reloads both entries and takes the difference.
                d.switch_to(ATTACKER);
                d.flush(SPECTRE_T0);
                d.flush(SPECTRE_T1);
                d.switch_to(VICTIM);
                d.load(if active { SPECTRE_T1 } else { SPECTRE_T0 });
                d.switch_to(ATTACKER);
                let t1 = d.load(SPECTRE_T1) as f64;
                let t0 = d.load(SPECTRE_T0) as f64;
                t1 - t0
            }
            Channel::Rsa => {
                // Square-and-multiply: squaring always runs; the multiply
                // routine runs only for a 1-bit of the exponent.
                d.switch_to(ATTACKER);
                d.flush(RSA_MULTIPLY);
                d.switch_to(VICTIM);
                d.load(RSA_SQUARE);
                if active {
                    d.load(RSA_MULTIPLY);
                }
                d.switch_to(ATTACKER);
                d.load(RSA_MULTIPLY) as f64
            }
            Channel::Coherence => unreachable!("handled above"),
        };
        if round >= WARMUP {
            out.push(sample);
        }
    }
    out
}

/// Invalidate+transfer: attacker and victim free-run on different cores,
/// no context switches — the flush itself clears the attacker's s-bit.
fn collect_coherence(defended: bool, active: bool, rounds: usize) -> Vec<f64> {
    let mut h = Hierarchy::new(config(Channel::Coherence, defended)).expect("valid config");
    let mut now = 1u64;
    let mut out = Vec::with_capacity(rounds);
    for round in 0..rounds + WARMUP {
        let lat = h.clflush(TARGET);
        now += lat + 1;
        if active {
            let o = h.access(0, 0, AccessKind::Store, TARGET, now);
            now += o.latency + 1;
        }
        let o = h.access(1, 0, AccessKind::Load, TARGET, now);
        now += o.latency + 1;
        if round >= WARMUP {
            out.push(o.latency as f64);
        }
    }
    out
}

/// One channel's t-statistics at baseline and under its defense.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assessment {
    pub channel: Channel,
    /// Samples per arm.
    pub rounds: usize,
    /// Welch's t between active/idle arms with no defense.
    pub t_baseline: f64,
    /// Welch's t between active/idle arms under [`Channel::defense`].
    pub t_defended: f64,
}

impl Assessment {
    /// The undefended channel is statistically detectable (it must be —
    /// otherwise the "defense" below proves nothing).
    pub fn baseline_leaks(&self) -> bool {
        self.t_baseline.abs() > LEAKAGE_THRESHOLD
    }

    /// The defended channel is statistically silent.
    pub fn defended_silent(&self) -> bool {
        self.t_defended.abs() < LEAKAGE_THRESHOLD
    }

    /// Both criteria hold.
    pub fn pass(&self) -> bool {
        self.baseline_leaks() && self.defended_silent()
    }
}

/// Assesses one channel with `rounds` samples per arm.
pub fn assess(channel: Channel, rounds: usize) -> Assessment {
    let t = |defended: bool| {
        welch_t(
            &collect(channel, defended, true, rounds),
            &collect(channel, defended, false, rounds),
        )
    };
    Assessment {
        channel,
        rounds,
        t_baseline: t(false),
        t_defended: t(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_channel_leaks_at_baseline_and_is_silenced_by_its_defense() {
        for channel in Channel::ALL {
            let a = assess(channel, 40);
            assert!(
                a.baseline_leaks(),
                "{} must leak at baseline: {a:?}",
                channel.name()
            );
            assert!(
                a.defended_silent(),
                "{} must be silent under {}: {a:?}",
                channel.name(),
                channel.defense()
            );
        }
    }

    #[test]
    fn assessments_are_deterministic() {
        assert_eq!(
            assess(Channel::PrimeProbe, 24),
            assess(Channel::PrimeProbe, 24)
        );
    }

    #[test]
    fn keyed_index_key_search_isolates_the_target() {
        let primes: Vec<u64> = (1..=LLC_WAYS).map(evictor).collect();
        let key = pick_key(LLC_SETS, TARGET, &primes);
        let f = IndexFn::Keyed { key };
        let s = f.set_of(LineAddr::from_raw(TARGET / LINE), LLC_SETS);
        for p in primes {
            assert_ne!(f.set_of(LineAddr::from_raw(p / LINE), LLC_SETS), s);
        }
    }
}
