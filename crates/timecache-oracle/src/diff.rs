//! The differential driver: replays one trace through the real
//! [`Hierarchy`] and the reference model in lock-step, comparing every
//! observable — per-access [`timecache_sim::AccessOutcome`] (latency class,
//! serving level, first-access decisions), `clflush` latencies, context
//! [`timecache_sim::SwitchCost`]s, and the final
//! [`timecache_sim::HierarchyStats`].
//!
//! The driver owns the pieces the `System` scheduler would normally supply:
//! a per-hardware-context *current pid*, per-pid snapshot tables (one per
//! side), and a global cycle clock advanced by the real side's latencies so
//! both models see identical timestamps. A `Switch` to the incumbent pid is
//! a no-op (the OS layer's CR3 rule); a `Switch` to a never-seen pid
//! restores `None`, i.e. a fresh process.

use std::collections::BTreeMap;

use crate::generate::generate;
use crate::refmodel::{BugKind, RefContextSnapshot, RefHierarchy};
use crate::shrink::shrink;
use crate::trace::{Event, TraceDoc};
use timecache_sim::{AccessKind, Addr, BatchClock, ContextSnapshot, Hierarchy};
use timecache_telemetry::Telemetry;

/// A reference-vs-simulator disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Event index the disagreement surfaced at (`None`: the final
    /// statistics comparison after the last event).
    pub step: Option<usize>,
    /// The event being replayed, if any.
    pub event: Option<Event>,
    /// Which observable disagreed.
    pub field: &'static str,
    /// The real simulator's value (Debug-formatted).
    pub real: String,
    /// The reference model's value (Debug-formatted).
    pub reference: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(step) => write!(f, "step {step} ({:?}): ", self.event)?,
            None => write!(f, "after final event: ")?,
        }
        write!(
            f,
            "{} diverged\n  simulator: {}\n  reference: {}",
            self.field, self.real, self.reference
        )
    }
}

/// Successful replay summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Events replayed.
    pub events: usize,
    /// Driver cycle clock after the last event.
    pub final_cycle: u64,
}

fn check<T: std::fmt::Debug>(
    step: usize,
    event: Event,
    field: &'static str,
    real: &T,
    reference: &T,
) -> Result<(), Divergence> {
    let a = format!("{real:?}");
    let b = format!("{reference:?}");
    if a == b {
        Ok(())
    } else {
        Err(Divergence {
            step: Some(step),
            event: Some(event),
            field,
            real: a,
            reference: b,
        })
    }
}

/// Replays `doc` through both models. `bug`, if set, is injected into the
/// *reference* side — divergence detection is symmetric, so mutation tests
/// use this to prove the harness catches s-bit defects.
pub fn replay(doc: &TraceDoc, bug: Option<BugKind>) -> Result<ReplaySummary, Divergence> {
    let cfg = doc.cfg.hierarchy();
    let mut reference = RefHierarchy::new(&cfg, bug);
    let mut real = Hierarchy::new(cfg).expect("trace configs are always valid");

    let cores = doc.cfg.cores;
    let smt = doc.cfg.smt;
    // Hardware context i boots running pid i.
    let mut current: Vec<u32> = (0..(cores * smt) as u32).collect();
    let mut snaps_real: BTreeMap<u32, ContextSnapshot> = BTreeMap::new();
    let mut snaps_ref: BTreeMap<u32, RefContextSnapshot> = BTreeMap::new();
    let mut now: u64 = 1;
    let mut batch: Vec<(AccessKind, Addr)> = Vec::new();

    let mut step = 0;
    while step < doc.events.len() {
        let ev = doc.events[step];
        match ev {
            Event::Access {
                core,
                thread,
                kind,
                addr,
            } => {
                let (core, thread) = (core % cores, thread % smt);
                // Gather the run of consecutive accesses by this hardware
                // context and push it through the simulator's batched API —
                // this doubles as a continuous differential test that
                // `access_batch` matches the reference's one-at-a-time
                // semantics. The reference model stays per-access (it is
                // deliberately simple); its clock sequence is reconstructed
                // from the real side's latencies, exactly as the serial
                // driver advanced `now`.
                batch.clear();
                batch.push((kind, addr));
                let mut end = step + 1;
                while let Some(&Event::Access {
                    core: c,
                    thread: t,
                    kind,
                    addr,
                }) = doc.events.get(end)
                {
                    if (c % cores, t % smt) != (core, thread) {
                        break;
                    }
                    batch.push((kind, addr));
                    end += 1;
                }
                let (outs, batch_end) =
                    real.access_batch(core, thread, &batch, now, BatchClock::LatencyPlus(1));
                for (j, (&(kind, addr), a)) in batch.iter().zip(&outs).enumerate() {
                    let b = reference.access(core, thread, kind, addr, now);
                    let ev = doc.events[step + j];
                    check(step + j, ev, "access outcome", a, &b)?;
                    now += a.latency + 1;
                }
                debug_assert_eq!(now, batch_end);
                now = batch_end;
                step = end;
                continue;
            }
            Event::Flush { addr } => {
                let a = real.clflush(addr);
                let b = reference.clflush(addr);
                check(step, ev, "clflush latency", &a, &b)?;
                now += a + 1;
            }
            Event::Switch { core, thread, pid } => {
                let (core, thread) = (core % cores, thread % smt);
                let ctx = core * smt + thread;
                if current[ctx] == pid {
                    step += 1;
                    continue;
                }
                let old = current[ctx];
                snaps_real.insert(old, real.save_context(core, thread, now));
                snaps_ref.insert(old, reference.save_context(core, thread, now));
                let a = real.restore_context(core, thread, snaps_real.get(&pid), now);
                let b = reference.restore_context(core, thread, snaps_ref.get(&pid), now);
                check(step, ev, "switch cost", &a, &b)?;
                current[ctx] = pid;
                now += a.comparator_cycles + a.transfer_lines + 1;
            }
            Event::Fork {
                core,
                thread,
                child,
            } => {
                // The child inherits the running parent's caching context
                // as of the fork instant (COW address-space sharing).
                let (core, thread) = (core % cores, thread % smt);
                snaps_real.insert(child, real.save_context(core, thread, now));
                snaps_ref.insert(child, reference.save_context(core, thread, now));
                now += 1;
            }
        }
        step += 1;
    }

    let a = real.stats();
    let b = reference.stats();
    if a != b {
        return Err(Divergence {
            step: None,
            event: None,
            field: "final statistics",
            real: format!("{a:?}"),
            reference: format!("{b:?}"),
        });
    }
    Ok(ReplaySummary {
        events: doc.events.len(),
        final_cycle: now,
    })
}

/// A divergence found by [`run_random`], already minimized.
#[derive(Debug, Clone)]
pub struct FoundDivergence {
    /// Generator seed of the offending trace.
    pub seed: u64,
    /// The (re-derived, post-shrink) divergence.
    pub divergence: Divergence,
    /// The minimized trace; serialize with
    /// [`TraceDoc::to_text`] and check it into `tests/corpus/`.
    pub shrunk: TraceDoc,
}

/// Outcome of a random differential campaign.
#[derive(Debug, Clone)]
pub struct RandomReport {
    /// Traces replayed (including the diverging one, if any).
    pub traces: u64,
    /// First divergence found, shrunk; `None` means a clean run.
    pub divergence: Option<FoundDivergence>,
}

/// Replays `count` generated traces starting at `seed`, stopping at (and
/// shrinking) the first divergence. Telemetry counters
/// `oracle_traces_total` / `oracle_divergences_total` track progress when
/// `tel` is enabled.
pub fn run_random(count: u64, seed: u64, bug: Option<BugKind>, tel: &Telemetry) -> RandomReport {
    let counters = tel.registry().map(|reg| {
        (
            reg.counter("oracle_traces_total", "Differential traces replayed", &[]),
            reg.counter(
                "oracle_divergences_total",
                "Reference-vs-simulator divergences found",
                &[],
            ),
        )
    });
    for i in 0..count {
        let s = seed.wrapping_add(i);
        let doc = generate(s);
        if let Some((traces, _)) = &counters {
            traces.inc();
        }
        if replay(&doc, bug).is_err() {
            if let Some((_, divergences)) = &counters {
                divergences.inc();
            }
            let shrunk = shrink(&doc, |c| replay(c, bug).is_err());
            let divergence = replay(&shrunk, bug).expect_err("shrink preserves failure");
            return RandomReport {
                traces: i + 1,
                divergence: Some(FoundDivergence {
                    seed: s,
                    divergence,
                    shrunk,
                }),
            };
        }
    }
    RandomReport {
        traces: count,
        divergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_traces_agree_smoke() {
        for seed in 0..200 {
            let doc = generate(seed);
            if let Err(d) = replay(&doc, None) {
                panic!("seed {seed} diverged: {d}\ntrace:\n{}", doc.to_text());
            }
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let doc = generate(7);
        assert_eq!(replay(&doc, None), replay(&doc, None));
    }
}
