//! Seeded random trace generation for the differential oracle.
//!
//! Each seed deterministically produces one [`TraceDoc`]: a random tiny
//! configuration (core/SMT count, security mode, mitigation flags) and a
//! random interleaving of accesses, flushes, context switches, and forks by
//! a handful of processes over a small, deliberately conflict-heavy address
//! pool. The pool is drawn from a few LLC sets at several aliasing strides
//! so that with 4–16-line caches, evictions, inclusive back-invalidations,
//! and coherence traffic all occur within a few dozen events.

use crate::trace::{Event, TraceConfig, TraceDoc};
use timecache_core::FastRng;
use timecache_sim::AccessKind;

/// LLC span of the trace configuration's fixed geometry (8 sets × 64 B
/// lines): addresses this far apart alias to the same LLC set.
const LLC_SPAN: u64 = 512;

/// Generates the trace for `seed`.
pub fn generate(seed: u64) -> TraceDoc {
    let mut r = FastRng::seed_from_u64(seed);
    let cores = 1 + r.next_below(2) as usize;
    let smt = 1 + r.next_below(2) as usize;
    // Mostly TimeCache (that is where the subtle state lives), with narrow
    // widths so rollovers actually happen inside short traces.
    let ts_bits = match r.next_below(8) {
        0 => None,
        1..=3 => Some(8),
        4 | 5 => Some(10),
        _ => Some(32),
    };
    let cfg = TraceConfig {
        cores,
        smt,
        ts_bits,
        constant_time_clflush: ts_bits.is_some() && r.next_below(4) == 0,
        dram_wait: ts_bits.is_some() && r.next_below(4) == 0,
    };

    // A pool of ~10 addresses over 4 LLC sets and 3 aliasing strides:
    // dense enough that random traces constantly collide.
    let pool: Vec<u64> = (0..10)
        .map(|_| {
            let set = r.next_below(4);
            let alias = r.next_below(3);
            let offset = r.next_below(64);
            alias * LLC_SPAN + set * 64 + offset
        })
        .collect();
    // Scheduled pids: a few low numbers; forks mint fresh high ones.
    let pids = 4 + r.next_below(4) as u32;
    let mut next_child = 100;

    let n = 16 + r.next_below(48) as usize;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let core = r.next_below(cores as u64) as usize;
        let thread = r.next_below(smt as u64) as usize;
        events.push(match r.next_below(100) {
            0..=59 => Event::Access {
                core,
                thread,
                kind: match r.next_below(100) {
                    0..=59 => AccessKind::Load,
                    60..=84 => AccessKind::Store,
                    _ => AccessKind::IFetch,
                },
                addr: pool[r.next_below(pool.len() as u64) as usize],
            },
            60..=69 => Event::Flush {
                addr: pool[r.next_below(pool.len() as u64) as usize],
            },
            70..=91 => Event::Switch {
                core,
                thread,
                pid: r.next_below(pids as u64) as u32,
            },
            _ => {
                next_child += 1;
                Event::Fork {
                    core,
                    thread,
                    child: next_child,
                }
            }
        });
    }
    TraceDoc { cfg, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(42), generate(42));
        assert_ne!(generate(42), generate(43));
    }

    #[test]
    fn generated_traces_round_trip_through_text() {
        for seed in 0..50 {
            let doc = generate(seed);
            assert_eq!(TraceDoc::from_text(&doc.to_text()).unwrap(), doc);
        }
    }
}
