//! Greedy delta-debugging shrinker for diverging traces.
//!
//! Given a trace on which some predicate holds (for the oracle: "the real
//! simulator diverges from the reference model"), [`shrink`] removes
//! contiguous chunks of events — halving the chunk size down to single
//! events — keeping any removal that preserves the predicate, until no
//! single event can be removed. Trace events are removal-safe by
//! construction (see [`crate::trace`]), so every candidate is well-formed.

use crate::trace::TraceDoc;

/// Minimizes `doc` under `still_fails` (which must hold for `doc` itself).
/// Returns the smallest trace found; `still_fails` holds for the result.
pub fn shrink<F: Fn(&TraceDoc) -> bool>(doc: &TraceDoc, still_fails: F) -> TraceDoc {
    let mut best = doc.clone();
    debug_assert!(still_fails(&best), "shrink needs a failing input");
    let mut chunk = (best.events.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < best.events.len() {
            let end = (start + chunk).min(best.events.len());
            let mut candidate = best.clone();
            candidate.events.drain(start..end);
            if still_fails(&candidate) {
                best = candidate;
                progressed = true;
                // Keep `start` in place: it now indexes fresh events.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            if !progressed {
                return best;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Event, TraceConfig};
    use timecache_sim::AccessKind;

    fn doc_with(addrs: &[u64]) -> TraceDoc {
        TraceDoc {
            cfg: TraceConfig {
                cores: 1,
                smt: 1,
                ts_bits: Some(8),
                constant_time_clflush: false,
                dram_wait: false,
            },
            events: addrs
                .iter()
                .map(|&a| Event::Access {
                    core: 0,
                    thread: 0,
                    kind: AccessKind::Load,
                    addr: a,
                })
                .collect(),
        }
    }

    #[test]
    fn shrinks_to_the_two_essential_events() {
        // Predicate: the trace still contains both 0x111 and 0x999.
        let addrs: Vec<u64> = (0..64)
            .map(|i| match i {
                13 => 0x111,
                47 => 0x999,
                _ => i,
            })
            .collect();
        let doc = doc_with(&addrs);
        let fails = |d: &TraceDoc| {
            let has = |needle: u64| {
                d.events
                    .iter()
                    .any(|e| matches!(e, Event::Access { addr, .. } if *addr == needle))
            };
            has(0x111) && has(0x999)
        };
        let small = shrink(&doc, fails);
        assert_eq!(small.events.len(), 2);
        assert!(fails(&small));
    }

    #[test]
    fn single_event_predicate_shrinks_to_one() {
        let doc = doc_with(&(0..33).collect::<Vec<_>>());
        let small = shrink(&doc, |d| !d.events.is_empty());
        assert_eq!(small.events.len(), 1);
    }
}
