//! Correctness oracles for the TimeCache simulator.
//!
//! The optimized simulator in `timecache-sim` has accumulated hot-path
//! machinery (sentinel tag-folding, precomputed geometry, transposed
//! timestamp planes) that is hard to audit by eye. This crate checks it
//! against two independent oracles:
//!
//! * a **differential oracle** ([`refmodel`], [`diff`]): a deliberately
//!   slow, executable transcription of the paper's semantics, replayed in
//!   lock-step with the real [`timecache_sim::Hierarchy`] over randomly
//!   generated multi-process traces ([`generate`]), with greedy
//!   delta-debugging shrinking ([`shrink`]) of any diverging trace; and
//! * a **statistical leakage oracle** ([`welch`], [`leakage`]): a
//!   TVLA-style Welch's t-test over attacker-observed latency samples
//!   (victim-accessed vs. not) applied uniformly to every attack channel,
//!   asserting the channel is wide open at baseline and closed under its
//!   defended configuration.
//!
//! Traces have a stable text format ([`trace`]) so shrunken divergences can
//! be checked in under `tests/corpus/` and replayed forever after.

pub mod diff;
pub mod generate;
pub mod leakage;
pub mod refmodel;
pub mod shrink;
pub mod trace;
pub mod welch;

pub use diff::{replay, run_random, Divergence, FoundDivergence, RandomReport, ReplaySummary};
pub use generate::generate;
pub use leakage::{assess, Assessment, Channel};
pub use refmodel::{BugKind, RefHierarchy};
pub use shrink::shrink;
pub use trace::{Event, TraceConfig, TraceDoc, TraceError};
pub use welch::{welch_t, LEAKAGE_THRESHOLD};
