//! Differential-oracle campaign runner (the `oracle-differential` CI job).
//!
//! Replays a fixed-seed batch of random traces through the reference model
//! and the real simulator. On a divergence, prints the minimized trace in
//! corpus format (ready to check into `tests/corpus/`) and exits nonzero.
//!
//! ```text
//! oracle_diff [--traces N] [--seed S] [--bug NAME] [--telemetry]
//! ```
//!
//! `--bug` injects a deliberate defect into the reference model
//! (`skip-grant-on-fill`, `skip-sbit-clear-on-evict`,
//! `first-access-treated-as-hit`, `ignore-rollover`) to demonstrate the
//! harness catching it; such runs exit nonzero *by design*.

use std::process::ExitCode;
use timecache_oracle::{run_random, BugKind};
use timecache_telemetry::Telemetry;

fn parse_bug(name: &str) -> BugKind {
    match name {
        "skip-grant-on-fill" => BugKind::SkipGrantOnFill,
        "skip-sbit-clear-on-evict" => BugKind::SkipSbitClearOnEvict,
        "first-access-treated-as-hit" => BugKind::FirstAccessTreatedAsHit,
        "ignore-rollover" => BugKind::IgnoreRollover,
        other => {
            eprintln!("unknown --bug {other:?}");
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    let mut traces: u64 = 10_000;
    let mut seed: u64 = 0xD1FF;
    let mut bug: Option<BugKind> = None;
    let mut telemetry = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--traces" => {
                traces = value("--traces").parse().unwrap_or_else(|e| {
                    eprintln!("bad --traces: {e}");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|e| {
                    eprintln!("bad --seed: {e}");
                    std::process::exit(2);
                })
            }
            "--bug" => bug = Some(parse_bug(&value("--bug"))),
            "--telemetry" => telemetry = true,
            "--help" | "-h" => {
                println!("usage: oracle_diff [--traces N] [--seed S] [--bug NAME] [--telemetry]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let tel = if telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let report = run_random(traces, seed, bug, &tel);
    match report.divergence {
        None => {
            println!(
                "oracle-differential: {} traces from seed {:#x}, zero divergences",
                report.traces, seed
            );
            ExitCode::SUCCESS
        }
        Some(found) => {
            eprintln!(
                "oracle-differential: divergence at generator seed {} (trace {}/{})",
                found.seed, report.traces, traces
            );
            eprintln!("{}", found.divergence);
            eprintln!(
                "minimized to {} events; corpus format:\n{}",
                found.shrunk.events.len(),
                found.shrunk.to_text()
            );
            ExitCode::FAILURE
        }
    }
}
