//! Welch's t-test, the TVLA-style statistical leakage criterion.
//!
//! Two sample populations of attacker-observed latencies — one with the
//! victim active, one idle — are compared with Welch's unequal-variance
//! t-statistic. |t| above [`LEAKAGE_THRESHOLD`] means the populations are
//! distinguishable: the channel leaks. The threshold 4.5 is the standard
//! TVLA pass/fail line (around a 1e-5 false-positive rate for the sample
//! sizes used here).
//!
//! The simulator is deterministic, so within one arm the samples are often
//! *constant*; a literal sample variance of zero would make `t` undefined.
//! A small variance floor keeps the statistic well-behaved: identical
//! constant arms give `t = 0`, separated constant arms give a huge finite
//! |t|.

/// TVLA leakage threshold on |t|.
pub const LEAKAGE_THRESHOLD: f64 = 4.5;

/// Variance floor applied per-arm so deterministic (zero-variance) sample
/// sets still yield a finite statistic.
const VAR_FLOOR: f64 = 1e-2;

fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.max(VAR_FLOOR))
}

/// Welch's t-statistic between two sample sets. Returns 0.0 when either
/// set has fewer than two samples (no evidence either way).
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return 0.0;
    }
    let (ma, va) = mean_var(a);
    let (mb, vb) = mean_var(b);
    (ma - mb) / (va / a.len() as f64 + vb / b.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_constant_arms_score_zero() {
        let a = vec![200.0; 40];
        assert_eq!(welch_t(&a, &a), 0.0);
    }

    #[test]
    fn separated_constant_arms_score_far_past_threshold() {
        let hit = vec![2.0; 40];
        let miss = vec![200.0; 40];
        assert!(welch_t(&miss, &hit) > LEAKAGE_THRESHOLD * 10.0);
        assert!(welch_t(&hit, &miss) < -LEAKAGE_THRESHOLD * 10.0);
    }

    #[test]
    fn overlapping_noisy_arms_stay_below_threshold() {
        // Same alternating pattern in both arms: means equal, t == 0.
        let a: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 2.0 } else { 30.0 })
            .collect();
        let b = a.clone();
        assert!(welch_t(&a, &b).abs() < LEAKAGE_THRESHOLD);
    }

    #[test]
    fn tiny_samples_are_inconclusive() {
        assert_eq!(welch_t(&[1.0], &[500.0]), 0.0);
    }
}
