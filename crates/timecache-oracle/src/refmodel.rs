//! The executable reference model: a deliberately slow, line-by-line
//! transcription of the paper's semantics as documented in DESIGN.md.
//!
//! Nothing here is optimized. Lookups are linear scans over plain structs,
//! s-bits are `BTreeSet<usize>` per slot, fill timestamps are kept at full
//! `u64` precision and truncated only at the comparison point, and the
//! directory is an address-keyed map. The point is that every rule from
//! Section V of the paper appears exactly once, in the obvious form:
//!
//! * tag hit + s-bit set ⇒ ordinary hit;
//! * tag hit + s-bit clear ⇒ **first access**: serviced with the latency of
//!   the first lower level visible to the context (or DRAM), data
//!   discarded, cache not refilled, s-bit then set;
//! * true miss ⇒ conventional fill of every level (inclusive LLC);
//! * fill ⇒ record `Tc`, grant the filler's s-bit exclusively;
//! * evict/invalidate ⇒ clear every context's s-bit for the slot;
//! * restore ⇒ fresh processes and rollovers reset everything, otherwise
//!   the snapshot is loaded and every slot with `trunc(Tc) > trunc(Ts)` is
//!   reset (strict compare: ties keep visibility).
//!
//! [`BugKind`] deliberately breaks one rule at a time; the differential
//! harness's mutation tests use it to prove the oracle can catch and shrink
//! real s-bit bugs.

use std::collections::{BTreeMap, BTreeSet};
use timecache_sim::{
    AccessKind, AccessOutcome, CacheConfig, CacheStats, HierarchyConfig, HierarchyStats, IndexFn,
    LatencyConfig, Level, LineAddr, SecurityMode, SwitchCost,
};

/// A deliberately introduced bug in the reference model, used by mutation
/// tests to demonstrate the differential harness catches (and shrinks)
/// genuine s-bit defects. The shipped oracle always runs with `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugKind {
    /// `on_fill` forgets to grant the filler's s-bit: the filler pays a
    /// first-access penalty again on its very next access to the line.
    SkipGrantOnFill,
    /// Evictions and invalidations forget to clear the slot's s-bits.
    SkipSbitClearOnEvict,
    /// The s-bit check is ignored: every tag hit is served as a hit
    /// (baseline semantics smuggled into TimeCache mode).
    FirstAccessTreatedAsHit,
    /// Rollover detection is disabled; restores always run the truncated
    /// comparator even across counter wraps.
    IgnoreRollover,
}

/// One tag-array slot of the reference model.
#[derive(Debug, Clone, Default)]
struct Slot {
    valid: bool,
    line: u64,
    dirty: bool,
}

/// Per-slot TimeCache state: the full-precision fill time and the set of
/// hardware contexts whose s-bit is set.
#[derive(Debug, Clone, Default)]
struct SlotTc {
    tc_raw: u64,
    sbits: BTreeSet<usize>,
}

/// A saved caching context for one cache: the slots whose s-bit the context
/// held at preemption, plus the full-precision preemption time.
#[derive(Debug, Clone)]
pub struct RefSnap {
    slots: BTreeSet<usize>,
    ts_raw: u64,
}

/// Restore outcome of one cache (mirrors `timecache_core::RestoreOutcome`).
#[derive(Debug, Clone, Copy)]
struct RefRestore {
    rollover: bool,
    sbits_reset: usize,
    comparator_cycles: u64,
    transfer_lines: usize,
}

/// One cache level of the reference model.
#[derive(Debug, Clone)]
struct RefCache {
    sets: u64,
    ways: usize,
    index: IndexFn,
    slots: Vec<Slot>,
    /// Exact-LRU stamps, one per slot, driven by a per-cache clock.
    stamps: Vec<u64>,
    clock: u64,
    /// `Some` when TimeCache covers this cache.
    tc: Option<Vec<SlotTc>>,
    ts_bits: u8,
    stats: CacheStats,
    bug: Option<BugKind>,
}

impl RefCache {
    fn new(cfg: &CacheConfig, timecache: bool, ts_bits: u8, bug: Option<BugKind>) -> Self {
        let sets = cfg.geometry.num_sets();
        let ways = cfg.geometry.ways() as usize;
        let n = cfg.geometry.num_lines();
        RefCache {
            sets,
            ways,
            index: cfg.index,
            slots: vec![Slot::default(); n],
            stamps: vec![0; n],
            clock: 0,
            tc: timecache.then(|| vec![SlotTc::default(); n]),
            ts_bits,
            stats: CacheStats::default(),
            bug,
        }
    }

    fn set_of(&self, line: u64) -> u64 {
        self.index.set_of(LineAddr::from_raw(line), self.sets)
    }

    /// Linear tag scan; returns the flat slot index.
    fn find(&self, line: u64) -> Option<usize> {
        let base = self.set_of(line) as usize * self.ways;
        (base..base + self.ways).find(|&s| self.slots[s].valid && self.slots[s].line == line)
    }

    /// LRU touch: hits and fills stamp alike.
    fn touch(&mut self, slot: usize) {
        self.clock += 1;
        self.stamps[slot] = self.clock;
    }

    fn visible(&self, slot: usize, ctx: usize) -> bool {
        if self.bug == Some(BugKind::FirstAccessTreatedAsHit) {
            return true;
        }
        match &self.tc {
            None => true,
            Some(tc) => tc[slot].sbits.contains(&ctx),
        }
    }

    fn grant(&mut self, slot: usize, ctx: usize) {
        if let Some(tc) = &mut self.tc {
            tc[slot].sbits.insert(ctx);
        }
    }

    /// Clears every context's s-bit for the slot (eviction/invalidation).
    fn clear_slot_sbits(&mut self, slot: usize) {
        if self.bug == Some(BugKind::SkipSbitClearOnEvict) {
            return;
        }
        if let Some(tc) = &mut self.tc {
            tc[slot].sbits.clear();
        }
    }

    /// Fills `line` for `ctx` at cycle `now`. Prefers an invalid way, else
    /// evicts exact-LRU (ties toward way 0). Returns the displaced line.
    fn fill(&mut self, line: u64, ctx: usize, now: u64) -> Option<(u64, bool)> {
        let base = self.set_of(line) as usize * self.ways;
        let way = (0..self.ways)
            .find(|&w| !self.slots[base + w].valid)
            .unwrap_or_else(|| {
                (0..self.ways)
                    .min_by_key(|&w| self.stamps[base + w])
                    .expect("ways is nonzero")
            });
        let slot = base + way;
        let evicted = self.slots[slot].valid.then(|| {
            self.stats.evictions += 1;
            (self.slots[slot].line, self.slots[slot].dirty)
        });
        if evicted.is_some() {
            self.clear_slot_sbits(slot);
        }
        self.slots[slot] = Slot {
            valid: true,
            line,
            dirty: false,
        };
        self.touch(slot);
        if let Some(tc) = &mut self.tc {
            tc[slot].tc_raw = now;
            if self.bug == Some(BugKind::SkipGrantOnFill) {
                tc[slot].sbits.clear();
            } else {
                tc[slot].sbits = BTreeSet::from([ctx]);
            }
        }
        evicted
    }

    /// Invalidates `line` if present; returns whether it was dirty.
    fn invalidate(&mut self, line: u64) -> Option<bool> {
        let slot = self.find(line)?;
        let dirty = self.slots[slot].dirty;
        self.slots[slot] = Slot::default();
        self.stats.invalidations += 1;
        self.clear_slot_sbits(slot);
        Some(dirty)
    }

    /// 64-byte transfers for an s-bit snapshot of this cache: one bit per
    /// line, packed into bytes, moved in cache-line units (Section VI-D).
    fn transfer_lines(&self) -> usize {
        self.slots.len().div_ceil(8).div_ceil(64).max(1)
    }

    fn save(&self, ctx: usize, now: u64) -> Option<RefSnap> {
        let tc = self.tc.as_ref()?;
        let slots = (0..self.slots.len())
            .filter(|&s| tc[s].sbits.contains(&ctx))
            .collect();
        Some(RefSnap { slots, ts_raw: now })
    }

    /// Restores a process's context: fresh (None) and rollover restores
    /// reset everything; otherwise load the snapshot and reset every slot
    /// whose `trunc(Tc) > trunc(Ts)` (strict — ties keep visibility).
    fn restore(&mut self, ctx: usize, snap: Option<&RefSnap>, now: u64) -> Option<RefRestore> {
        let ts_bits = self.ts_bits;
        let bug = self.bug;
        let transfer = self.transfer_lines();
        let trunc = |t: u64| {
            if ts_bits >= 64 {
                t
            } else {
                t & ((1u64 << ts_bits) - 1)
            }
        };
        let tc = self.tc.as_mut()?;
        let clear_ctx = |tc: &mut Vec<SlotTc>| -> usize {
            let mut cleared = 0;
            for s in tc.iter_mut() {
                if s.sbits.remove(&ctx) {
                    cleared += 1;
                }
            }
            cleared
        };
        let Some(snap) = snap else {
            let before = clear_ctx(tc);
            return Some(RefRestore {
                rollover: false,
                sbits_reset: before,
                comparator_cycles: 0,
                transfer_lines: 0,
            });
        };
        assert!(now >= snap.ts_raw, "time must be monotonic across restores");
        // Rollover: the hardware sees trunc(now) < trunc(Ts); software adds
        // the elapsed-time check for preemptions spanning a full period.
        let rollover = if ts_bits >= 64 || bug == Some(BugKind::IgnoreRollover) {
            false
        } else {
            let period = 1u64 << ts_bits;
            let hw = trunc(now) < trunc(snap.ts_raw);
            let sw = now - snap.ts_raw >= period;
            hw || sw
        };
        if rollover {
            clear_ctx(tc);
            return Some(RefRestore {
                rollover: true,
                sbits_reset: snap.slots.len(),
                comparator_cycles: 0,
                transfer_lines: transfer,
            });
        }
        clear_ctx(tc);
        let ts = trunc(snap.ts_raw);
        let mut reset = 0;
        for &slot in &snap.slots {
            if trunc(tc[slot].tc_raw) > ts {
                reset += 1;
            } else {
                tc[slot].sbits.insert(ctx);
            }
        }
        Some(RefRestore {
            rollover: false,
            sbits_reset: reset,
            comparator_cycles: ts_bits as u64 + 1,
            transfer_lines: transfer,
        })
    }
}

/// An address-keyed directory entry (the real simulator keys the directory
/// by LLC slot; entries live exactly as long as the LLC-resident line, so
/// keying by line address is semantically identical and more obviously
/// correct).
#[derive(Debug, Clone, Default)]
struct RefDir {
    sharers: BTreeSet<usize>,
    dirty_owner: Option<usize>,
}

/// A saved caching context across the whole hierarchy (mirrors
/// `timecache_sim::ContextSnapshot`).
#[derive(Debug, Clone, Default)]
pub struct RefContextSnapshot {
    l1i: Option<RefSnap>,
    l1d: Option<RefSnap>,
    llc: Option<RefSnap>,
}

/// The reference hierarchy: per-core split L1s over an inclusive shared LLC
/// with an MSI-style directory, TimeCache at every level when configured.
#[derive(Debug, Clone)]
pub struct RefHierarchy {
    cores: usize,
    smt: usize,
    latencies: LatencyConfig,
    line_size: u64,
    l1i: Vec<RefCache>,
    l1d: Vec<RefCache>,
    llc: RefCache,
    dir: BTreeMap<u64, RefDir>,
    timecache: bool,
    constant_time_clflush: bool,
    dram_wait_on_remote_hit: bool,
}

impl RefHierarchy {
    /// Builds the reference model for a configuration. Only `Baseline` and
    /// `TimeCache` security modes are supported (FTM is out of the
    /// differential oracle's scope).
    pub fn new(cfg: &HierarchyConfig, bug: Option<BugKind>) -> Self {
        let (timecache, ts_bits, ctc, dram_wait) = match cfg.security {
            SecurityMode::Baseline => (false, 64, false, false),
            SecurityMode::TimeCache(tc) => (
                true,
                tc.timestamp_width().bits(),
                tc.constant_time_clflush(),
                tc.dram_wait_on_remote_hit(),
            ),
            SecurityMode::Ftm => panic!("reference model does not cover FTM"),
        };
        RefHierarchy {
            cores: cfg.cores,
            smt: cfg.smt_per_core,
            latencies: cfg.latencies,
            line_size: cfg.llc.geometry.line_size(),
            l1i: (0..cfg.cores)
                .map(|_| RefCache::new(&cfg.l1i, timecache, ts_bits, bug))
                .collect(),
            l1d: (0..cfg.cores)
                .map(|_| RefCache::new(&cfg.l1d, timecache, ts_bits, bug))
                .collect(),
            llc: RefCache::new(&cfg.llc, timecache, ts_bits, bug),
            dir: BTreeMap::new(),
            timecache,
            constant_time_clflush: ctc,
            dram_wait_on_remote_hit: dram_wait,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_size
    }

    /// LLC visibility-context for `(core, thread)`: one per hardware
    /// context under TimeCache.
    fn llc_ctx(&self, core: usize, thread: usize) -> usize {
        core * self.smt + thread
    }

    fn l1(&mut self, core: usize, kind: AccessKind) -> &mut RefCache {
        match kind {
            AccessKind::IFetch => &mut self.l1i[core],
            AccessKind::Load | AccessKind::Store => &mut self.l1d[core],
        }
    }

    /// One memory access, per Section V-A.
    pub fn access(
        &mut self,
        core: usize,
        thread: usize,
        kind: AccessKind,
        addr: u64,
        now: u64,
    ) -> AccessOutcome {
        let lat = self.latencies;
        let line = self.line_of(addr);

        let l1 = self.l1(core, kind);
        l1.stats.accesses += 1;
        if let Some(slot) = l1.find(line) {
            let visible = l1.visible(slot, thread);
            l1.touch(slot);
            if visible {
                l1.stats.hits += 1;
                if kind.is_write() {
                    self.write_hit(core, line);
                }
                return AccessOutcome {
                    latency: lat.l1_hit,
                    served_by: Level::L1,
                    l1_tag_hit: true,
                    first_access_l1: false,
                    first_access_llc: false,
                };
            }
            // First access at the L1: delayed with the first visible lower
            // level's latency; data discarded, no refill, s-bit then set.
            l1.stats.first_access += 1;
            l1.grant(slot, thread);
            let (latency, served_by, fa_llc) = self.probe_below(core, thread, line);
            if kind.is_write() {
                self.write_hit(core, line);
            }
            return AccessOutcome {
                latency,
                served_by,
                l1_tag_hit: true,
                first_access_l1: true,
                first_access_llc: fa_llc,
            };
        }

        // L1 miss: consult the LLC.
        self.l1(core, kind).stats.misses += 1;
        self.llc.stats.accesses += 1;
        let llc_ctx = self.llc_ctx(core, thread);
        let (latency, served_by, fa_llc) = if let Some(slot) = self.llc.find(line) {
            let visible = self.llc.visible(slot, llc_ctx);
            self.llc.touch(slot);
            if visible {
                self.llc.stats.hits += 1;
                let remote_dirty = self
                    .dir
                    .get(&line)
                    .and_then(|d| d.dirty_owner)
                    .filter(|&owner| owner != core);
                if let Some(owner) = remote_dirty {
                    self.writeback_owner_copy(owner, line);
                    (lat.remote_l1, Level::RemoteL1, false)
                } else {
                    (lat.llc_hit, Level::LLC, false)
                }
            } else {
                // First access at the LLC: request continues to memory,
                // response discarded; a remote dirty copy is still written
                // back so the LLC holds current data for the L1 fill.
                self.llc.stats.first_access += 1;
                self.llc.grant(slot, llc_ctx);
                if let Some(owner) = self
                    .dir
                    .get(&line)
                    .and_then(|d| d.dirty_owner)
                    .filter(|&owner| owner != core)
                {
                    self.writeback_owner_copy(owner, line);
                }
                (lat.dram, Level::Memory, true)
            }
        } else {
            self.llc.stats.misses += 1;
            self.fill_llc(line, llc_ctx, now);
            (lat.dram, Level::Memory, false)
        };

        self.fill_l1(core, thread, kind, line, now);
        if kind.is_write() {
            self.write_hit(core, line);
        }
        AccessOutcome {
            latency,
            served_by,
            l1_tag_hit: false,
            first_access_l1: false,
            first_access_llc: fa_llc,
        }
    }

    /// Latency probe below an L1 first access; never fills anything.
    fn probe_below(&mut self, core: usize, thread: usize, line: u64) -> (u64, Level, bool) {
        let lat = self.latencies;
        let llc_ctx = self.llc_ctx(core, thread);
        self.llc.stats.accesses += 1;
        let slot = self
            .llc
            .find(line)
            .expect("inclusive LLC lost an L1-resident line");
        self.llc.touch(slot);
        if self.llc.visible(slot, llc_ctx) {
            self.llc.stats.hits += 1;
            if self.dram_wait_on_remote_hit {
                (lat.dram, Level::Memory, false)
            } else {
                (lat.llc_hit, Level::LLC, false)
            }
        } else {
            self.llc.stats.first_access += 1;
            self.llc.grant(slot, llc_ctx);
            (lat.dram, Level::Memory, true)
        }
    }

    /// Fills the LLC, back-invalidating the inclusive victim from all
    /// sharers' L1s and resetting the victim's directory entry.
    fn fill_llc(&mut self, line: u64, llc_ctx: usize, now: u64) {
        if let Some((victim_line, victim_dirty)) = self.llc.fill(line, llc_ctx, now) {
            let victim_entry = self.dir.remove(&victim_line).unwrap_or_default();
            for core in 0..self.cores {
                if victim_entry.sharers.contains(&core) {
                    self.l1i[core].invalidate(victim_line);
                    if let Some(dirty) = self.l1d[core].invalidate(victim_line) {
                        if dirty {
                            // Dirty L1 copy of a dying LLC line: straight to
                            // memory.
                            self.l1d[core].stats.writebacks += 1;
                        }
                    }
                }
            }
            if victim_dirty {
                self.llc.stats.writebacks += 1;
            }
        }
        // The new line starts with a fresh (empty) directory entry; sharers
        // are added by the L1 fill that follows.
        self.dir.remove(&line);
    }

    /// Fills a private L1 (line must be LLC-resident), updating the
    /// directory and writing the victim back to the LLC if dirty.
    fn fill_l1(&mut self, core: usize, thread: usize, kind: AccessKind, line: u64, now: u64) {
        let victim = self.l1(core, kind).fill(line, thread, now);
        if let Some((v_line, v_dirty)) = victim {
            if v_dirty {
                self.l1(core, kind).stats.writebacks += 1;
                if let Some(slot) = self.llc.find(v_line) {
                    self.llc.slots[slot].dirty = true;
                    let entry = self.dir.entry(v_line).or_default();
                    if entry.dirty_owner == Some(core) {
                        entry.dirty_owner = None;
                    }
                }
            }
            self.dir_remove_sharer_if_gone(core, v_line);
        }
        if self.llc.find(line).is_some() {
            self.dir.entry(line).or_default().sharers.insert(core);
        }
    }

    /// A store hit: mark the L1D copy dirty, invalidate remote copies, and
    /// take exclusive directory ownership.
    fn write_hit(&mut self, core: usize, line: u64) {
        if let Some(slot) = self.l1d[core].find(line) {
            self.l1d[core].slots[slot].dirty = true;
        }
        if self.llc.find(line).is_some() {
            let sharers: Vec<usize> = self
                .dir
                .get(&line)
                .map(|d| d.sharers.iter().copied().collect())
                .unwrap_or_default();
            for other in sharers {
                if other != core {
                    self.l1i[other].invalidate(line);
                    if let Some(dirty) = self.l1d[other].invalidate(line) {
                        if dirty {
                            self.l1d[other].stats.writebacks += 1;
                            if let Some(slot) = self.llc.find(line) {
                                self.llc.slots[slot].dirty = true;
                            }
                        }
                    }
                }
            }
            let entry = self.dir.entry(line).or_default();
            entry.sharers = BTreeSet::from([core]);
            entry.dirty_owner = Some(core);
        }
    }

    /// Writes a remote core's dirty copy back to the LLC.
    fn writeback_owner_copy(&mut self, owner: usize, line: u64) {
        if let Some(slot) = self.l1d[owner].find(line) {
            if self.l1d[owner].slots[slot].dirty {
                self.l1d[owner].slots[slot].dirty = false;
                self.l1d[owner].stats.writebacks += 1;
            }
        }
        if let Some(slot) = self.llc.find(line) {
            self.llc.slots[slot].dirty = true;
            self.dir.entry(line).or_default().dirty_owner = None;
        }
    }

    /// Drops `core` from a line's sharer mask if neither of its L1s still
    /// holds the line.
    fn dir_remove_sharer_if_gone(&mut self, core: usize, line: u64) {
        let still_held = self.l1i[core].find(line).is_some() || self.l1d[core].find(line).is_some();
        if !still_held && self.llc.find(line).is_some() {
            if let Some(entry) = self.dir.get_mut(&line) {
                entry.sharers.remove(&core);
                if entry.dirty_owner == Some(core) {
                    entry.dirty_owner = None;
                }
            }
        }
    }

    /// `clflush`: invalidate everywhere, write back dirty data, and report
    /// the presence-dependent (baseline) or constant (mitigated) latency.
    pub fn clflush(&mut self, addr: u64) -> u64 {
        let line = self.line_of(addr);
        let mut present = false;
        for core in 0..self.cores {
            if self.l1i[core].invalidate(line).is_some() {
                present = true;
            }
            if let Some(dirty) = self.l1d[core].invalidate(line) {
                present = true;
                if dirty {
                    self.l1d[core].stats.writebacks += 1;
                }
            }
        }
        if self.llc.find(line).is_some() {
            present = true;
            self.dir.remove(&line);
            if self.llc.invalidate(line) == Some(true) {
                self.llc.stats.writebacks += 1;
            }
        }
        if present || (self.timecache && self.constant_time_clflush) {
            self.latencies.flush_present
        } else {
            self.latencies.flush_absent
        }
    }

    /// Saves the caching context of `(core, thread)` across all levels.
    pub fn save_context(&self, core: usize, thread: usize, now: u64) -> RefContextSnapshot {
        RefContextSnapshot {
            l1i: self.l1i[core].save(thread, now),
            l1d: self.l1d[core].save(thread, now),
            llc: self.llc.save(self.llc_ctx(core, thread), now),
        }
    }

    /// Restores a context (`None` = newly created process). The combined
    /// cost mirrors `Hierarchy::restore_context`: comparator sweeps run in
    /// parallel (max), transfers and resets sum, rollover flags OR.
    pub fn restore_context(
        &mut self,
        core: usize,
        thread: usize,
        snapshot: Option<&RefContextSnapshot>,
        now: u64,
    ) -> SwitchCost {
        let mut cost = SwitchCost::default();
        let llc_ctx = self.llc_ctx(core, thread);
        let outcomes = [
            self.l1i[core].restore(thread, snapshot.and_then(|s| s.l1i.as_ref()), now),
            self.l1d[core].restore(thread, snapshot.and_then(|s| s.l1d.as_ref()), now),
            self.llc
                .restore(llc_ctx, snapshot.and_then(|s| s.llc.as_ref()), now),
        ];
        for out in outcomes.into_iter().flatten() {
            cost.comparator_cycles = cost.comparator_cycles.max(out.comparator_cycles);
            cost.transfer_lines += out.transfer_lines as u64;
            cost.rollover |= out.rollover;
            cost.sbits_reset += out.sbits_reset as u64;
        }
        cost
    }

    /// Statistics snapshot, shaped exactly like the real hierarchy's.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.iter().map(|c| c.stats).collect(),
            l1d: self.l1d.iter().map(|c| c.stats).collect(),
            llc: self.llc.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timecache_core::TimeCacheConfig;

    fn tc_cfg() -> HierarchyConfig {
        let mut cfg = HierarchyConfig::with_cores(1);
        cfg.security = SecurityMode::TimeCache(TimeCacheConfig::default());
        cfg
    }

    #[test]
    fn first_access_is_delayed_and_paid_once() {
        let mut cfg = tc_cfg();
        cfg.smt_per_core = 2;
        let mut h = RefHierarchy::new(&cfg, None);
        h.access(0, 0, AccessKind::Load, 0x3000, 0);
        let spy = h.access(0, 1, AccessKind::Load, 0x3000, 10);
        assert!(spy.l1_tag_hit && spy.first_access_l1 && spy.first_access_llc);
        assert_eq!(spy.latency, cfg.latencies.dram);
        let again = h.access(0, 1, AccessKind::Load, 0x3000, 20);
        assert_eq!(again.served_by, Level::L1);
    }

    #[test]
    fn restore_resets_lines_filled_while_preempted() {
        let cfg = tc_cfg();
        let mut h = RefHierarchy::new(&cfg, None);
        h.access(0, 0, AccessKind::Load, 0xA000, 100);
        let snap_a = h.save_context(0, 0, 200);
        h.restore_context(0, 0, None, 200);
        h.access(0, 0, AccessKind::Load, 0xB000, 300);
        let _ = h.save_context(0, 0, 400);
        let cost = h.restore_context(0, 0, Some(&snap_a), 400);
        assert!(!cost.rollover);
        let x = h.access(0, 0, AccessKind::Load, 0xB000, 500);
        assert!(x.first_access_l1, "line filled after Ts must be reset");
        let own = h.access(0, 0, AccessKind::Load, 0xA000, 600);
        assert_eq!(own.served_by, Level::L1);
    }

    #[test]
    fn bug_skip_grant_forces_double_first_access() {
        let cfg = tc_cfg();
        let mut clean = RefHierarchy::new(&cfg, None);
        let mut buggy = RefHierarchy::new(&cfg, Some(BugKind::SkipGrantOnFill));
        for h in [&mut clean, &mut buggy] {
            h.access(0, 0, AccessKind::Load, 0x4000, 0);
        }
        let c = clean.access(0, 0, AccessKind::Load, 0x4000, 10);
        let b = buggy.access(0, 0, AccessKind::Load, 0x4000, 10);
        assert_eq!(c.served_by, Level::L1, "clean filler keeps visibility");
        assert!(b.first_access_l1, "the bug must actually change behavior");
    }
}
