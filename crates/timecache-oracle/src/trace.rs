//! Trace documents: the differential oracle's input format.
//!
//! A trace is a tiny hierarchy configuration plus a flat list of events —
//! multi-process memory accesses, `clflush`es, context switches, and forks
//! over shared addresses. Traces are generated randomly ([`crate::generate`]),
//! shrunk ([`crate::shrink`]), and serialized to a stable text format so
//! shrunken regressions can live in `tests/corpus/` and replay on every
//! `cargo test`.
//!
//! Every event is valid in every trace: the replay driver clamps hardware
//! contexts into range and treats unknown pids as new processes, so deleting
//! any subset of events (what the shrinker does) always leaves a well-formed
//! trace.

use timecache_core::TimeCacheConfig;
use timecache_sim::{AccessKind, CacheConfig, HierarchyConfig, SecurityMode};

/// Security-mode knobs of a trace (the cache shapes are fixed and tiny so a
/// few dozen events already exercise evictions, conflicts, and inclusion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Cores (1 or 2).
    pub cores: usize,
    /// SMT contexts per core (1 or 2).
    pub smt: usize,
    /// `None` = baseline; `Some(bits)` = TimeCache with that counter width.
    pub ts_bits: Option<u8>,
    /// Constant-time `clflush` mitigation (Section VII-C).
    pub constant_time_clflush: bool,
    /// DRAM-wait-on-remote-hit mitigation (Section VII-B).
    pub dram_wait: bool,
}

impl TraceConfig {
    /// The simulator configuration this trace runs on: 256 B 2-way L1s over
    /// a 1 KiB 2-way LLC (4 and 16 lines — small enough that conflict
    /// evictions and inclusive back-invalidations happen constantly).
    pub fn hierarchy(&self) -> HierarchyConfig {
        let mut cfg = HierarchyConfig::with_cores(self.cores);
        cfg.smt_per_core = self.smt;
        cfg.l1i = CacheConfig::new(256, 2, 64);
        cfg.l1d = CacheConfig::new(256, 2, 64);
        cfg.llc = CacheConfig::new(1024, 2, 64);
        cfg.security = match self.ts_bits {
            None => SecurityMode::Baseline,
            Some(bits) => SecurityMode::TimeCache(
                TimeCacheConfig::new(bits)
                    .with_constant_time_clflush(self.constant_time_clflush)
                    .with_dram_wait_on_remote_hit(self.dram_wait),
            ),
        };
        cfg
    }
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A memory access by whatever process currently runs on
    /// `(core, thread)`.
    Access {
        core: usize,
        thread: usize,
        kind: AccessKind,
        addr: u64,
    },
    /// `clflush` of an address (attributed to no particular context, like
    /// the real hierarchy's `clflush`).
    Flush { addr: u64 },
    /// Context switch on `(core, thread)` to process `pid` (save the
    /// incumbent, restore `pid`'s snapshot — or reset, if `pid` is new).
    /// Switching to the incumbent pid is a no-op (the CR3 rule the OS
    /// layer implements).
    Switch {
        core: usize,
        thread: usize,
        pid: u32,
    },
    /// Fork: snapshot the process currently on `(core, thread)` as the
    /// caching context of new process `child` (the child inherits the
    /// parent's address space — COW — and, at this boundary, its s-bits as
    /// of the fork instant).
    Fork {
        core: usize,
        thread: usize,
        child: u32,
    },
}

/// A full differential-oracle input: configuration plus events.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDoc {
    pub cfg: TraceConfig,
    pub events: Vec<Event>,
}

/// A malformed trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

fn kind_tag(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::IFetch => "I",
        AccessKind::Load => "L",
        AccessKind::Store => "S",
    }
}

impl TraceDoc {
    /// Serializes to the corpus text format (see [`TraceDoc::from_text`]).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mode = match self.cfg.ts_bits {
            None => "baseline".to_owned(),
            Some(bits) => format!("tc{bits}"),
        };
        out.push_str(&format!(
            "cfg cores={} smt={} mode={} ctc={} dramwait={}\n",
            self.cfg.cores,
            self.cfg.smt,
            mode,
            self.cfg.constant_time_clflush as u8,
            self.cfg.dram_wait as u8,
        ));
        for ev in &self.events {
            match *ev {
                Event::Access {
                    core,
                    thread,
                    kind,
                    addr,
                } => out.push_str(&format!("A {core} {thread} {} {addr:x}\n", kind_tag(kind))),
                Event::Flush { addr } => out.push_str(&format!("F {addr:x}\n")),
                Event::Switch { core, thread, pid } => {
                    out.push_str(&format!("W {core} {thread} {pid}\n"))
                }
                Event::Fork {
                    core,
                    thread,
                    child,
                } => out.push_str(&format!("K {core} {thread} {child}\n")),
            }
        }
        out
    }

    /// Parses the corpus text format:
    ///
    /// ```text
    /// # comment
    /// cfg cores=1 smt=1 mode=tc8 ctc=0 dramwait=0
    /// A <core> <thread> <I|L|S> <addr-hex>
    /// F <addr-hex>
    /// W <core> <thread> <pid>
    /// K <core> <thread> <child-pid>
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the first malformed line.
    pub fn from_text(text: &str) -> Result<TraceDoc, TraceError> {
        let err = |line: usize, message: String| TraceError { line, message };
        let mut cfg: Option<TraceConfig> = None;
        let mut events = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = no + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let tag = parts
                .next()
                .ok_or_else(|| err(lineno, "empty line".into()))?;
            let mut dec = |name: &str| -> Result<u64, TraceError> {
                let tok = parts
                    .next()
                    .ok_or_else(|| err(lineno, format!("missing {name}")))?;
                tok.parse()
                    .map_err(|e| err(lineno, format!("bad {name} ({e})")))
            };
            match tag {
                "cfg" => {
                    let mut c = TraceConfig {
                        cores: 1,
                        smt: 1,
                        ts_bits: None,
                        constant_time_clflush: false,
                        dram_wait: false,
                    };
                    for kv in line.split_whitespace().skip(1) {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| err(lineno, format!("bad cfg field {kv:?}")))?;
                        match k {
                            "cores" => {
                                c.cores = v
                                    .parse()
                                    .map_err(|e| err(lineno, format!("bad cores ({e})")))?
                            }
                            "smt" => {
                                c.smt = v
                                    .parse()
                                    .map_err(|e| err(lineno, format!("bad smt ({e})")))?
                            }
                            "mode" => {
                                c.ts_bits = if v == "baseline" {
                                    None
                                } else if let Some(bits) = v.strip_prefix("tc") {
                                    Some(bits.parse().map_err(|e| {
                                        err(lineno, format!("bad mode width ({e})"))
                                    })?)
                                } else {
                                    return Err(err(lineno, format!("unknown mode {v:?}")));
                                }
                            }
                            "ctc" => c.constant_time_clflush = v == "1",
                            "dramwait" => c.dram_wait = v == "1",
                            other => return Err(err(lineno, format!("unknown cfg key {other:?}"))),
                        }
                    }
                    cfg = Some(c);
                }
                "A" => {
                    let core = dec("core")? as usize;
                    let thread = dec("thread")? as usize;
                    let kind = match parts.next() {
                        Some("I") => AccessKind::IFetch,
                        Some("L") => AccessKind::Load,
                        Some("S") => AccessKind::Store,
                        other => return Err(err(lineno, format!("bad access kind {other:?}"))),
                    };
                    let tok = parts
                        .next()
                        .ok_or_else(|| err(lineno, "missing addr".into()))?;
                    let addr = u64::from_str_radix(tok, 16)
                        .map_err(|e| err(lineno, format!("bad addr ({e})")))?;
                    events.push(Event::Access {
                        core,
                        thread,
                        kind,
                        addr,
                    });
                }
                "F" => {
                    let tok = parts
                        .next()
                        .ok_or_else(|| err(lineno, "missing addr".into()))?;
                    let addr = u64::from_str_radix(tok, 16)
                        .map_err(|e| err(lineno, format!("bad addr ({e})")))?;
                    events.push(Event::Flush { addr });
                }
                "W" => {
                    let core = dec("core")? as usize;
                    let thread = dec("thread")? as usize;
                    let pid = dec("pid")? as u32;
                    events.push(Event::Switch { core, thread, pid });
                }
                "K" => {
                    let core = dec("core")? as usize;
                    let thread = dec("thread")? as usize;
                    let child = dec("child")? as u32;
                    events.push(Event::Fork {
                        core,
                        thread,
                        child,
                    });
                }
                other => return Err(err(lineno, format!("unknown tag {other:?}"))),
            }
        }
        let cfg = cfg.ok_or_else(|| err(1, "missing cfg line".into()))?;
        Ok(TraceDoc { cfg, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let doc = TraceDoc {
            cfg: TraceConfig {
                cores: 2,
                smt: 2,
                ts_bits: Some(8),
                constant_time_clflush: true,
                dram_wait: false,
            },
            events: vec![
                Event::Access {
                    core: 1,
                    thread: 0,
                    kind: AccessKind::Store,
                    addr: 0x1040,
                },
                Event::Flush { addr: 0x1040 },
                Event::Switch {
                    core: 0,
                    thread: 1,
                    pid: 7,
                },
                Event::Fork {
                    core: 0,
                    thread: 0,
                    child: 9,
                },
            ],
        };
        let text = doc.to_text();
        assert_eq!(TraceDoc::from_text(&text).unwrap(), doc);
    }

    #[test]
    fn reports_malformed_lines() {
        let e = TraceDoc::from_text("cfg cores=1 smt=1 mode=tc8 ctc=0 dramwait=0\nA 0 0 Q 40\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("access kind"), "{e}");
        assert!(TraceDoc::from_text("A 0 0 L 40\n").is_err(), "cfg required");
    }
}
