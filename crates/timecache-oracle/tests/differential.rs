//! The differential campaign the `oracle-differential` CI job scales up:
//! thousands of fixed-seed random traces with zero divergences, plus
//! mutation checks proving that a deliberately introduced s-bit bug is
//! caught *and* shrunk to a tiny trace.

use timecache_oracle::{generate, replay, run_random, BugKind, TraceDoc};
use timecache_telemetry::Telemetry;

/// Fixed seed of the in-test campaign (the CI job reuses it at 10k+).
const CAMPAIGN_SEED: u64 = 0xD1FF;

#[test]
fn ten_thousand_fixed_seed_traces_zero_divergences() {
    let tel = Telemetry::enabled();
    let report = run_random(10_000, CAMPAIGN_SEED, None, &tel);
    if let Some(found) = &report.divergence {
        panic!(
            "seed {} diverged: {}\nshrunk trace:\n{}",
            found.seed,
            found.divergence,
            found.shrunk.to_text()
        );
    }
    assert_eq!(report.traces, 10_000);
    let reg = tel.registry().expect("telemetry enabled");
    assert_eq!(reg.counter_value("oracle_traces_total", &[]), Some(10_000));
    assert_eq!(reg.counter_value("oracle_divergences_total", &[]), Some(0));
}

/// Runs a mutation campaign: the bug must be detected, counted, shrunk to
/// at most 20 events, and the shrunken trace must survive a round-trip
/// through the corpus text format while still witnessing the bug.
fn mutation_is_caught_and_shrunk(bug: BugKind) {
    let tel = Telemetry::enabled();
    let report = run_random(5_000, CAMPAIGN_SEED, Some(bug), &tel);
    let found = report
        .divergence
        .unwrap_or_else(|| panic!("{bug:?} must diverge within 5000 traces"));
    assert!(
        found.shrunk.events.len() <= 20,
        "{bug:?}: shrunk to {} events, want <= 20:\n{}",
        found.shrunk.events.len(),
        found.shrunk.to_text()
    );
    let reg = tel.registry().expect("telemetry enabled");
    assert_eq!(reg.counter_value("oracle_divergences_total", &[]), Some(1));
    // The minimized witness is deterministic and format-stable.
    let doc = TraceDoc::from_text(&found.shrunk.to_text()).expect("valid text");
    assert_eq!(doc, found.shrunk);
    assert!(replay(&doc, Some(bug)).is_err(), "witness must still fail");
    assert!(
        replay(&doc, None).is_ok(),
        "witness must pass without the bug (it blames the mutation, not the sim)"
    );
}

#[test]
fn mutation_skip_grant_on_fill_is_caught() {
    mutation_is_caught_and_shrunk(BugKind::SkipGrantOnFill);
}

#[test]
fn mutation_skip_sbit_clear_on_evict_is_caught() {
    mutation_is_caught_and_shrunk(BugKind::SkipSbitClearOnEvict);
}

#[test]
fn mutation_first_access_treated_as_hit_is_caught() {
    mutation_is_caught_and_shrunk(BugKind::FirstAccessTreatedAsHit);
}

#[test]
fn mutation_ignore_rollover_is_caught() {
    mutation_is_caught_and_shrunk(BugKind::IgnoreRollover);
}

#[test]
fn baseline_and_timecache_modes_both_covered_by_the_generator() {
    let (mut baseline, mut tc, mut narrow) = (0, 0, 0);
    for seed in 0..1_000 {
        match generate(seed).cfg.ts_bits {
            None => baseline += 1,
            Some(bits) if bits < 32 => narrow += 1,
            Some(_) => tc += 1,
        }
    }
    assert!(baseline > 50, "baseline traces generated: {baseline}");
    assert!(tc > 50, "wide TimeCache traces generated: {tc}");
    assert!(narrow > 300, "narrow (rollover-prone) traces: {narrow}");
}
