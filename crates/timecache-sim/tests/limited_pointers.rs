//! End-to-end behaviour of the limited-pointer visibility representation
//! inside the full hierarchy: security is unchanged (it is strictly more
//! conservative), while heavily-shared lines pay extra first-access misses
//! when the pointer budget overflows.

use timecache_core::TimeCacheConfig;
use timecache_sim::{AccessKind, Hierarchy, HierarchyConfig, Level, SecurityMode};

fn hierarchy(k: usize, cores: usize) -> Hierarchy {
    let mut cfg = HierarchyConfig::with_cores(cores);
    cfg.security = SecurityMode::TimeCache(TimeCacheConfig::default().with_limited_pointers(k));
    Hierarchy::new(cfg).unwrap()
}

#[test]
fn first_access_isolation_still_holds() {
    let mut h = hierarchy(1, 2);
    // Core 0 loads a shared line; core 1's reload must be delayed.
    h.access(0, 0, AccessKind::Load, 0x4000, 0);
    let spy = h.access(1, 0, AccessKind::Load, 0x4000, 10);
    assert!(spy.first_access_llc);
    assert_eq!(spy.served_by, Level::Memory);
}

#[test]
fn context_switch_isolation_still_holds() {
    let mut h = hierarchy(1, 1);
    h.access(0, 0, AccessKind::Load, 0x5000, 0);
    let _a = h.save_context(0, 0, 100);
    h.restore_context(0, 0, None, 100);
    let spy = h.access(0, 0, AccessKind::Load, 0x5000, 200);
    assert!(
        spy.first_access_l1,
        "new process must not inherit visibility"
    );
}

#[test]
fn overflow_costs_extra_misses_but_never_grants_hits() {
    // 4 cores sharing a line with k = 1 pointer: each new sharer revokes
    // the previous one; revisits pay first-access misses again.
    let mut h = hierarchy(1, 4);
    for core in 0..4 {
        let out = h.access(core, 0, AccessKind::Load, 0x6000, core as u64 * 10);
        if core > 0 {
            assert!(out.first_access_llc, "core {core} must pay");
        }
    }
    // Core 0's pointer was revoked somewhere along the way: its L1 still
    // has the line (tag hit), but the LLC pointer is gone. Evict the L1
    // copy so the next access consults the LLC.
    let set_stride = 64 * 64;
    for i in 1..=8u64 {
        h.access(0, 0, AccessKind::Load, 0x6000 + i * set_stride, 100 + i);
    }
    let back = h.access(0, 0, AccessKind::Load, 0x6000, 200);
    // With k=1, only the most recent sharer holds the pointer; core 0's
    // access is (again) a first access at the LLC.
    assert!(
        back.first_access_llc || back.served_by == Level::Memory,
        "{back:?}"
    );
}

#[test]
fn generous_pointer_budget_behaves_like_full_map() {
    // k = total contexts: no overflow is possible, behaviour matches the
    // full map exactly for this trace.
    let mut full = {
        let mut cfg = HierarchyConfig::with_cores(2);
        cfg.security = SecurityMode::TimeCache(TimeCacheConfig::default());
        Hierarchy::new(cfg).unwrap()
    };
    let mut lim = hierarchy(2, 2);
    for i in 0..400u64 {
        let core = (i % 2) as usize;
        let addr = 0x7000 + (i * 97 % 32) * 64;
        let a = full.access(core, 0, AccessKind::Load, addr, i);
        let b = lim.access(core, 0, AccessKind::Load, addr, i);
        assert_eq!(a, b, "step {i}");
    }
    assert_eq!(full.stats().llc.first_access, lim.stats().llc.first_access);
}

#[test]
fn snapshots_round_trip_through_pointer_slots() {
    let mut h = hierarchy(2, 1);
    h.access(0, 0, AccessKind::Load, 0x8000, 0);
    let snap = h.save_context(0, 0, 100);
    h.restore_context(0, 0, None, 100); // other process
    h.restore_context(0, 0, Some(&snap), 200); // back
    let again = h.access(0, 0, AccessKind::Load, 0x8000, 300);
    assert_eq!(again.served_by, Level::L1, "own visibility restored");
}
