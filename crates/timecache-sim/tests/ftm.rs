//! FTM (First Time Miss) comparison-baseline behaviour: the Section
//! VIII-B2 argument made executable. FTM's per-core LLC presence bits stop
//! *cross-core* reuse, but nothing else — no L1 protection, no per-process
//! state, no SMT separation — which is exactly the gap TimeCache closes.

use timecache_sim::{AccessKind, Hierarchy, HierarchyConfig, Level, SecurityMode};

fn ftm(cores: usize, smt: usize) -> Hierarchy {
    let mut cfg = HierarchyConfig::with_cores(cores);
    cfg.smt_per_core = smt;
    cfg.security = SecurityMode::Ftm;
    Hierarchy::new(cfg).unwrap()
}

#[test]
fn ftm_blocks_cross_core_reuse() {
    let mut h = ftm(2, 1);
    // Victim on core 0 loads a shared line.
    h.access(0, 0, AccessKind::Load, 0x4000, 0);
    // Attacker on core 1: LLC tag hit but core 1's presence bit is clear
    // -> first access, DRAM latency. The cross-core channel is closed.
    let spy = h.access(1, 0, AccessKind::Load, 0x4000, 10);
    assert!(spy.first_access_llc);
    assert_eq!(spy.latency, h.config().latencies.dram);
    // Second access by core 1 is an ordinary (local) hit.
    let again = h.access(1, 0, AccessKind::Load, 0x4000, 20);
    assert_eq!(again.served_by, Level::L1);
}

#[test]
fn ftm_fails_same_core_time_sliced_attack() {
    let mut h = ftm(1, 1);
    // "Victim" fills the line; a context switch happens (FTM has nothing
    // to save or restore — the snapshot is empty and the restore free).
    h.access(0, 0, AccessKind::Load, 0x5000, 0);
    let snap = h.save_context(0, 0, 100);
    assert_eq!(snap.storage_bytes(), 0, "FTM keeps no per-process state");
    let cost = h.restore_context(0, 0, None, 100);
    assert_eq!(cost.transfer_lines, 0);

    // "Attacker" process now runs on the same core: the core's presence
    // bit is still set, so the reload is FAST — the attack succeeds.
    // (Under TimeCache this is a first-access miss; see the hierarchy
    // unit tests.)
    let spy = h.access(0, 0, AccessKind::Load, 0x5000, 200);
    assert_eq!(spy.served_by, Level::L1, "FTM leaks across time slicing");
}

#[test]
fn ftm_fails_smt_sibling_attack() {
    let mut h = ftm(1, 2);
    // Victim on thread 0, spy on thread 1 of the same core: FTM's
    // core-granular presence bit cannot tell them apart.
    h.access(0, 0, AccessKind::Load, 0x6000, 0);
    let spy = h.access(0, 1, AccessKind::Load, 0x6000, 10);
    assert_eq!(spy.served_by, Level::L1, "FTM leaks across SMT threads");
    assert!(!spy.is_first_access());
}

#[test]
fn ftm_leaves_l1_unprotected_after_llc_first_access() {
    // Even cross-core, FTM's protection is one-shot per core: after any
    // process on the attacker's core touches the line once, every later
    // process on that core sees fast reloads, regardless of context
    // switches.
    let mut h = ftm(2, 1);
    h.access(0, 0, AccessKind::Load, 0x7000, 0); // victim caches line
    h.access(1, 0, AccessKind::Load, 0x7000, 10); // some process pays FA
                                                  // A *different* process is scheduled on core 1 (context switch):
    h.restore_context(1, 0, None, 20);
    let spy = h.access(1, 0, AccessKind::Load, 0x7000, 30);
    assert_eq!(
        spy.served_by,
        Level::L1,
        "FTM cannot distinguish processes sharing a core"
    );
}

#[test]
fn ftm_charges_no_switch_overhead() {
    let mut h = ftm(1, 1);
    h.access(0, 0, AccessKind::Load, 0x8000, 0);
    let snap = h.save_context(0, 0, 10);
    let cost = h.restore_context(0, 0, Some(&snap), 20);
    assert_eq!(cost.comparator_cycles, 0);
    assert_eq!(cost.transfer_lines, 0);
    assert_eq!(cost.sbits_reset, 0);
}

#[test]
fn ftm_first_access_statistics_land_on_llc_only() {
    let mut h = ftm(2, 1);
    h.access(0, 0, AccessKind::Load, 0x9000, 0);
    h.access(1, 0, AccessKind::Load, 0x9000, 10);
    let s = h.stats();
    assert_eq!(s.llc.first_access, 1);
    assert_eq!(s.l1i_total().first_access + s.l1d_total().first_access, 0);
}
