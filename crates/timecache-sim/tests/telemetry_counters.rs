//! Telemetry / `CacheStats` agreement: the counters derived at the
//! `Hierarchy` instrumentation choke point must exactly equal the
//! simulator's own statistics for a deterministic two-process run.

use timecache_core::TimeCacheConfig;
use timecache_sim::{AccessKind, Hierarchy, HierarchyConfig, SecurityMode};
use timecache_telemetry::Telemetry;

/// Two "processes" time-sliced on hardware context (0,0): each has its own
/// code and data regions, and the context switch goes through the real
/// snapshot save/restore path, so first-access misses, comparator sweeps,
/// and evictions all occur.
fn run_two_process_workload(h: &mut Hierarchy) {
    let mut snaps = [None, None];
    let mut now = 0u64;
    let mut cur = 0usize;
    for slice in 0..40u64 {
        let base = 0x1000_0000u64 * (cur as u64 + 1);
        for i in 0..200u64 {
            // Both processes execute the same shared library text — the
            // canonical source of first-access misses on switch-in.
            now += 1;
            h.access(0, 0, AccessKind::IFetch, 0x7000_0000 + (i % 16) * 64, now);
            let addr = if i % 7 == 0 {
                0x9000_0000 + (i % 32) * 64 // shared data segment
            } else {
                base + 0x10_0000 + ((slice * 200 + i) % 1024) * 64
            };
            now += 1;
            if i % 3 == 0 {
                h.access(0, 0, AccessKind::Store, addr, now);
            } else {
                h.access(0, 0, AccessKind::Load, addr, now);
            }
            if i % 50 == 17 {
                h.clflush(addr);
            }
        }
        now += 1;
        snaps[cur] = Some(h.save_context(0, 0, now));
        cur ^= 1;
        h.restore_context(0, 0, snaps[cur].as_ref(), now);
    }
}

#[test]
fn telemetry_counters_equal_cache_stats() {
    let mut cfg = HierarchyConfig::with_cores(1);
    cfg.security = SecurityMode::TimeCache(TimeCacheConfig::default());
    let tel = Telemetry::enabled();
    let mut h = Hierarchy::new(cfg).expect("valid config");
    h.attach_telemetry(&tel);

    run_two_process_workload(&mut h);

    let stats = h.stats();
    let reg = tel.registry().expect("telemetry is enabled");
    let get = |cache: &str, outcome: &str| {
        reg.counter_value(
            "sim_cache_accesses_total",
            &[("cache", cache), ("outcome", outcome)],
        )
        .unwrap_or(0)
    };

    for (label, cs) in [
        ("l1i", stats.l1i_total()),
        ("l1d", stats.l1d_total()),
        ("llc", stats.llc),
    ] {
        assert!(cs.accesses > 0, "{label} saw no traffic");
        assert_eq!(get(label, "hit"), cs.hits, "{label} hits");
        assert_eq!(
            get(label, "first_access"),
            cs.first_access,
            "{label} first-access misses"
        );
        assert_eq!(get(label, "miss"), cs.misses, "{label} true misses");
        assert_eq!(
            get(label, "hit") + get(label, "first_access") + get(label, "miss"),
            cs.accesses,
            "{label} outcome counters must partition the accesses"
        );
    }

    // The switch happened, so the mechanism's miss class is exercised.
    assert!(
        stats.total_first_access() > 0,
        "workload must provoke first-access misses"
    );

    // Exactly one latency observation per L1-level access.
    let latency_observations: u64 = ["l1", "llc", "remote_l1", "memory"]
        .iter()
        .map(|sb| {
            reg.histogram(
                "sim_access_latency_cycles",
                "Observed access latency in cycles by servicing component.",
                &[("served_by", sb)],
            )
            .count()
        })
        .sum();
    assert_eq!(
        latency_observations,
        stats.l1i_total().accesses + stats.l1d_total().accesses
    );
}

#[test]
fn baseline_run_has_no_first_access_counters() {
    let cfg = HierarchyConfig::with_cores(1);
    let tel = Telemetry::enabled();
    let mut h = Hierarchy::new(cfg).expect("valid config");
    h.attach_telemetry(&tel);

    run_two_process_workload(&mut h);

    let reg = tel.registry().expect("telemetry is enabled");
    for cache in ["l1i", "l1d", "llc"] {
        assert_eq!(
            reg.counter_value(
                "sim_cache_accesses_total",
                &[("cache", cache), ("outcome", "first_access")],
            ),
            Some(0),
            "{cache} must have zero first-access misses in baseline mode"
        );
    }
}
