//! The simulator's access hot path must not allocate: with telemetry
//! disabled every instrumentation site short-circuits on one `Option`
//! branch, and with telemetry enabled all metric handles are resolved at
//! attach time and the event ring is preallocated, so steady-state
//! recording is also allocation-free.
//!
//! This file contains a single test on purpose: the counting allocator is
//! process-global, and a concurrently running test would perturb the
//! counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use timecache_core::TimeCacheConfig;
use timecache_sim::{AccessKind, Hierarchy, HierarchyConfig, SecurityMode};
use timecache_telemetry::Telemetry;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn hierarchy(tel: &Telemetry) -> Hierarchy {
    let mut cfg = HierarchyConfig::with_cores(1);
    cfg.security = SecurityMode::TimeCache(TimeCacheConfig::default());
    let mut h = Hierarchy::new(cfg).expect("valid config");
    h.attach_telemetry(tel);
    h
}

/// A mix of L1 hits, LLC/DRAM misses, and the occasional flush.
fn drive(h: &mut Hierarchy, now: &mut u64, iters: u64) {
    for i in 0..iters {
        *now += 1;
        h.access(0, 0, AccessKind::IFetch, 0x7000_0000 + (i % 8) * 64, *now);
        let addr = 0x1000_0000 + (i % 2048) * 64;
        *now += 1;
        if i % 5 == 0 {
            h.access(0, 0, AccessKind::Store, addr, *now);
        } else {
            h.access(0, 0, AccessKind::Load, addr, *now);
        }
        if i % 97 == 0 {
            h.clflush(addr);
        }
    }
}

#[test]
fn access_hot_path_never_allocates() {
    // Disabled telemetry: the documented zero-cost guarantee.
    let mut h = hierarchy(&Telemetry::disabled());
    let mut now = 0u64;
    drive(&mut h, &mut now, 1_000); // warm the caches
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    drive(&mut h, &mut now, 10_000);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry must add zero heap allocations per access"
    );

    // Enabled telemetry: once the metric handles exist and the trace ring
    // has filled, recording is plain stores into preallocated memory.
    let tel = Telemetry::with_trace_capacity(128);
    let mut h = hierarchy(&tel);
    let mut now = 0u64;
    drive(&mut h, &mut now, 1_000); // resolve handles, fill the ring
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    drive(&mut h, &mut now, 10_000);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "enabled telemetry must be allocation-free in steady state"
    );
}
