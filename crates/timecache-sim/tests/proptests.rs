//! Randomized (deterministic, seed-driven) tests for the cache simulator.
//!
//! The workspace builds offline with no third-party crates (DESIGN.md §6),
//! so these drive the invariants from an in-file xorshift64* generator over
//! a fixed set of seeds instead of `proptest`.

use std::collections::HashMap;
use timecache_core::TimeCacheConfig;
use timecache_sim::{
    AccessKind, CacheConfig, Hierarchy, HierarchyConfig, Level, LineAddr, SecurityMode,
};

/// Minimal xorshift64* PRNG (duplicated from `timecache_workloads::rng`
/// to keep this crate's dev-dependencies empty).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

fn tiny_config(security: SecurityMode, cores: usize) -> HierarchyConfig {
    let mut cfg = HierarchyConfig::with_cores(cores);
    // Small caches so evictions happen within short traces.
    cfg.l1i = CacheConfig::new(1024, 2, 64);
    cfg.l1d = CacheConfig::new(1024, 2, 64);
    cfg.llc = CacheConfig::new(8192, 4, 64);
    cfg.security = security;
    cfg
}

#[derive(Debug, Clone)]
enum Ev {
    Access { kind: u8, line: u64 },
    Flush { line: u64 },
}

fn random_event(rng: &mut Rng) -> Ev {
    let line = rng.below(64);
    if rng.below(4) < 3 {
        Ev::Access {
            kind: rng.below(3) as u8,
            line,
        }
    } else {
        Ev::Flush { line }
    }
}

fn access_kind(kind: u8) -> AccessKind {
    match kind {
        0 => AccessKind::IFetch,
        1 => AccessKind::Load,
        _ => AccessKind::Store,
    }
}

/// Latency sanity: every access costs one of the model's defined
/// service latencies, and `served_by` matches it.
#[test]
fn latencies_match_served_level() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let nevents = rng.below(299) as usize + 1;
        let mut h = Hierarchy::new(tiny_config(SecurityMode::Baseline, 1)).unwrap();
        let lat = h.config().latencies;
        for i in 0..nevents {
            match random_event(&mut rng) {
                Ev::Access { kind, line } => {
                    let out = h.access(0, 0, access_kind(kind), line * 64, i as u64);
                    let expected = match out.served_by {
                        Level::L1 => lat.l1_hit,
                        Level::LLC => lat.llc_hit,
                        Level::RemoteL1 => lat.remote_l1,
                        Level::Memory => lat.dram,
                    };
                    assert_eq!(out.latency, expected, "seed {seed} step {i}");
                }
                Ev::Flush { line } => {
                    let l = h.clflush(line * 64);
                    assert!(
                        l == lat.flush_present || l == lat.flush_absent,
                        "seed {seed} step {i}"
                    );
                }
            }
        }
    }
}

/// Inclusivity: any L1-resident line is LLC-resident, under arbitrary
/// access/flush interleavings across two cores.
#[test]
fn llc_inclusivity_holds() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x100 + seed);
        let nevents = rng.below(299) as usize + 1;
        let mut h = Hierarchy::new(tiny_config(SecurityMode::Baseline, 2)).unwrap();
        for i in 0..nevents {
            let core = rng.below(2) as usize;
            match random_event(&mut rng) {
                Ev::Access { kind, line } => {
                    h.access(core, 0, access_kind(kind), line * 64, i as u64);
                }
                Ev::Flush { line } => {
                    h.clflush(line * 64);
                }
            }
            for line in 0u64..64 {
                let la = LineAddr::from_addr(line * 64, 64);
                for c in 0..2 {
                    if h.l1d(c).lookup(la).is_some() || h.l1i(c).lookup(la).is_some() {
                        assert!(
                            h.llc().lookup(la).is_some(),
                            "seed {seed}: line {line} in core {c}'s L1 but not LLC"
                        );
                    }
                }
            }
        }
    }
}

/// Baseline hit/miss behaviour matches a reference set-associative LRU
/// model for a single-core load-only trace.
#[test]
fn baseline_matches_reference_lru() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x200 + seed);
        let nlines = rng.below(399) as usize + 1;
        let lines: Vec<u64> = (0..nlines).map(|_| rng.below(48)).collect();
        let mut h = Hierarchy::new(tiny_config(SecurityMode::Baseline, 1)).unwrap();
        // Reference: L1D 8 sets x 2 ways over line addresses.
        let sets = 8u64;
        let ways = 2usize;
        let mut model: HashMap<u64, Vec<(u64, u64)>> = HashMap::new(); // set -> [(line, stamp)]
        let mut clock = 0u64;

        for (i, &line) in lines.iter().enumerate() {
            let out = h.access(0, 0, AccessKind::Load, line * 64, i as u64);
            clock += 1;
            let set = line % sets;
            let row = model.entry(set).or_default();
            let model_hit = row.iter().any(|&(l, _)| l == line);
            assert_eq!(
                out.l1_tag_hit, model_hit,
                "seed {seed} line {line} step {i}"
            );
            if model_hit {
                row.iter_mut().find(|(l, _)| *l == line).unwrap().1 = clock;
            } else {
                if row.len() == ways {
                    let oldest = row
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(_, s))| s)
                        .map(|(idx, _)| idx)
                        .unwrap();
                    row.remove(oldest);
                }
                row.push((line, clock));
            }
        }
    }
}

/// TimeCache never changes *which* data is resident relative to the
/// baseline for a single-context trace — only timing/visibility.
#[test]
fn single_context_residency_unchanged() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x300 + seed);
        let nlines = rng.below(299) as usize + 1;
        let lines: Vec<u64> = (0..nlines).map(|_| rng.below(64)).collect();
        let mut base = Hierarchy::new(tiny_config(SecurityMode::Baseline, 1)).unwrap();
        let mut tc = Hierarchy::new(tiny_config(
            SecurityMode::TimeCache(TimeCacheConfig::default()),
            1,
        ))
        .unwrap();
        for (i, &line) in lines.iter().enumerate() {
            base.access(0, 0, AccessKind::Load, line * 64, i as u64);
            tc.access(0, 0, AccessKind::Load, line * 64, i as u64);
        }
        for line in 0u64..64 {
            let la = LineAddr::from_addr(line * 64, 64);
            assert_eq!(
                base.l1d(0).lookup(la).is_some(),
                tc.l1d(0).lookup(la).is_some(),
                "seed {seed}: L1D divergence on line {line}"
            );
            assert_eq!(
                base.llc().lookup(la).is_some(),
                tc.llc().lookup(la).is_some(),
                "seed {seed}: LLC divergence on line {line}"
            );
        }
        // And a single context never takes first-access misses from its
        // own fills.
        assert_eq!(tc.stats().total_first_access(), 0, "seed {seed}");
    }
}

/// Statistics identity per cache: accesses = hits + misses +
/// first-access misses.
#[test]
fn stats_identity() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x400 + seed);
        let nevents = rng.below(299) as usize + 1;
        let mut h = Hierarchy::new(tiny_config(
            SecurityMode::TimeCache(TimeCacheConfig::default()),
            1,
        ))
        .unwrap();
        // Alternate between two SMT-less processes via context switches to
        // generate first accesses.
        let mut snaps = [None, None];
        for i in 0..nevents {
            let who = i % 2;
            let now = i as u64 * 10;
            let other = 1 - who;
            // Switch in `who`.
            snaps[other] = Some(h.save_context(0, 0, now));
            let snap = snaps[who].clone();
            h.restore_context(0, 0, snap.as_ref(), now);
            match random_event(&mut rng) {
                Ev::Access { kind, line } => {
                    h.access(0, 0, access_kind(kind), line * 64, now);
                }
                Ev::Flush { line } => {
                    h.clflush(line * 64);
                }
            }
        }
        let stats = h.stats();
        for s in [stats.l1i_total(), stats.l1d_total(), stats.llc] {
            assert_eq!(
                s.accesses,
                s.hits + s.misses + s.first_access,
                "seed {seed}: {s:?}"
            );
        }
    }
}
