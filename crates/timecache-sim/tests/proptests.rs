//! Property-based tests for the cache simulator.

use proptest::prelude::*;
use std::collections::HashMap;
use timecache_core::TimeCacheConfig;
use timecache_sim::{
    AccessKind, CacheConfig, Hierarchy, HierarchyConfig, Level, LineAddr, SecurityMode,
};

fn tiny_config(security: SecurityMode, cores: usize) -> HierarchyConfig {
    let mut cfg = HierarchyConfig::with_cores(cores);
    // Small caches so evictions happen within short traces.
    cfg.l1i = CacheConfig::new(1024, 2, 64);
    cfg.l1d = CacheConfig::new(1024, 2, 64);
    cfg.llc = CacheConfig::new(8192, 4, 64);
    cfg.security = security;
    cfg
}

#[derive(Debug, Clone)]
enum Ev {
    Access { kind: u8, line: u64 },
    Flush { line: u64 },
}

fn ev() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u8..3, 0u64..64).prop_map(|(kind, line)| Ev::Access { kind, line }),
        (0u64..64).prop_map(|line| Ev::Flush { line }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Latency sanity: every access costs one of the model's defined
    /// service latencies, and `served_by` matches it.
    #[test]
    fn latencies_match_served_level(events in prop::collection::vec(ev(), 1..300)) {
        let mut h = Hierarchy::new(tiny_config(SecurityMode::Baseline, 1)).unwrap();
        let lat = h.config().latencies;
        for (i, e) in events.iter().enumerate() {
            match e {
                Ev::Access { kind, line } => {
                    let kind = match kind { 0 => AccessKind::IFetch, 1 => AccessKind::Load, _ => AccessKind::Store };
                    let out = h.access(0, 0, kind, line * 64, i as u64);
                    let expected = match out.served_by {
                        Level::L1 => lat.l1_hit,
                        Level::LLC => lat.llc_hit,
                        Level::RemoteL1 => lat.remote_l1,
                        Level::Memory => lat.dram,
                    };
                    prop_assert_eq!(out.latency, expected);
                }
                Ev::Flush { line } => {
                    let l = h.clflush(line * 64);
                    prop_assert!(l == lat.flush_present || l == lat.flush_absent);
                }
            }
        }
    }

    /// Inclusivity: any L1-resident line is LLC-resident, under arbitrary
    /// access/flush interleavings across two cores.
    #[test]
    fn llc_inclusivity_holds(
        events in prop::collection::vec((0usize..2, ev()), 1..300),
    ) {
        let mut h = Hierarchy::new(tiny_config(SecurityMode::Baseline, 2)).unwrap();
        for (i, (core, e)) in events.iter().enumerate() {
            match e {
                Ev::Access { kind, line } => {
                    let kind = match kind { 0 => AccessKind::IFetch, 1 => AccessKind::Load, _ => AccessKind::Store };
                    h.access(*core, 0, kind, line * 64, i as u64);
                }
                Ev::Flush { line } => {
                    h.clflush(line * 64);
                }
            }
            for line in 0u64..64 {
                let la = LineAddr::from_addr(line * 64, 64);
                for c in 0..2 {
                    if h.l1d(c).lookup(la).is_some() || h.l1i(c).lookup(la).is_some() {
                        prop_assert!(
                            h.llc().lookup(la).is_some(),
                            "line {} in core {}'s L1 but not LLC", line, c
                        );
                    }
                }
            }
        }
    }

    /// Baseline hit/miss behaviour matches a reference set-associative LRU
    /// model for a single-core load-only trace.
    #[test]
    fn baseline_matches_reference_lru(lines in prop::collection::vec(0u64..48, 1..400)) {
        let mut h = Hierarchy::new(tiny_config(SecurityMode::Baseline, 1)).unwrap();
        // Reference: L1D 8 sets x 2 ways over line addresses.
        let sets = 8u64;
        let ways = 2usize;
        let mut model: HashMap<u64, Vec<(u64, u64)>> = HashMap::new(); // set -> [(line, stamp)]
        let mut clock = 0u64;

        for (i, &line) in lines.iter().enumerate() {
            let out = h.access(0, 0, AccessKind::Load, line * 64, i as u64);
            clock += 1;
            let set = line % sets;
            let row = model.entry(set).or_default();
            let model_hit = row.iter().any(|&(l, _)| l == line);
            prop_assert_eq!(out.l1_tag_hit, model_hit, "line {} step {}", line, i);
            if model_hit {
                row.iter_mut().find(|(l, _)| *l == line).unwrap().1 = clock;
            } else {
                if row.len() == ways {
                    let oldest = row
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(_, s))| s)
                        .map(|(idx, _)| idx)
                        .unwrap();
                    row.remove(oldest);
                }
                row.push((line, clock));
            }
        }
    }

    /// TimeCache never changes *which* data is resident relative to the
    /// baseline for a single-context trace — only timing/visibility.
    #[test]
    fn single_context_residency_unchanged(lines in prop::collection::vec(0u64..64, 1..300)) {
        let mut base = Hierarchy::new(tiny_config(SecurityMode::Baseline, 1)).unwrap();
        let mut tc = Hierarchy::new(tiny_config(
            SecurityMode::TimeCache(TimeCacheConfig::default()), 1)).unwrap();
        for (i, &line) in lines.iter().enumerate() {
            base.access(0, 0, AccessKind::Load, line * 64, i as u64);
            tc.access(0, 0, AccessKind::Load, line * 64, i as u64);
        }
        for line in 0u64..64 {
            let la = LineAddr::from_addr(line * 64, 64);
            prop_assert_eq!(
                base.l1d(0).lookup(la).is_some(),
                tc.l1d(0).lookup(la).is_some(),
                "L1D divergence on line {}", line
            );
            prop_assert_eq!(
                base.llc().lookup(la).is_some(),
                tc.llc().lookup(la).is_some(),
                "LLC divergence on line {}", line
            );
        }
        // And a single context never takes first-access misses from its
        // own fills.
        prop_assert_eq!(tc.stats().total_first_access(), 0);
    }

    /// Statistics identity per cache: accesses = hits + misses +
    /// first-access misses.
    #[test]
    fn stats_identity(events in prop::collection::vec(ev(), 1..300)) {
        let mut h = Hierarchy::new(tiny_config(
            SecurityMode::TimeCache(TimeCacheConfig::default()), 1)).unwrap();
        // Alternate between two SMT-less processes via context switches to
        // generate first accesses.
        let mut snaps = [None, None];
        for (i, e) in events.iter().enumerate() {
            let who = i % 2;
            let now = i as u64 * 10;
            let other = 1 - who;
            // Switch in `who`.
            snaps[other] = Some(h.save_context(0, 0, now));
            let snap = snaps[who].clone();
            h.restore_context(0, 0, snap.as_ref(), now);
            match e {
                Ev::Access { kind, line } => {
                    let kind = match kind { 0 => AccessKind::IFetch, 1 => AccessKind::Load, _ => AccessKind::Store };
                    h.access(0, 0, kind, line * 64, now);
                }
                Ev::Flush { line } => { h.clflush(line * 64); }
            }
        }
        let stats = h.stats();
        for s in [stats.l1i_total(), stats.l1d_total(), stats.llc] {
            prop_assert_eq!(s.accesses, s.hits + s.misses + s.first_access, "{:?}", s);
        }
    }
}
