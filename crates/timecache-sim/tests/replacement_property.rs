//! Replacement-state equivalence under first-access misses.
//!
//! The paper's served-as-miss semantics (Section V-A) forward the cached
//! copy's data at miss latency without refilling the line: the copy stays
//! where it is, and the *replacement* machinery must treat the access
//! exactly like the hit it physically is. If a first access perturbed LRU
//! state differently than a true hit — aged the line, skipped the touch,
//! or re-inserted it — the attacker could read the victim's accesses back
//! out of subsequent eviction victims even though every probe latency was
//! constant.
//!
//! These tests pin that down as a property over random traces: two
//! identically configured TimeCache hierarchies run the same access
//! sequence, except that one "probe" access is performed by the context
//! that filled the line (a true s-bit hit) in one hierarchy and by a
//! fresh context with no visibility (a tag-present, s-bit-clear first
//! access) in the other. Everything observable afterwards — tag
//! residency, latency classes, eviction victims — must be identical.

use timecache_core::TimeCacheConfig;
use timecache_sim::{
    AccessKind, AccessOutcome, CacheConfig, Hierarchy, HierarchyConfig, Level, SecurityMode,
};

/// Minimal xorshift64* PRNG (same idiom as `tests/proptests.rs`; the
/// workspace builds with no third-party crates, DESIGN.md §6).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// One core, small caches, wide (rollover-free) TimeCache timestamps.
fn tc_config() -> HierarchyConfig {
    let mut cfg = HierarchyConfig::with_cores(1);
    cfg.l1i = CacheConfig::new(1024, 2, 64);
    cfg.l1d = CacheConfig::new(1024, 2, 64);
    cfg.llc = CacheConfig::new(8192, 4, 64);
    cfg.security = SecurityMode::TimeCache(TimeCacheConfig::new(32));
    cfg
}

/// Candidate lines: distinct tags, all in L1D set 3 (8 sets, 64 B lines).
fn candidate(tag: u64) -> u64 {
    tag * 8 * 64 + 3 * 64
}

const CANDIDATES: u64 = 7;

/// Drives one hierarchy, tracking its private cycle clock.
struct Driver {
    h: Hierarchy,
    now: u64,
}

impl Driver {
    fn new() -> Driver {
        Driver {
            h: Hierarchy::new(tc_config()).expect("valid test config"),
            now: 1,
        }
    }

    fn access(&mut self, kind: AccessKind, addr: u64) -> AccessOutcome {
        let out = self.h.access(0, 0, kind, addr, self.now);
        self.now += out.latency + 1;
        out
    }
}

/// Runs the probe step as the incumbent context (a true hit).
fn probe_as_owner(d: &mut Driver, addr: u64) -> AccessOutcome {
    d.access(AccessKind::Load, addr)
}

/// Runs the probe step as a fresh context: save the incumbent, restore a
/// context that has never run (no visibility anywhere), probe (tag hit,
/// s-bit clear, first access), then bring the incumbent back.
fn probe_as_stranger(d: &mut Driver, addr: u64) -> AccessOutcome {
    let owner = d.h.save_context(0, 0, d.now);
    let cost = d.h.restore_context(0, 0, None, d.now);
    d.now += cost.comparator_cycles + cost.transfer_lines + 1;
    let out = d.access(AccessKind::Load, addr);
    let _stranger = d.h.save_context(0, 0, d.now);
    let cost = d.h.restore_context(0, 0, Some(&owner), d.now);
    d.now += cost.comparator_cycles + cost.transfer_lines + 1;
    out
}

/// The deterministic core of the property: a 2-way set holds X then Y
/// (Y is MRU). Touching X — as a true hit or as a stranger's first
/// access — must make X MRU, so the next fill evicts Y in both worlds.
#[test]
fn first_access_touch_promotes_the_line_like_a_hit() {
    let (x, y, z) = (candidate(0), candidate(1), candidate(2));
    let mut hit = Driver::new();
    let mut first = Driver::new();
    for d in [&mut hit, &mut first] {
        d.access(AccessKind::Load, x);
        d.access(AccessKind::Load, y);
    }

    let h = probe_as_owner(&mut hit, x);
    assert!(h.l1_tag_hit && !h.is_first_access(), "true hit: {h:?}");
    assert_eq!(h.served_by, Level::L1);
    let f = probe_as_stranger(&mut first, x);
    assert!(
        f.l1_tag_hit && f.first_access_l1,
        "stranger sees a tag-present, s-bit-clear line: {f:?}"
    );
    assert_ne!(f.served_by, Level::L1, "first access pays miss latency");

    // The fill of Z must evict Y (the LRU way) in both hierarchies: X was
    // promoted by the probe either way.
    for (d, label) in [(&mut hit, "hit"), (&mut first, "first-access")] {
        d.access(AccessKind::Load, z);
        let x_out = d.access(AccessKind::Load, x);
        assert!(x_out.l1_tag_hit, "{label}: X must survive, it was MRU");
        let y_out = d.access(AccessKind::Load, y);
        assert!(!y_out.l1_tag_hit, "{label}: Y must have been the victim");
    }
}

/// Randomized equivalence: identical random prep and tail around a probe
/// that is a true hit in one hierarchy and a stranger's first access in
/// the other. The final residency/latency-class sweep must be identical
/// field for field.
#[test]
fn first_access_and_true_hit_leave_identical_replacement_state() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed);
        let mut hit = Driver::new();
        let mut first = Driver::new();

        // Random prep by the owner, mirrored into both hierarchies.
        let prep = 8 + rng.below(17);
        let mut last = candidate(rng.below(CANDIDATES));
        for _ in 0..prep {
            let addr = candidate(rng.below(CANDIDATES));
            let kind = if rng.below(4) == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            for d in [&mut hit, &mut first] {
                d.access(kind, addr);
            }
            last = addr;
        }

        // Probe the most recently touched line (certainly resident).
        let h = probe_as_owner(&mut hit, last);
        assert!(h.l1_tag_hit && !h.is_first_access(), "seed {seed}: {h:?}");
        let f = probe_as_stranger(&mut first, last);
        assert!(f.l1_tag_hit && f.first_access_l1, "seed {seed}: {f:?}");

        // Random tail by the owner, again mirrored.
        let tail = 4 + rng.below(13);
        for _ in 0..tail {
            let addr = candidate(rng.below(CANDIDATES));
            for d in [&mut hit, &mut first] {
                d.access(AccessKind::Load, addr);
            }
        }

        // Sweep every candidate in a fixed order: residency, first-access
        // classification, serving level, and latency must all agree. The
        // sweep itself perturbs both hierarchies identically.
        for tag in 0..CANDIDATES {
            let a = hit.access(AccessKind::Load, candidate(tag));
            let b = first.access(AccessKind::Load, candidate(tag));
            assert_eq!(
                a, b,
                "seed {seed}, tag {tag}: replacement state diverged after \
                 a first-access probe vs a true-hit probe"
            );
        }
    }
}

/// The same equivalence for stores: a first-access *write* must age the
/// line and its set exactly like a write hit (served as a miss, but the
/// dirty copy stays put and stays MRU).
#[test]
fn first_access_store_matches_write_hit_replacement_state() {
    for seed in 100..124u64 {
        let mut rng = Rng::new(seed);
        let mut hit = Driver::new();
        let mut first = Driver::new();

        let prep = 6 + rng.below(11);
        let mut last = candidate(rng.below(CANDIDATES));
        for _ in 0..prep {
            let addr = candidate(rng.below(CANDIDATES));
            for d in [&mut hit, &mut first] {
                d.access(AccessKind::Store, addr);
            }
            last = addr;
        }

        let h = hit.access(AccessKind::Store, last);
        assert!(h.l1_tag_hit && !h.is_first_access(), "seed {seed}: {h:?}");
        let owner = first.h.save_context(0, 0, first.now);
        let cost = first.h.restore_context(0, 0, None, first.now);
        first.now += cost.comparator_cycles + cost.transfer_lines + 1;
        let f = first.access(AccessKind::Store, last);
        assert!(f.l1_tag_hit && f.first_access_l1, "seed {seed}: {f:?}");
        let _stranger = first.h.save_context(0, 0, first.now);
        let cost = first.h.restore_context(0, 0, Some(&owner), first.now);
        first.now += cost.comparator_cycles + cost.transfer_lines + 1;

        for tag in 0..CANDIDATES {
            let a = hit.access(AccessKind::Load, candidate(tag));
            let b = first.access(AccessKind::Load, candidate(tag));
            assert_eq!(a, b, "seed {seed}, tag {tag}: store probe diverged");
        }
    }
}
