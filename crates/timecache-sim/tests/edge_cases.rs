//! Integration tests for simulator edge cases: write-back correctness,
//! directory maintenance, alternative replacement policies and index
//! functions operating inside the full hierarchy.

use timecache_core::TimeCacheConfig;
use timecache_sim::{
    AccessKind, CacheConfig, Hierarchy, HierarchyConfig, IndexFn, Level, LineAddr, ReplacementKind,
    SecurityMode,
};

fn small(security: SecurityMode, cores: usize) -> HierarchyConfig {
    let mut cfg = HierarchyConfig::with_cores(cores);
    cfg.l1i = CacheConfig::new(1024, 2, 64);
    cfg.l1d = CacheConfig::new(1024, 2, 64);
    cfg.llc = CacheConfig::new(8192, 4, 64);
    cfg.security = security;
    cfg
}

#[test]
fn dirty_l1_eviction_writes_back_to_llc() {
    let mut h = Hierarchy::new(small(SecurityMode::Baseline, 1)).unwrap();
    // Store to a line, then evict it from the 2-way L1D set with two
    // conflicting loads (stride = L1 set period = 8 sets * 64 B = 512 B).
    h.access(0, 0, AccessKind::Store, 0x0, 0);
    h.access(0, 0, AccessKind::Load, 0x200, 1);
    h.access(0, 0, AccessKind::Load, 0x400, 2);
    assert!(h.l1d(0).lookup(LineAddr::from_addr(0x0, 64)).is_none());
    assert_eq!(h.stats().l1d[0].writebacks, 1);
    // The data survives in the LLC: reload at LLC latency, not DRAM.
    let reload = h.access(0, 0, AccessKind::Load, 0x0, 3);
    assert_eq!(reload.served_by, Level::LLC);
}

#[test]
fn dirty_llc_eviction_writes_back_to_memory() {
    let mut h = Hierarchy::new(small(SecurityMode::Baseline, 1)).unwrap();
    // Dirty a line, push it out of the L1 (write-back marks LLC dirty),
    // then walk enough conflicting lines to evict it from the 4-way LLC
    // set (stride = 32 sets * 64 B = 2 KiB).
    h.access(0, 0, AccessKind::Store, 0x0, 0);
    h.access(0, 0, AccessKind::Load, 0x200, 1);
    h.access(0, 0, AccessKind::Load, 0x400, 2);
    for i in 1..=4u64 {
        h.access(0, 0, AccessKind::Load, i * 0x800, 10 + i);
    }
    assert!(h.llc().lookup(LineAddr::from_addr(0x0, 64)).is_none());
    assert!(h.stats().llc.writebacks >= 1);
}

#[test]
fn clflush_of_dirty_line_counts_writeback() {
    let mut h = Hierarchy::new(small(SecurityMode::Baseline, 1)).unwrap();
    h.access(0, 0, AccessKind::Store, 0x40, 0);
    h.clflush(0x40);
    assert_eq!(h.stats().l1d[0].writebacks, 1);
    assert!(h.l1d(0).lookup(LineAddr::from_addr(0x40, 64)).is_none());
    assert!(h.llc().lookup(LineAddr::from_addr(0x40, 64)).is_none());
}

#[test]
fn store_migration_between_cores_stays_coherent() {
    let mut h = Hierarchy::new(small(SecurityMode::Baseline, 2)).unwrap();
    // Ping-pong a line between two writers.
    for i in 0..6u64 {
        let core = (i % 2) as usize;
        h.access(core, 0, AccessKind::Store, 0x1000, i * 10);
    }
    // Each store after the first invalidates the other core's copy.
    let inval = h.stats().l1d[0].invalidations + h.stats().l1d[1].invalidations;
    assert!(inval >= 5, "invalidations {inval}");
    // Final state: only the last writer holds it.
    let la = LineAddr::from_addr(0x1000, 64);
    assert!(h.l1d(0).lookup(la).is_none());
    assert!(h.l1d(1).lookup(la).is_some());
}

#[test]
fn alternative_replacement_policies_run_in_hierarchy() {
    for kind in [
        ReplacementKind::TreePlru,
        ReplacementKind::Fifo,
        ReplacementKind::Random { seed: 9 },
        ReplacementKind::Srrip,
    ] {
        let mut cfg = small(SecurityMode::TimeCache(TimeCacheConfig::default()), 1);
        cfg.l1d.replacement = kind;
        cfg.llc.replacement = kind;
        let mut h = Hierarchy::new(cfg).unwrap();
        for i in 0..2000u64 {
            // A hot 8-line loop (hits) with periodic streaming excursions
            // (misses).
            let addr = if i % 4 == 0 {
                (i * 97 % 512) * 64
            } else {
                0x10_0000 + (i % 8) * 64
            };
            h.access(0, 0, AccessKind::Load, addr, i);
        }
        let s = h.stats();
        assert!(s.l1d[0].hits > 0, "{kind:?} produced no hits");
        assert!(s.l1d[0].misses > 0, "{kind:?} produced no misses");
        assert_eq!(
            s.l1d[0].accesses,
            s.l1d[0].hits + s.l1d[0].misses + s.l1d[0].first_access,
            "{kind:?} stats identity"
        );
    }
}

#[test]
fn keyed_llc_index_preserves_correct_caching() {
    let mut cfg = small(SecurityMode::Baseline, 1);
    cfg.llc.index = IndexFn::Keyed { key: 0xFEED };
    let mut h = Hierarchy::new(cfg).unwrap();
    // A working set small enough to be fully resident: second pass must
    // hit everywhere regardless of the randomized placement.
    for i in 0..16u64 {
        h.access(0, 0, AccessKind::Load, i * 64, i);
    }
    let mut hits = 0;
    for i in 0..16u64 {
        let out = h.access(0, 0, AccessKind::Load, i * 64, 100 + i);
        hits += (out.served_by == Level::L1) as u32;
    }
    assert_eq!(hits, 16);
}

#[test]
fn timecache_keeps_smt_and_llc_context_counts_apart() {
    let mut cfg = small(SecurityMode::TimeCache(TimeCacheConfig::default()), 2);
    cfg.smt_per_core = 2;
    let h = Hierarchy::new(cfg).unwrap();
    // L1s carry one s-bit plane per SMT thread; the LLC one per global
    // context.
    assert_eq!(h.l1d(0).timecache().unwrap().num_contexts(), 2);
    assert_eq!(h.llc().timecache().unwrap().num_contexts(), 4);
    assert_eq!(h.llc_ctx(1, 1), 3);
}

#[test]
fn first_access_still_counts_when_llc_visible() {
    // L1 first access with a visible LLC copy is serviced at LLC latency
    // (Section V-A: the lower level answers if its s-bit is set).
    let mut cfg = HierarchyConfig::with_cores(1);
    cfg.smt_per_core = 2;
    cfg.security = SecurityMode::TimeCache(TimeCacheConfig::default());
    let mut h = Hierarchy::new(cfg).unwrap();

    // Thread 1 loads (fills L1+LLC for ctx 1); thread 0 of the same core
    // tag-hits the L1 but is invisible there *and* at the LLC -> DRAM.
    h.access(0, 1, AccessKind::Load, 0x9000, 0);
    let spy = h.access(0, 0, AccessKind::Load, 0x9000, 1);
    assert_eq!(spy.served_by, Level::Memory);

    // Pay once; evict from L1 only (two conflicting loads in the 64-set
    // L1): then thread 0 misses L1 but its LLC s-bit is set -> LLC hit.
    let set_stride = 64 * 64;
    h.access(0, 0, AccessKind::Load, 0x9000 + set_stride, 2);
    h.access(0, 0, AccessKind::Load, 0x9000 + 2 * set_stride, 3);
    h.access(0, 0, AccessKind::Load, 0x9000 + 3 * set_stride, 4);
    // 8-way L1: keep pushing to guarantee eviction of 0x9000.
    for i in 4..12u64 {
        h.access(0, 0, AccessKind::Load, 0x9000 + i * set_stride, 4 + i);
    }
    assert!(h.l1d(0).lookup(LineAddr::from_addr(0x9000, 64)).is_none());
    let back = h.access(0, 0, AccessKind::Load, 0x9000, 100);
    assert_eq!(back.served_by, Level::LLC, "LLC s-bit was paid for");
}
