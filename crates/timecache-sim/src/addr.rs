//! Physical addresses and cache-line addresses.

use std::fmt;

/// A byte-granular physical address.
///
/// The simulator works on physical addresses throughout: the paper's threat
/// model concerns physically shared memory (shared libraries, deduplicated
/// pages), and caches in the evaluated system are physically indexed.
pub type Addr = u64;

/// A cache-line-granular address: the physical address with the block
/// offset stripped.
///
/// # Examples
///
/// ```
/// use timecache_sim::LineAddr;
///
/// let la = LineAddr::from_addr(0x1234, 64);
/// assert_eq!(la.base(64), 0x1200);
/// assert!(la.contains(0x123F, 64));
/// assert!(!la.contains(0x1240, 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// The line containing byte address `addr` for the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn from_addr(addr: Addr, line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two, got {line_size}"
        );
        LineAddr(addr >> line_size.trailing_zeros())
    }

    /// Rebuilds a line address from a raw line number (see
    /// [`LineAddr::raw`]).
    pub fn from_raw(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The raw line number (address divided by line size).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte in the line.
    pub fn base(self, line_size: u64) -> Addr {
        self.0 << line_size.trailing_zeros()
    }

    /// Whether the byte address falls inside this line.
    pub fn contains(self, addr: Addr, line_size: u64) -> bool {
        LineAddr::from_addr(addr, line_size) == self
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_offset() {
        assert_eq!(LineAddr::from_addr(0, 64), LineAddr::from_addr(63, 64));
        assert_ne!(LineAddr::from_addr(63, 64), LineAddr::from_addr(64, 64));
    }

    #[test]
    fn base_roundtrip() {
        let la = LineAddr::from_addr(0xABCD, 64);
        assert_eq!(la.base(64), 0xABC0);
        assert_eq!(LineAddr::from_addr(la.base(64), 64), la);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        LineAddr::from_addr(0, 48);
    }

    #[test]
    fn contains_is_line_granular() {
        let la = LineAddr::from_addr(0x100, 32);
        assert!(la.contains(0x11F, 32));
        assert!(!la.contains(0x120, 32));
        assert!(!la.contains(0xFF, 32));
    }
}
