//! Dynamic re-reference interval prediction (DRRIP) replacement.
//!
//! DRRIP (Jaleel et al., ISCA 2010) set-duels two insertion policies:
//! SRRIP (insert "long") and BRRIP (insert "distant" almost always,
//! protecting the cache from scans). A handful of leader sets are
//! dedicated to each policy; a saturating counter (PSEL) tracks which
//! leader group misses less and steers all follower sets.

/// RRPV value considered distant (2-bit: 3).
const DISTANT: u8 = 3;
/// RRPV assigned by SRRIP-style insertion.
const LONG: u8 = 2;
/// BRRIP inserts "long" only once every `BRRIP_LONG_PERIOD` fills.
const BRRIP_LONG_PERIOD: u32 = 32;
/// Leader sets per policy.
const LEADERS: u64 = 4;
/// PSEL saturating-counter range.
const PSEL_MAX: i32 = 1023;

/// DRRIP with 2-bit RRPVs and set dueling.
#[derive(Debug, Clone)]
pub struct Drrip {
    rrpv: Vec<u8>,
    sets: u64,
    ways: u32,
    /// Policy-selection counter: positive favours SRRIP insertion.
    psel: i32,
    /// Fill counter for BRRIP's infrequent "long" insertions.
    brrip_fills: u32,
}

/// Which duelling group a set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    LeaderSrrip,
    LeaderBrrip,
    Follower,
}

impl Drrip {
    /// Creates DRRIP state for `sets` sets of `ways` ways.
    pub fn new(sets: u64, ways: u32) -> Self {
        Drrip {
            rrpv: vec![DISTANT; (sets * ways as u64) as usize],
            sets,
            ways,
            psel: 0,
            brrip_fills: 0,
        }
    }

    fn role(&self, set: u64) -> SetRole {
        // Spread the leader sets through the index space.
        let stride = (self.sets / (2 * LEADERS)).max(1);
        if set.is_multiple_of(stride) {
            let leader = set / stride;
            if leader < LEADERS {
                return SetRole::LeaderSrrip;
            } else if leader < 2 * LEADERS {
                return SetRole::LeaderBrrip;
            }
        }
        SetRole::Follower
    }

    fn use_srrip(&self, set: u64) -> bool {
        match self.role(set) {
            SetRole::LeaderSrrip => true,
            SetRole::LeaderBrrip => false,
            SetRole::Follower => self.psel >= 0,
        }
    }

    /// Promote to near-immediate re-reference.
    pub fn on_hit(&mut self, set: u64, way: u32) {
        self.rrpv[(set * self.ways as u64 + way as u64) as usize] = 0;
    }

    /// Insert with the duel-selected policy; leader-set fills train PSEL
    /// (a fill implies the set recently missed).
    pub fn on_fill(&mut self, set: u64, way: u32) {
        match self.role(set) {
            // A miss in an SRRIP leader argues for BRRIP, and vice versa.
            SetRole::LeaderSrrip => self.psel = (self.psel - 1).max(-PSEL_MAX),
            SetRole::LeaderBrrip => self.psel = (self.psel + 1).min(PSEL_MAX),
            SetRole::Follower => {}
        }
        let rrpv = if self.use_srrip(set) {
            LONG
        } else {
            self.brrip_fills = self.brrip_fills.wrapping_add(1);
            if self.brrip_fills.is_multiple_of(BRRIP_LONG_PERIOD) {
                LONG
            } else {
                DISTANT
            }
        };
        self.rrpv[(set * self.ways as u64 + way as u64) as usize] = rrpv;
    }

    /// First distant way, ageing the set until one exists.
    pub fn victim(&mut self, set: u64) -> u32 {
        let base = (set * self.ways as u64) as usize;
        loop {
            let row = &mut self.rrpv[base..base + self.ways as usize];
            if let Some(w) = row.iter().position(|&r| r >= DISTANT) {
                return w as u32;
            }
            for r in row {
                *r += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_protect_lines() {
        let mut d = Drrip::new(64, 4);
        let set = 33; // a follower set
        for w in 0..4 {
            d.on_fill(set, w);
        }
        d.on_hit(set, 1);
        let v = d.victim(set);
        assert_ne!(v, 1, "the re-referenced way must survive");
    }

    #[test]
    fn scan_heavy_traffic_trains_psel_towards_brrip() {
        let mut d = Drrip::new(64, 4);
        // Hammer the SRRIP leader sets with fills (pure misses): PSEL
        // must swing negative (towards BRRIP).
        let stride = 64 / (2 * LEADERS);
        for round in 0..200u64 {
            for leader in 0..LEADERS {
                d.on_fill(leader * stride, (round % 4) as u32);
            }
        }
        assert!(d.psel < 0, "psel {}", d.psel);
    }

    #[test]
    fn brrip_occasionally_inserts_long() {
        let mut d = Drrip::new(64, 4);
        d.psel = -PSEL_MAX; // force BRRIP in followers
        let set = 33;
        let mut longs = 0;
        for i in 0..(2 * BRRIP_LONG_PERIOD) {
            d.on_fill(set, i % 4);
            if d.rrpv[(set * 4 + (i % 4) as u64) as usize] == LONG {
                longs += 1;
            }
        }
        assert!((1..=4).contains(&longs), "longs {longs}");
    }

    #[test]
    fn victim_is_always_in_range() {
        let mut d = Drrip::new(16, 8);
        for i in 0..500u64 {
            let set = i % 16;
            let v = d.victim(set);
            assert!(v < 8);
            d.on_fill(set, (i % 8) as u32);
        }
    }
}
