//! Tree pseudo-LRU replacement.

/// Tree-PLRU: a binary tree of direction bits per set. Each touch flips the
/// bits on the path to the touched way to point *away* from it; the victim
/// is found by following the bits from the root.
///
/// Requires power-of-two associativity. This is what commodity L1 caches
/// implement in silicon, and is provided to show the TimeCache results are
/// not an artifact of exact LRU.
#[derive(Debug, Clone)]
pub struct TreePlru {
    /// `ways - 1` tree bits per set, heap order (node 0 = root).
    bits: Vec<bool>,
    ways: u32,
    levels: u32,
}

impl TreePlru {
    /// Creates Tree-PLRU state.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is not a power of two.
    pub fn new(sets: u64, ways: u32) -> Self {
        assert!(
            ways.is_power_of_two(),
            "tree-PLRU requires power-of-two ways, got {ways}"
        );
        TreePlru {
            bits: vec![false; (sets * (ways as u64 - 1).max(1)) as usize],
            ways,
            levels: ways.trailing_zeros(),
        }
    }

    fn set_base(&self, set: u64) -> usize {
        (set * (self.ways as u64 - 1).max(1)) as usize
    }

    /// Points the path bits away from the touched way.
    pub fn on_hit(&mut self, set: u64, way: u32) {
        if self.ways == 1 {
            return;
        }
        let base = self.set_base(set);
        let mut node = 0usize;
        for level in (0..self.levels).rev() {
            let go_right = way >> level & 1 == 1;
            // Bit records which side is *older*: point at the other side.
            self.bits[base + node] = !go_right;
            node = 2 * node + 1 + go_right as usize;
        }
    }

    /// Fills touch like hits.
    pub fn on_fill(&mut self, set: u64, way: u32) {
        self.on_hit(set, way);
    }

    /// Follows the direction bits from the root to the pseudo-LRU way.
    pub fn victim(&mut self, set: u64) -> u32 {
        if self.ways == 1 {
            return 0;
        }
        let base = self.set_base(set);
        let mut node = 0usize;
        let mut way = 0u32;
        for _ in 0..self.levels {
            let right = self.bits[base + node];
            way = way << 1 | right as u32;
            node = 2 * node + 1 + right as usize;
        }
        way
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_avoids_recent_touches() {
        let mut p = TreePlru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // Way 3 was touched last: the victim must be in the other subtree.
        let v = p.victim(0);
        assert!(v == 0 || v == 1, "victim {v}");
        p.on_hit(0, v);
        assert_ne!(p.victim(0), v);
    }

    #[test]
    fn plru_approximates_lru_on_sequential_fill() {
        let mut p = TreePlru::new(1, 8);
        for w in 0..8 {
            p.on_fill(0, w);
        }
        // After filling 0..7 in order, true LRU would evict 0; tree-PLRU
        // agrees in this pattern.
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn direct_mapped_degenerates() {
        let mut p = TreePlru::new(4, 1);
        p.on_fill(2, 0);
        assert_eq!(p.victim(2), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        TreePlru::new(1, 6);
    }
}
