//! Random replacement.

/// Uniform-random victim selection, deterministic from a seed.
///
/// Uses an inline xorshift64* generator so the simulator core stays
/// dependency-free and runs are bit-for-bit reproducible.
#[derive(Debug, Clone)]
pub struct Random {
    state: u64,
    ways: u32,
}

impl Random {
    /// Creates random-replacement state. `sets` is accepted for interface
    /// symmetry; random replacement keeps no per-set state.
    pub fn new(_sets: u64, ways: u32, seed: u64) -> Self {
        Random {
            // xorshift must not start at zero.
            state: seed | 1,
            ways,
        }
    }

    /// Hits carry no information for random replacement.
    pub fn on_hit(&mut self, _set: u64, _way: u32) {}

    /// Fills carry no information for random replacement.
    pub fn on_fill(&mut self, _set: u64, _way: u32) {}

    /// A pseudo-random way.
    pub fn victim(&mut self, _set: u64) -> u32 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as u32 % self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Random::new(1, 8, 42);
        let mut b = Random::new(1, 8, 42);
        let va: Vec<u32> = (0..32).map(|_| a.victim(0)).collect();
        let vb: Vec<u32> = (0..32).map(|_| b.victim(0)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn covers_all_ways_eventually() {
        let mut r = Random::new(1, 4, 7);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.victim(0) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen {seen:?}");
    }

    #[test]
    fn victims_in_range() {
        let mut r = Random::new(1, 3, 99);
        assert!((0..1000).all(|_| r.victim(0) < 3));
    }
}
