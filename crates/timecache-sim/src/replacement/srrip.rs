//! Static re-reference interval prediction (SRRIP) replacement.

/// SRRIP with 2-bit re-reference prediction values (RRPV).
///
/// Lines are filled with a "long" predicted re-reference interval (RRPV 2),
/// promoted to "near-immediate" (RRPV 0) on a hit, and the victim is the
/// first line predicted "distant" (RRPV 3), ageing the whole set until one
/// exists. Jaleel et al., ISCA 2010.
#[derive(Debug, Clone)]
pub struct Srrip {
    rrpv: Vec<u8>,
    ways: u32,
}

/// RRPV value considered distant (2-bit: 3).
const DISTANT: u8 = 3;
/// RRPV assigned on fill ("long"): distant - 1.
const LONG: u8 = 2;

impl Srrip {
    /// Creates SRRIP state for `sets` sets of `ways` ways.
    pub fn new(sets: u64, ways: u32) -> Self {
        Srrip {
            // Start distant so untouched ways are evicted first.
            rrpv: vec![DISTANT; (sets * ways as u64) as usize],
            ways,
        }
    }

    /// Promote to near-immediate re-reference.
    pub fn on_hit(&mut self, set: u64, way: u32) {
        self.rrpv[(set * self.ways as u64 + way as u64) as usize] = 0;
    }

    /// Insert with a long re-reference prediction.
    pub fn on_fill(&mut self, set: u64, way: u32) {
        self.rrpv[(set * self.ways as u64 + way as u64) as usize] = LONG;
    }

    /// First distant way, ageing the set until one exists.
    pub fn victim(&mut self, set: u64) -> u32 {
        let base = (set * self.ways as u64) as usize;
        loop {
            let row = &mut self.rrpv[base..base + self.ways as usize];
            if let Some(w) = row.iter().position(|&r| r >= DISTANT) {
                return w as u32;
            }
            for r in row {
                *r += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_ways_evicted_first() {
        let mut s = Srrip::new(1, 4);
        s.on_fill(0, 0);
        s.on_fill(0, 1);
        assert_eq!(s.victim(0), 2);
    }

    #[test]
    fn hits_protect_lines() {
        let mut s = Srrip::new(1, 2);
        s.on_fill(0, 0);
        s.on_fill(0, 1);
        s.on_hit(0, 0);
        // Way 1 (RRPV 2) ages to 3 before way 0 (RRPV 0).
        assert_eq!(s.victim(0), 1);
    }

    #[test]
    fn ageing_terminates() {
        let mut s = Srrip::new(1, 4);
        for w in 0..4 {
            s.on_fill(0, w);
            s.on_hit(0, w);
        }
        let v = s.victim(0);
        assert!(v < 4);
    }
}
