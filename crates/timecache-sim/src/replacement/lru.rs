//! Exact least-recently-used replacement.

/// Exact LRU: every touch stamps the line with a monotonically increasing
/// counter; the victim is the way with the oldest stamp.
///
/// This is the policy the LRU-state side channel of the paper's Section
/// VII-A reasons about, and the default for all cache levels (matching the
/// gem5 classic caches the paper evaluates on).
#[derive(Debug, Clone)]
pub struct Lru {
    stamps: Vec<u64>,
    ways: u32,
    clock: u64,
}

impl Lru {
    /// Creates LRU state for `sets` sets of `ways` ways.
    pub fn new(sets: u64, ways: u32) -> Self {
        Lru {
            stamps: vec![0; (sets * ways as u64) as usize],
            ways,
            clock: 0,
        }
    }

    /// Stamp the way as most recently used.
    pub fn on_hit(&mut self, set: u64, way: u32) {
        self.clock += 1;
        self.stamps[(set * self.ways as u64 + way as u64) as usize] = self.clock;
    }

    /// Fills stamp like hits.
    pub fn on_fill(&mut self, set: u64, way: u32) {
        self.on_hit(set, way);
    }

    /// The way with the smallest stamp (ties broken towards way 0).
    pub fn victim(&mut self, set: u64) -> u32 {
        let base = (set * self.ways as u64) as usize;
        let row = &self.stamps[base..base + self.ways as usize];
        row.iter()
            .enumerate()
            .min_by_key(|&(_, s)| s)
            .map(|(w, _)| w as u32)
            .expect("ways is nonzero")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(1, 4);
        for w in 0..4 {
            lru.on_fill(0, w);
        }
        lru.on_hit(0, 0); // 0 is now newest; 1 is oldest
        assert_eq!(lru.victim(0), 1);
        lru.on_hit(0, 1);
        assert_eq!(lru.victim(0), 2);
    }

    #[test]
    fn sets_are_independent() {
        let mut lru = Lru::new(2, 2);
        lru.on_fill(0, 0);
        lru.on_fill(0, 1);
        lru.on_fill(1, 1);
        lru.on_fill(1, 0);
        assert_eq!(lru.victim(0), 0);
        assert_eq!(lru.victim(1), 1);
    }

    #[test]
    fn untouched_ways_are_preferred_victims() {
        let mut lru = Lru::new(1, 4);
        lru.on_fill(0, 2);
        assert_eq!(lru.victim(0), 0); // stamp 0 < any touched stamp
    }
}
