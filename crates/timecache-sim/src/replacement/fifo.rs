//! First-in first-out replacement.

/// FIFO: victims are chosen in fill order; hits do not refresh a line.
#[derive(Debug, Clone)]
pub struct Fifo {
    stamps: Vec<u64>,
    ways: u32,
    clock: u64,
}

impl Fifo {
    /// Creates FIFO state for `sets` sets of `ways` ways.
    pub fn new(sets: u64, ways: u32) -> Self {
        Fifo {
            stamps: vec![0; (sets * ways as u64) as usize],
            ways,
            clock: 0,
        }
    }

    /// Hits do not affect FIFO order.
    pub fn on_hit(&mut self, _set: u64, _way: u32) {}

    /// Stamps the fill time.
    pub fn on_fill(&mut self, set: u64, way: u32) {
        self.clock += 1;
        self.stamps[(set * self.ways as u64 + way as u64) as usize] = self.clock;
    }

    /// The earliest-filled way.
    pub fn victim(&mut self, set: u64) -> u32 {
        let base = (set * self.ways as u64) as usize;
        self.stamps[base..base + self.ways as usize]
            .iter()
            .enumerate()
            .min_by_key(|&(_, s)| s)
            .map(|(w, _)| w as u32)
            .expect("ways is nonzero")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_do_not_rescue_lines() {
        let mut f = Fifo::new(1, 3);
        f.on_fill(0, 0);
        f.on_fill(0, 1);
        f.on_fill(0, 2);
        f.on_hit(0, 0); // irrelevant under FIFO
        assert_eq!(f.victim(0), 0);
    }

    #[test]
    fn refill_moves_to_back() {
        let mut f = Fifo::new(1, 2);
        f.on_fill(0, 0);
        f.on_fill(0, 1);
        f.on_fill(0, 0); // way 0 refilled: now newest
        assert_eq!(f.victim(0), 1);
    }
}
