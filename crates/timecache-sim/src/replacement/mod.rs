//! Cache replacement policies.
//!
//! The simulator ships the policies most relevant to the paper's setting:
//! exact [LRU](lru::Lru) (the policy the LRU-state attack of Section VII-A
//! targets), [Tree-PLRU](plru::TreePlru) (what real L1s implement),
//! [SRRIP](srrip::Srrip), [DRRIP](drrip::Drrip), [FIFO](fifo::Fifo), and
//! [`Random`](random::Random).
//!
//! Policies are selected per cache level with [`ReplacementKind`]; the
//! per-set state lives in [`ReplacementState`], an enum so the hot path is
//! a match rather than a virtual call.

pub mod drrip;
pub mod fifo;
pub mod lru;
pub mod plru;
pub mod random;
pub mod srrip;

use drrip::Drrip;
use fifo::Fifo;
use lru::Lru;
use plru::TreePlru;
use random::Random;
use srrip::Srrip;

/// Which replacement policy a cache level uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// Exact least-recently-used.
    Lru,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
    /// First-in, first-out (fill order, ignores hits).
    Fifo,
    /// Uniform random victim, deterministic from the given seed.
    Random {
        /// Seed for the xorshift generator used to pick victims.
        seed: u64,
    },
    /// Static re-reference interval prediction (2-bit RRPV).
    Srrip,
    /// Dynamic RRIP: set-duelled SRRIP/BRRIP insertion (scan-resistant).
    Drrip,
}

impl Default for ReplacementKind {
    /// LRU, matching gem5's classic-cache default used by the paper.
    fn default() -> Self {
        ReplacementKind::Lru
    }
}

/// Per-cache replacement state, instantiated from a [`ReplacementKind`].
#[derive(Debug, Clone)]
pub enum ReplacementState {
    /// See [`Lru`].
    Lru(Lru),
    /// See [`TreePlru`].
    TreePlru(TreePlru),
    /// See [`Fifo`].
    Fifo(Fifo),
    /// See [`Random`].
    Random(Random),
    /// See [`Srrip`].
    Srrip(Srrip),
    /// See [`Drrip`].
    Drrip(Drrip),
}

impl ReplacementState {
    /// Builds state for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if Tree-PLRU is requested with
    /// non-power-of-two associativity.
    pub fn build(kind: ReplacementKind, sets: u64, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "sets and ways must be nonzero");
        match kind {
            ReplacementKind::Lru => ReplacementState::Lru(Lru::new(sets, ways)),
            ReplacementKind::TreePlru => ReplacementState::TreePlru(TreePlru::new(sets, ways)),
            ReplacementKind::Fifo => ReplacementState::Fifo(Fifo::new(sets, ways)),
            ReplacementKind::Random { seed } => {
                ReplacementState::Random(Random::new(sets, ways, seed))
            }
            ReplacementKind::Srrip => ReplacementState::Srrip(Srrip::new(sets, ways)),
            ReplacementKind::Drrip => ReplacementState::Drrip(Drrip::new(sets, ways)),
        }
    }

    /// Records a demand hit on `(set, way)`.
    #[inline]
    pub fn on_hit(&mut self, set: u64, way: u32) {
        match self {
            ReplacementState::Lru(p) => p.on_hit(set, way),
            ReplacementState::TreePlru(p) => p.on_hit(set, way),
            ReplacementState::Fifo(p) => p.on_hit(set, way),
            ReplacementState::Random(p) => p.on_hit(set, way),
            ReplacementState::Srrip(p) => p.on_hit(set, way),
            ReplacementState::Drrip(p) => p.on_hit(set, way),
        }
    }

    /// Records a fill into `(set, way)`.
    #[inline]
    pub fn on_fill(&mut self, set: u64, way: u32) {
        match self {
            ReplacementState::Lru(p) => p.on_fill(set, way),
            ReplacementState::TreePlru(p) => p.on_fill(set, way),
            ReplacementState::Fifo(p) => p.on_fill(set, way),
            ReplacementState::Random(p) => p.on_fill(set, way),
            ReplacementState::Srrip(p) => p.on_fill(set, way),
            ReplacementState::Drrip(p) => p.on_fill(set, way),
        }
    }

    /// Chooses a victim way in `set`. Called only when every way is valid;
    /// the cache prefers invalid ways itself.
    #[inline]
    pub fn victim(&mut self, set: u64) -> u32 {
        match self {
            ReplacementState::Lru(p) => p.victim(set),
            ReplacementState::TreePlru(p) => p.victim(set),
            ReplacementState::Fifo(p) => p.victim(set),
            ReplacementState::Random(p) => p.victim(set),
            ReplacementState::Srrip(p) => p.victim(set),
            ReplacementState::Drrip(p) => p.victim(set),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(kind: ReplacementKind, ways: u32) {
        let mut st = ReplacementState::build(kind, 4, ways);
        for w in 0..ways {
            st.on_fill(2, w);
        }
        st.on_hit(2, 0);
        let v = st.victim(2);
        assert!(v < ways, "{kind:?} victim {v} out of range");
    }

    #[test]
    fn all_policies_yield_in_range_victims() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::TreePlru,
            ReplacementKind::Fifo,
            ReplacementKind::Random { seed: 7 },
            ReplacementKind::Srrip,
            ReplacementKind::Drrip,
        ] {
            exercise(kind, 8);
        }
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_ways_rejected() {
        ReplacementState::build(ReplacementKind::Lru, 4, 0);
    }
}
