//! Per-cache and hierarchy-wide statistics.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Event counters for one cache level.
///
/// A **first-access miss** (`first_access`) is the paper's new miss class:
/// a tag hit whose requesting hardware context has a clear s-bit, serviced
/// with miss-equivalent latency. It is counted separately from true misses
/// so Fig. 8/9b ("delayed access MPKI") can be reproduced, and included in
/// `total_miss_like()` for Table II's MPKI columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (loads, stores, instruction fetches).
    pub accesses: u64,
    /// True hits: tag hit and (when TimeCache is on) s-bit set.
    pub hits: u64,
    /// True misses: tag miss, data fetched from below.
    pub misses: u64,
    /// First-access misses: tag hit, s-bit clear (TimeCache only).
    pub first_access: u64,
    /// Lines evicted by replacement.
    pub evictions: u64,
    /// Lines invalidated (coherence, back-invalidation, or clflush).
    pub invalidations: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Misses plus first-access misses: everything serviced with miss
    /// latency, the quantity behind Table II's MPKI columns.
    pub fn total_miss_like(&self) -> u64 {
        self.misses + self.first_access
    }

    /// Misses (including first-access misses) per thousand instructions.
    pub fn mpki(&self, instructions: u64) -> f64 {
        per_kilo(self.total_miss_like(), instructions)
    }

    /// First-access misses per thousand instructions (Figs. 8 and 9b).
    pub fn first_access_mpki(&self, instructions: u64) -> f64 {
        per_kilo(self.first_access, instructions)
    }

    /// True-miss MPKI, excluding first-access misses.
    pub fn true_miss_mpki(&self, instructions: u64) -> f64 {
        per_kilo(self.misses, instructions)
    }

    /// Hit fraction among demand accesses (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

fn per_kilo(events: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        events as f64 * 1000.0 / instructions as f64
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(mut self, rhs: CacheStats) -> CacheStats {
        self += rhs;
        self
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.first_access += rhs.first_access;
        self.evictions += rhs.evictions;
        self.invalidations += rhs.invalidations;
        self.writebacks += rhs.writebacks;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc {} hit {} miss {} first {} evict {} inval {} wb {}",
            self.accesses,
            self.hits,
            self.misses,
            self.first_access,
            self.evictions,
            self.invalidations,
            self.writebacks
        )
    }
}

/// Snapshot of statistics for every cache in a hierarchy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierarchyStats {
    /// One entry per core, in core order.
    pub l1i: Vec<CacheStats>,
    /// One entry per core, in core order.
    pub l1d: Vec<CacheStats>,
    /// Shared last-level cache.
    pub llc: CacheStats,
}

impl HierarchyStats {
    /// Sum of first-access misses across every level.
    pub fn total_first_access(&self) -> u64 {
        self.l1i.iter().map(|s| s.first_access).sum::<u64>()
            + self.l1d.iter().map(|s| s.first_access).sum::<u64>()
            + self.llc.first_access
    }

    /// Aggregate L1I stats over all cores.
    pub fn l1i_total(&self) -> CacheStats {
        self.l1i.iter().copied().fold(CacheStats::new(), Add::add)
    }

    /// Aggregate L1D stats over all cores.
    pub fn l1d_total(&self) -> CacheStats {
        self.l1d.iter().copied().fold(CacheStats::new(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_arithmetic() {
        let s = CacheStats {
            accesses: 1000,
            hits: 900,
            misses: 80,
            first_access: 20,
            ..CacheStats::default()
        };
        assert_eq!(s.total_miss_like(), 100);
        assert!((s.mpki(10_000) - 10.0).abs() < 1e-9);
        assert!((s.first_access_mpki(10_000) - 2.0).abs() < 1e-9);
        assert!((s.true_miss_mpki(10_000) - 8.0).abs() < 1e-9);
        assert!((s.hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn zero_instructions_yield_zero_mpki() {
        let s = CacheStats {
            misses: 5,
            ..CacheStats::default()
        };
        assert_eq!(s.mpki(0), 0.0);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn add_and_add_assign_agree() {
        let a = CacheStats {
            accesses: 9,
            hits: 8,
            misses: 1,
            first_access: 0,
            evictions: 2,
            invalidations: 1,
            writebacks: 3,
        };
        let b = CacheStats {
            accesses: 4,
            hits: 1,
            misses: 2,
            first_access: 1,
            evictions: 0,
            invalidations: 5,
            writebacks: 1,
        };
        let mut assigned = a;
        assigned += b;
        assert_eq!(a + b, assigned);
        assert_eq!(b + a, assigned, "addition is commutative");
        assert_eq!(
            assigned.total_miss_like(),
            a.total_miss_like() + b.total_miss_like()
        );
    }

    #[test]
    fn zero_denominators_yield_zero_rates() {
        let s = CacheStats {
            misses: 3,
            first_access: 7,
            ..CacheStats::default()
        };
        assert_eq!(s.total_miss_like(), 10);
        // Zero instructions: every per-kilo rate is defined as zero.
        assert_eq!(s.mpki(0), 0.0);
        assert_eq!(s.first_access_mpki(0), 0.0);
        assert_eq!(s.true_miss_mpki(0), 0.0);
        // Zero accesses: hit rate is defined as zero, not NaN.
        assert_eq!(s.hit_rate(), 0.0);
        assert!(!CacheStats::default().hit_rate().is_nan());
    }

    #[test]
    fn add_accumulates_fieldwise() {
        let a = CacheStats {
            accesses: 1,
            hits: 2,
            misses: 3,
            first_access: 4,
            evictions: 5,
            invalidations: 6,
            writebacks: 7,
        };
        let sum = a + a;
        assert_eq!(sum.accesses, 2);
        assert_eq!(sum.writebacks, 14);
    }

    #[test]
    fn hierarchy_totals() {
        let unit = CacheStats {
            first_access: 1,
            ..CacheStats::default()
        };
        let h = HierarchyStats {
            l1i: vec![unit; 2],
            l1d: vec![unit; 2],
            llc: unit,
        };
        assert_eq!(h.total_first_access(), 5);
        assert_eq!(h.l1i_total().first_access, 2);
    }
}
