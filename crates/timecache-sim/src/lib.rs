//! # timecache-sim
//!
//! An execution-driven, cycle-accounted multi-level cache-hierarchy
//! simulator, built as the evaluation substrate for the TimeCache
//! reproduction (Ojha & Dwarkadas, ISCA 2021).
//!
//! The paper evaluates TimeCache inside gem5's `TimingSimpleCPU`; this crate
//! provides the equivalent level of modelling in pure Rust:
//!
//! * set-associative caches with pluggable [`replacement`] policies and
//!   [index functions](index) (including a CEASER-like keyed hash),
//! * private per-core L1I/L1D caches and an inclusive shared LLC with an
//!   MSI-style directory ([`Hierarchy`]),
//! * SMT: multiple hardware contexts per core, each with its own TimeCache
//!   visibility state,
//! * `clflush` with optional constant-time semantics (Section VII-C),
//! * full latency accounting per access ([`AccessOutcome`]), and
//! * per-cache statistics: hits, misses, evictions, invalidations and
//!   **first-access misses** ([`CacheStats`]).
//!
//! The TimeCache mechanism itself lives in [`timecache_core`] and is engaged
//! per hierarchy via [`SecurityMode::TimeCache`].
//!
//! # Quick start
//!
//! ```
//! use timecache_sim::{Hierarchy, HierarchyConfig, SecurityMode, AccessKind, Level};
//!
//! let mut cfg = HierarchyConfig::default();       // paper's Table I setup
//! cfg.security = SecurityMode::TimeCache(Default::default());
//! let mut hier = Hierarchy::new(cfg).expect("valid config");
//!
//! // Context (core 0, thread 0) loads an address: cold miss, DRAM latency.
//! let miss = hier.access(0, 0, AccessKind::Load, 0x4000, 0);
//! assert_eq!(miss.served_by, Level::Memory);
//!
//! // Same context again: ordinary hit.
//! let hit = hier.access(0, 0, AccessKind::Load, 0x4000, 10);
//! assert_eq!(hit.served_by, Level::L1);
//! assert!(hit.latency < miss.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cache;
mod config;
mod geometry;
mod hierarchy;
pub mod index;
mod latency;
pub mod replacement;
mod stats;

pub use addr::{Addr, LineAddr};
pub use cache::{Cache, LookupResult};
pub use config::{CacheConfig, ConfigError, HierarchyConfig, SecurityMode};
pub use geometry::CacheGeometry;
pub use hierarchy::{
    AccessKind, AccessOutcome, BatchClock, ContextSnapshot, Hierarchy, Level, SwitchCost,
};
pub use index::IndexFn;
pub use latency::LatencyConfig;
pub use replacement::ReplacementKind;
pub use stats::{CacheStats, HierarchyStats};
