//! A single set-associative cache level.
//!
//! [`Cache`] owns the tag array, replacement state, statistics, and — when
//! the hierarchy runs in [`crate::SecurityMode::TimeCache`] — a
//! [`TimeCacheState`] covering its lines. Access *semantics* (what counts as
//! a hit, where requests go next) live in [`crate::Hierarchy`]; the cache
//! provides the mechanical operations: lookup, fill, invalidate, and the
//! TimeCache visibility hooks.
//!
//! The tag array is structure-of-arrays: tags live in one contiguous
//! `Vec<u64>` (so the way-scan in [`Cache::lookup`] is a branch-light
//! compare over a contiguous slab) and dirty bits in a packed bitset,
//! instead of an array-of-structs `Vec<Line>` whose per-entry flag padded
//! every tag to 16 bytes and halved scan density.

use crate::addr::LineAddr;
use crate::config::CacheConfig;
use crate::geometry::CacheGeometry;
use crate::replacement::ReplacementState;
use crate::stats::CacheStats;
use timecache_core::{Snapshot, TimeCacheConfig, TimeCacheState, Visibility};

/// Sentinel tag marking an invalid way. Folding validity into the tag
/// keeps the lookup scan to a single compare per way (no separate valid-bit
/// branch). No real line can carry this tag: line addresses are byte
/// addresses shifted right by the (nonzero) line-size bits, so their top
/// bits are always clear.
const INVALID_TAG: u64 = u64::MAX;

/// Result of a tag lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Set index.
    pub set: u64,
    /// Way within the set.
    pub way: u32,
    /// Flat line index (`set * ways + way`), the key into TimeCache state.
    pub flat: usize,
}

/// A line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced line's address.
    pub line: LineAddr,
    /// Whether it held modified data (needs a write-back).
    pub dirty: bool,
}

/// A set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    geometry: CacheGeometry,
    index: crate::index::IndexFn,
    /// Tag per flat line index (`set * ways + way`); [`INVALID_TAG`] marks
    /// an empty way. Contiguous so a set's ways are one cache-friendly slab.
    tags: Vec<u64>,
    /// Dirty flags, packed 64 lines per word, indexed by flat line index.
    dirty: Vec<u64>,
    replacement: ReplacementState,
    timecache: Option<TimeCacheState>,
    stats: CacheStats,
    /// Hot-path copies of the derived geometry, resolved once at build time
    /// so `lookup`/`fill` never re-divide capacity by ways × line size.
    num_sets: u64,
    ways: usize,
}

impl Cache {
    /// Builds a cache. `timecache` supplies the mechanism config when the
    /// defense is engaged; `num_contexts` is the number of hardware
    /// contexts sharing this cache (SMT threads for an L1, all contexts for
    /// the LLC).
    ///
    /// # Panics
    ///
    /// Panics if `num_contexts` is zero while `timecache` is `Some`.
    pub fn new(
        name: &'static str,
        config: CacheConfig,
        num_contexts: usize,
        timecache: Option<TimeCacheConfig>,
    ) -> Self {
        let g = config.geometry;
        Cache {
            name,
            geometry: g,
            index: config.index,
            tags: vec![INVALID_TAG; g.num_lines()],
            dirty: vec![0; g.num_lines().div_ceil(64)],
            replacement: ReplacementState::build(config.replacement, g.num_sets(), g.ways()),
            timecache: timecache.map(|tc| TimeCacheState::new(g.num_lines(), num_contexts, tc)),
            stats: CacheStats::new(),
            num_sets: g.num_sets(),
            ways: g.ways() as usize,
        }
    }

    /// The cache's diagnostic name (`"L1I0"`, `"LLC"`, ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The cache's shape.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable statistics (the hierarchy attributes hits/misses; the cache
    /// itself counts evictions, invalidations, and write-backs).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Resets statistics (not cache contents) — used between warm-up and
    /// measurement phases.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    #[inline]
    fn dirty_bit(&self, flat: usize) -> bool {
        self.dirty[flat / 64] >> (flat % 64) & 1 == 1
    }

    #[inline]
    fn set_dirty_bit(&mut self, flat: usize, dirty: bool) {
        let (word, bit) = (flat / 64, flat % 64);
        if dirty {
            self.dirty[word] |= 1 << bit;
        } else {
            self.dirty[word] &= !(1 << bit);
        }
    }

    /// Tag lookup without side effects.
    ///
    /// This is the innermost loop of the whole simulator (three calls per
    /// simulated memory access in the worst case), so the scan is kept
    /// branch-lean: one tag compare per way against the set's contiguous
    /// tag slab, with validity folded into the tag via [`INVALID_TAG`].
    #[inline]
    pub fn lookup(&self, line: LineAddr) -> Option<LookupResult> {
        let set = self.index.set_of(line, self.num_sets);
        let base = set as usize * self.ways;
        let raw = line.raw();
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == raw)
            .map(|way| LookupResult {
                set,
                way: way as u32,
                flat: base + way,
            })
    }

    /// Records a demand hit for replacement purposes.
    pub fn touch(&mut self, hit: LookupResult) {
        self.replacement.on_hit(hit.set, hit.way);
    }

    /// Fills `line` for hardware context `ctx` at cycle `now`, evicting a
    /// victim if the set is full. Returns the slot the line landed in and
    /// the displaced line, if any — callers needing the filled position
    /// (e.g. for directory bookkeeping) get it for free instead of paying a
    /// second lookup.
    ///
    /// The victim's TimeCache s-bits are reset and the new line's `Tc` and
    /// filling-context s-bit are recorded. The eviction (and, if the victim
    /// was dirty, the eventual write-back) is counted here; the caller
    /// performs the actual write-back propagation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the line is already present — the
    /// hierarchy must not double-fill.
    pub fn fill(
        &mut self,
        line: LineAddr,
        ctx: usize,
        now: u64,
    ) -> (LookupResult, Option<Evicted>) {
        debug_assert!(
            self.lookup(line).is_none(),
            "{}: double fill of {line}",
            self.name
        );
        let set = self.index.set_of(line, self.num_sets);
        let base = set as usize * self.ways;

        // Prefer an invalid way; otherwise ask the replacement policy.
        let way = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == INVALID_TAG)
            .map(|w| w as u32)
            .unwrap_or_else(|| self.replacement.victim(set));
        let flat = base + way as usize;

        let old = self.tags[flat];
        let evicted = (old != INVALID_TAG).then(|| {
            self.stats.evictions += 1;
            Evicted {
                line: LineAddr::from_raw(old),
                dirty: self.dirty_bit(flat),
            }
        });
        if let (Some(tc), Some(_)) = (&mut self.timecache, &evicted) {
            tc.on_evict(flat);
        }

        self.tags[flat] = line.raw();
        self.set_dirty_bit(flat, false);
        self.replacement.on_fill(set, way);
        if let Some(tc) = &mut self.timecache {
            tc.on_fill(flat, ctx, now);
        }
        (LookupResult { set, way, flat }, evicted)
    }

    /// Invalidates `line` if present (coherence, back-invalidation, or
    /// `clflush`). Returns whether it was present and dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let hit = self.lookup(line)?;
        let dirty = self.dirty_bit(hit.flat);
        self.tags[hit.flat] = INVALID_TAG;
        self.set_dirty_bit(hit.flat, false);
        self.stats.invalidations += 1;
        if let Some(tc) = &mut self.timecache {
            tc.on_evict(hit.flat);
        }
        Some(dirty)
    }

    /// Marks a resident line dirty (write hit) or clean (write-back done).
    pub fn set_dirty(&mut self, at: LookupResult, dirty: bool) {
        debug_assert!(self.tags[at.flat] != INVALID_TAG);
        self.set_dirty_bit(at.flat, dirty);
    }

    /// Whether a resident line is dirty.
    pub fn is_dirty(&self, at: LookupResult) -> bool {
        self.dirty_bit(at.flat)
    }

    /// TimeCache visibility of a resident line for `ctx`; `Visible` always
    /// in baseline mode.
    pub fn visibility(&self, at: LookupResult, ctx: usize) -> Visibility {
        match &self.timecache {
            Some(tc) => tc.visibility(at.flat, ctx),
            None => Visibility::Visible,
        }
    }

    /// Records that `ctx` has now paid the first-access delay for a line.
    /// No-op in baseline mode.
    pub fn record_first_access(&mut self, at: LookupResult, ctx: usize) {
        if let Some(tc) = &mut self.timecache {
            tc.record_first_access(at.flat, ctx);
        }
    }

    /// Saves the caching context of `ctx` (None in baseline mode).
    pub fn save_context(&self, ctx: usize, now: u64) -> Option<Snapshot> {
        self.timecache.as_ref().map(|tc| tc.save_context(ctx, now))
    }

    /// Restores a caching context; see
    /// [`TimeCacheState::restore_context`]. Returns `None` in baseline mode.
    pub fn restore_context(
        &mut self,
        ctx: usize,
        snapshot: Option<&Snapshot>,
        now: u64,
    ) -> Option<timecache_core::RestoreOutcome> {
        self.timecache
            .as_mut()
            .map(|tc| tc.restore_context(ctx, snapshot, now))
    }

    /// [`Cache::restore_context`] under fault injection; see
    /// [`TimeCacheState::restore_context_faulty`]. Returns `None` in
    /// baseline mode.
    pub fn restore_context_faulty(
        &mut self,
        ctx: usize,
        snapshot: Option<&Snapshot>,
        now: u64,
        faults: &timecache_core::FaultInjector,
    ) -> Option<timecache_core::RestoreOutcome> {
        self.timecache
            .as_mut()
            .map(|tc| tc.restore_context_faulty(ctx, snapshot, now, faults))
    }

    /// Read-only view of the TimeCache state (None in baseline mode).
    pub fn timecache(&self) -> Option<&TimeCacheState> {
        self.timecache.as_ref()
    }

    /// Number of valid lines currently resident (diagnostics/tests).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new("T", CacheConfig::new(512, 2, 64), 1, None)
    }

    fn la(addr: u64) -> LineAddr {
        LineAddr::from_addr(addr, 64)
    }

    #[test]
    fn fill_then_lookup() {
        let mut c = tiny();
        assert!(c.lookup(la(0x100)).is_none());
        let (slot, evicted) = c.fill(la(0x100), 0, 0);
        assert_eq!(evicted, None);
        let hit = c.lookup(la(0x100)).unwrap();
        assert_eq!(hit, slot);
        assert_eq!(hit.set, (0x100 / 64) % 4);
    }

    #[test]
    fn conflicting_fills_evict_lru() {
        let mut c = tiny();
        // Set 0 holds lines 0x000, 0x100 (stride 256 = sets*linesize).
        c.fill(la(0x000), 0, 0);
        c.fill(la(0x100), 0, 1);
        c.touch(c.lookup(la(0x000)).unwrap()); // 0x000 most recent
        let ev = c.fill(la(0x200), 0, 2).1.unwrap();
        assert_eq!(ev.line, la(0x100));
        assert!(!ev.dirty);
        assert!(c.lookup(la(0x100)).is_none());
        assert!(c.lookup(la(0x000)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.fill(la(0x000), 0, 0);
        let at = c.lookup(la(0x000)).unwrap();
        c.set_dirty(at, true);
        c.fill(la(0x100), 0, 1);
        let ev = c.fill(la(0x200), 0, 2).1.unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn fill_reports_landing_slot() {
        let mut c = tiny();
        let (slot, _) = c.fill(la(0x000), 0, 0);
        assert_eq!(slot, c.lookup(la(0x000)).unwrap());
        // A conflicting fill lands in the same set, different way.
        let (slot2, _) = c.fill(la(0x100), 0, 1);
        assert_eq!(slot2.set, slot.set);
        assert_ne!(slot2.way, slot.way);
        assert_eq!(slot2, c.lookup(la(0x100)).unwrap());
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.fill(la(0x40), 0, 0);
        let at = c.lookup(la(0x40)).unwrap();
        c.set_dirty(at, true);
        assert_eq!(c.invalidate(la(0x40)), Some(true));
        assert_eq!(c.invalidate(la(0x40)), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn refill_after_dirty_invalidate_is_clean() {
        // The packed dirty bit must be cleared on invalidate and fill, not
        // leak into the next occupant of the same way.
        let mut c = tiny();
        c.fill(la(0x40), 0, 0);
        c.set_dirty(c.lookup(la(0x40)).unwrap(), true);
        c.invalidate(la(0x40));
        c.fill(la(0x40), 0, 1);
        assert!(!c.is_dirty(c.lookup(la(0x40)).unwrap()));
    }

    #[test]
    fn timecache_hooks_wire_through() {
        let mut c = Cache::new(
            "T",
            CacheConfig::new(512, 2, 64),
            2,
            Some(TimeCacheConfig::default()),
        );
        c.fill(la(0x40), 0, 100);
        let at = c.lookup(la(0x40)).unwrap();
        assert_eq!(c.visibility(at, 0), Visibility::Visible);
        assert_eq!(c.visibility(at, 1), Visibility::FirstAccess);
        c.record_first_access(at, 1);
        assert_eq!(c.visibility(at, 1), Visibility::Visible);

        // Eviction resets s-bits: refill after conflict.
        c.fill(la(0x140), 0, 200);
        c.fill(la(0x240), 0, 300); // evicts one of them
        if let Some(at) = c.lookup(la(0x40)) {
            // 0x40 survived; its s-bits are intact.
            assert_eq!(c.visibility(at, 0), Visibility::Visible);
        }
    }

    #[test]
    fn baseline_is_always_visible() {
        let mut c = tiny();
        c.fill(la(0x80), 0, 0);
        let at = c.lookup(la(0x80)).unwrap();
        assert_eq!(c.visibility(at, 0), Visibility::Visible);
        assert!(c.save_context(0, 0).is_none());
        assert!(c.restore_context(0, None, 0).is_none());
    }

    #[test]
    fn resident_lines_counts_valid() {
        let mut c = tiny();
        assert_eq!(c.resident_lines(), 0);
        c.fill(la(0x00), 0, 0);
        c.fill(la(0x40), 0, 0);
        assert_eq!(c.resident_lines(), 2);
        c.invalidate(la(0x00));
        assert_eq!(c.resident_lines(), 1);
    }
}
