//! Hierarchy configuration and validation.

use crate::geometry::CacheGeometry;
use crate::index::IndexFn;
use crate::latency::LatencyConfig;
use crate::replacement::ReplacementKind;
use std::error::Error;
use std::fmt;
use timecache_core::TimeCacheConfig;

/// Whether the hierarchy runs as a conventional cache or with a reuse
/// defense engaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SecurityMode {
    /// Conventional caches: residency is shared across all contexts — the
    /// configuration every reuse attack in the paper exploits.
    #[default]
    Baseline,
    /// TimeCache engaged at every level with the given mechanism config.
    TimeCache(TimeCacheConfig),
    /// First Time Miss (Ramkrishnan et al., ICPP 2020), the paper's closest
    /// prior work (Section VIII-B2): per-**core** presence bits at the LLC
    /// only. It delays a core's first access to an LLC line another core
    /// filled, but it has no per-process state and no context-switch
    /// handling — attacker and victim must be spatially isolated on
    /// different cores for it to help. Implemented as the comparison
    /// baseline showing why TimeCache's threat model is stronger (it also
    /// covers same-core time slicing and SMT).
    Ftm,
}

impl SecurityMode {
    /// True when the TimeCache defense is engaged.
    pub fn is_timecache(&self) -> bool {
        matches!(self, SecurityMode::TimeCache(_))
    }

    /// True when the FTM comparison baseline is engaged.
    pub fn is_ftm(&self) -> bool {
        matches!(self, SecurityMode::Ftm)
    }
}

/// Configuration for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Physical shape.
    pub geometry: CacheGeometry,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// Set-index function.
    pub index: IndexFn,
}

impl CacheConfig {
    /// A cache with the given shape, LRU replacement, and modulo indexing.
    pub fn new(size_bytes: u64, ways: u32, line_size: u64) -> Self {
        CacheConfig {
            geometry: CacheGeometry::new(size_bytes, ways, line_size),
            replacement: ReplacementKind::Lru,
            index: IndexFn::Modulo,
        }
    }
}

/// Configuration for a full hierarchy: per-core split L1s over an inclusive
/// shared LLC.
///
/// The default reproduces the paper's Table I simulated system: one core,
/// no SMT, 32 KB 8-way L1I and L1D, 2 MB 16-way LLC, 64 B lines.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// Number of cores, each with private L1I and L1D.
    pub cores: usize,
    /// Hardware threads (SMT contexts) per core.
    pub smt_per_core: usize,
    /// Per-core instruction cache.
    pub l1i: CacheConfig,
    /// Per-core data cache.
    pub l1d: CacheConfig,
    /// Shared, inclusive last-level cache.
    pub llc: CacheConfig,
    /// Latency model.
    pub latencies: LatencyConfig,
    /// Baseline or TimeCache.
    pub security: SecurityMode,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            cores: 1,
            smt_per_core: 1,
            l1i: CacheConfig::new(32 * 1024, 8, 64),
            l1d: CacheConfig::new(32 * 1024, 8, 64),
            llc: CacheConfig::new(2 * 1024 * 1024, 16, 64),
            latencies: LatencyConfig::default(),
            security: SecurityMode::Baseline,
        }
    }
}

impl HierarchyConfig {
    /// The paper's Table I setup with the given number of cores.
    pub fn with_cores(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            ..HierarchyConfig::default()
        }
    }

    /// Returns a copy with a different LLC capacity (Fig. 10's sweep),
    /// keeping associativity and line size.
    pub fn with_llc_bytes(mut self, bytes: u64) -> Self {
        self.llc.geometry = CacheGeometry::new(
            bytes,
            self.llc.geometry.ways(),
            self.llc.geometry.line_size(),
        );
        self
    }

    /// Total hardware contexts (`cores * smt_per_core`), the number of
    /// s-bit planes the LLC carries.
    pub fn total_contexts(&self) -> usize {
        self.cores * self.smt_per_core
    }

    /// Checks structural invariants the hierarchy relies on.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint:
    /// zero cores/threads, mismatched line sizes, an LLC smaller than a
    /// single core's L1s (inclusivity would thrash), or inconsistent
    /// latencies.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("hierarchy needs at least one core"));
        }
        if self.smt_per_core == 0 {
            return Err(ConfigError::new("cores need at least one SMT context"));
        }
        let ls = self.llc.geometry.line_size();
        if self.l1i.geometry.line_size() != ls || self.l1d.geometry.line_size() != ls {
            return Err(ConfigError::new(
                "all cache levels must share one line size",
            ));
        }
        let l1_bytes = self.l1i.geometry.size_bytes() + self.l1d.geometry.size_bytes();
        if self.llc.geometry.size_bytes() < l1_bytes {
            return Err(ConfigError::new(
                "inclusive LLC must be at least as large as one core's L1s",
            ));
        }
        self.latencies.validate().map_err(ConfigError::new)?;
        Ok(())
    }
}

/// An invalid [`HierarchyConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid hierarchy config: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l1i.geometry.size_bytes(), 32 * 1024);
        assert_eq!(c.l1d.geometry.size_bytes(), 32 * 1024);
        assert_eq!(c.llc.geometry.size_bytes(), 2 * 1024 * 1024);
        assert_eq!(c.cores, 1);
        c.validate().unwrap();
    }

    #[test]
    fn llc_sweep_keeps_shape() {
        let c = HierarchyConfig::default().with_llc_bytes(8 * 1024 * 1024);
        assert_eq!(c.llc.geometry.size_bytes(), 8 * 1024 * 1024);
        assert_eq!(c.llc.geometry.ways(), 16);
        c.validate().unwrap();
    }

    #[test]
    fn rejects_zero_cores() {
        let c = HierarchyConfig {
            cores: 0,
            ..HierarchyConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_mismatched_line_sizes() {
        let c = HierarchyConfig {
            l1d: CacheConfig::new(32 * 1024, 8, 32),
            ..HierarchyConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("line size"));
    }

    #[test]
    fn rejects_tiny_llc() {
        let c = HierarchyConfig::default().with_llc_bytes(32 * 1024);
        assert!(c.validate().is_err());
    }

    #[test]
    fn contexts_multiply() {
        let c = HierarchyConfig {
            cores: 2,
            smt_per_core: 2,
            ..HierarchyConfig::default()
        };
        assert_eq!(c.total_contexts(), 4);
    }
}
