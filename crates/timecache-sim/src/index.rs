//! Set-index functions.
//!
//! Commodity caches index with low-order line-address bits (modulo). To
//! demonstrate how TimeCache *composes* with contention-attack defenses
//! (Sections II and IX of the paper), the simulator also offers a
//! CEASER-style keyed index: a cheap invertible block cipher over the line
//! address, so eviction sets built for one key are useless under another.

use crate::addr::LineAddr;

/// How a cache maps line addresses to sets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum IndexFn {
    /// Low-order line-address bits, the conventional layout.
    #[default]
    Modulo,
    /// CEASER-like keyed index (Qureshi, MICRO 2018): the line address is
    /// passed through a keyed permutation before the modulo, randomizing
    /// set placement. Defends against eviction-set construction
    /// (prime+probe, LRU attacks); *not* against reuse attacks — which is
    /// exactly the gap TimeCache fills.
    Keyed {
        /// The cipher key; change it to remap the cache.
        key: u64,
    },
}

impl IndexFn {
    /// Maps a line address to a set index in `[0, num_sets)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two.
    #[inline]
    pub fn set_of(&self, line: LineAddr, num_sets: u64) -> u64 {
        debug_assert!(num_sets.is_power_of_two());
        match self {
            IndexFn::Modulo => line.raw() & (num_sets - 1),
            IndexFn::Keyed { key } => permute(line.raw(), *key) & (num_sets - 1),
        }
    }
}

/// A cheap keyed bijection over u64 (xor-multiply-rotate rounds). Stands in
/// for CEASER's low-latency block cipher; what matters for the security
/// argument is that set placement is unpredictable without the key, and a
/// bijection guarantees no two distinct lines alias more than modulo would.
#[inline]
fn permute(x: u64, key: u64) -> u64 {
    let mut v = x ^ key;
    for r in 0..3 {
        v = v.wrapping_mul(0x9E3779B97F4A7C15 | 1);
        v ^= v >> 29;
        v = v.rotate_left(17 + r);
        v ^= key.rotate_left(r * 13);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_uses_low_bits() {
        let f = IndexFn::Modulo;
        assert_eq!(f.set_of(LineAddr::from_addr(0x40, 64), 64), 1);
        assert_eq!(f.set_of(LineAddr::from_addr(0x1000, 64), 64), 0);
    }

    #[test]
    fn keyed_differs_from_modulo_somewhere() {
        let f = IndexFn::Keyed { key: 0xDEADBEEF };
        let differs = (0..1024u64).any(|l| {
            let la = LineAddr::from_addr(l * 64, 64);
            f.set_of(la, 64) != IndexFn::Modulo.set_of(la, 64)
        });
        assert!(differs);
    }

    #[test]
    fn keyed_is_deterministic_per_key() {
        let a = IndexFn::Keyed { key: 1 };
        let b = IndexFn::Keyed { key: 1 };
        let c = IndexFn::Keyed { key: 2 };
        let la = LineAddr::from_addr(0xABCD00, 64);
        assert_eq!(a.set_of(la, 256), b.set_of(la, 256));
        // Different keys *almost surely* place this line differently; check
        // over many lines to avoid a fluke.
        let moved = (0..512u64)
            .filter(|l| {
                let la = LineAddr::from_addr(l * 64, 64);
                a.set_of(la, 256) != c.set_of(la, 256)
            })
            .count();
        assert!(moved > 400, "only {moved}/512 lines moved between keys");
    }

    #[test]
    fn keyed_spreads_sequential_lines() {
        // Sequential lines must not all land in sequential sets.
        let f = IndexFn::Keyed { key: 99 };
        let sets: Vec<u64> = (0..16u64)
            .map(|l| f.set_of(LineAddr::from_addr(l * 64, 64), 1024))
            .collect();
        let sequential = sets.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(sequential < 4, "sets {sets:?} look sequential");
    }

    #[test]
    fn permute_is_injective_on_sample() {
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..10_000u64).map(|x| permute(x, 12345)).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
